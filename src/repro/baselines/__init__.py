"""Baselines the paper compares against (or that ablations need).

* :mod:`.intelligent_social` — the paper's "intelligent social" (IS) user:
  a client-side strategy over an ordinary database that checks whether the
  friend already has a reservation and books accordingly.  This is "the kind
  of coordination that is achievable without using a quantum database".
* :mod:`.eager` — a classical eager-assignment client: it grounds a resource
  transaction immediately at submission time (no deferral), which is what a
  conventional DBMS forces applications to do.
"""

from repro.baselines.eager import EagerClient
from repro.baselines.intelligent_social import IntelligentSocialClient

__all__ = ["EagerClient", "IntelligentSocialClient"]
