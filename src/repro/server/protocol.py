"""The framed wire protocol: length-prefixed JSON messages with typed opcodes.

This module is the *pure* half of the network layer — no sockets, no
asyncio, just bytes in and messages out — so the codec can be property- and
fuzz-tested exhaustively (``tests/server/test_net_protocol.py``) without a
running server.  :mod:`repro.server.net` adapts it to asyncio transports.

**Frame format.**  Every message travels as one frame::

    +----------------+----------------------------+
    | length: 4 bytes| payload: `length` bytes    |
    | big-endian u32 | UTF-8 JSON object          |
    +----------------+----------------------------+

The length prefix counts the payload only.  A frame whose declared length
exceeds the configured maximum is rejected *before* its body is buffered
(:class:`~repro.errors.FrameTooLarge`); a payload that is not a UTF-8 JSON
object carrying a known ``op`` code raises
:class:`~repro.errors.FrameCorrupt`.  Both are
:class:`~repro.errors.ProtocolError` subclasses: the server answers with a
final ``error`` frame where possible and closes the connection cleanly.

**Messages.**  Every payload is a JSON object with an ``op`` code
(:class:`Opcode`) and, for request/response pairs, a client-chosen ``id``
echoed back on the response.  Requests carry op-specific fields (the
transaction text for ``commit``, the query for ``read``, ...); responses
are either ``result`` (with a ``value``) or ``error`` (with a ``code``
from :data:`ERROR_CODES` and a human-readable ``message``).  ``goodbye``
is the one server-initiated message: it announces a graceful drain before
the socket closes.

JSON framing (rather than msgpack or pickle) keeps the protocol
cross-language and — critically for a multi-tenant server — makes frame
decoding side-effect free: no payload can execute code on the server.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import Any, Iterator, Mapping

from repro.errors import (
    FrameCorrupt,
    FrameTooLarge,
    GroundingTimeout,
    InvalidTransactionError,
    ParseError,
    ProtocolError,
    QuantumError,
    ReproError,
    SessionBackpressure,
    TenantBackpressure,
)

#: Big-endian unsigned 32-bit length prefix.
HEADER = struct.Struct(">I")

#: Default ceiling on one frame's payload size (1 MiB).  Large enough for
#: a generous ``commit_batch`` or a wide read result, small enough that a
#: hostile length prefix cannot make the server allocate unbounded memory.
MAX_FRAME_BYTES = 1 << 20


class Opcode(enum.Enum):
    """Every message type the protocol knows.

    Requests (client → server): ``HELLO`` binds the connection's session
    identity (client and tenant names); ``COMMIT``/``COMMIT_BATCH`` submit
    resource transactions; ``READ`` answers queries at a writer
    serialization point; ``GROUND``/``GROUND_ALL``/``CHECK_IN`` collapse
    pending transactions; ``STATS`` returns the merged statistics report;
    ``PING`` is a liveness no-op.

    Responses (server → client): ``RESULT`` and ``ERROR`` answer exactly
    one request (matched by ``id``); ``GOODBYE`` is pushed once when the
    server starts a graceful drain.
    """

    HELLO = "hello"
    COMMIT = "commit"
    COMMIT_BATCH = "commit_batch"
    READ = "read"
    GROUND = "ground"
    GROUND_ALL = "ground_all"
    CHECK_IN = "check_in"
    STATS = "stats"
    PING = "ping"
    RESULT = "result"
    ERROR = "error"
    GOODBYE = "goodbye"


#: Opcodes a client may send (everything except the response types).
REQUEST_OPCODES = frozenset(
    op for op in Opcode if op not in (Opcode.RESULT, Opcode.ERROR, Opcode.GOODBYE)
)

_KNOWN_OPS = frozenset(op.value for op in Opcode)


def encode_frame(
    message: Mapping[str, Any], *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one message into a length-prefixed frame.

    Raises:
        FrameTooLarge: the encoded payload exceeds ``max_frame_bytes``
            (the sender's bound must match the receiver's, or a legitimate
            message would kill the connection on arrival).
        ProtocolError: the message is not JSON-serializable or lacks a
            valid ``op``.
    """
    op = message.get("op")
    if op not in _KNOWN_OPS:
        raise ProtocolError(f"message has no valid opcode: {op!r}")
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"encoded frame is {len(payload)} bytes "
            f"(maximum {max_frame_bytes})"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Decode one frame payload into a validated message dictionary."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameCorrupt(f"frame payload is not UTF-8 JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameCorrupt(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if op not in _KNOWN_OPS:
        raise FrameCorrupt(f"unknown opcode {op!r}")
    return message


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever ``read()`` returned — single bytes, half frames,
    several frames at once — and it yields every complete message, keeping
    the unconsumed tail buffered for the next feed.  The decoder validates
    the length prefix *before* the payload arrives, so oversized
    declarations fail immediately with :class:`~repro.errors.FrameTooLarge`
    instead of after buffering the body.

    A decoder that raised is poisoned: framing is byte-positional, so
    after a corrupt frame there is no way to resynchronize with the peer —
    the connection must close (which is what the server does).
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data`` and return every message it completed.

        Raises:
            FrameTooLarge: a frame declared a length beyond the maximum.
            FrameCorrupt: a completed payload was not a valid message.
        """
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[dict[str, Any]]:
        while True:
            if len(self._buffer) < HEADER.size:
                return
            (length,) = HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLarge(
                    f"incoming frame declares {length} bytes "
                    f"(maximum {self.max_frame_bytes})"
                )
            end = HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER.size : end])
            del self._buffer[:end]
            yield decode_payload(payload)


# ---------------------------------------------------------------------------
# Error frames: typed exceptions <-> wire codes
# ---------------------------------------------------------------------------

#: Wire error codes, most specific exception first (the mapping is walked
#: in order, so subclasses must precede their bases).
ERROR_CODES: tuple[tuple[type[Exception], str], ...] = (
    (TenantBackpressure, "tenant_backpressure"),
    (SessionBackpressure, "session_backpressure"),
    (GroundingTimeout, "grounding_timeout"),
    (ParseError, "parse_error"),
    (InvalidTransactionError, "invalid_transaction"),
    (FrameTooLarge, "frame_too_large"),
    (FrameCorrupt, "frame_corrupt"),
    (ProtocolError, "protocol_error"),
    (QuantumError, "quantum_error"),
    (ReproError, "error"),
)

#: Code the server answers with once a drain started: the request was NOT
#: processed and will not be — reconnect elsewhere or give up.
DRAINING_CODE = "draining"

_CODE_TO_EXCEPTION: dict[str, type[Exception]] = {
    code: exc_type for exc_type, code in ERROR_CODES
}
_CODE_TO_EXCEPTION[DRAINING_CODE] = QuantumError


def error_code_for(exc: BaseException) -> str:
    """The wire code for an exception (``"internal"`` for foreign ones)."""
    for exc_type, code in ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "internal"


def exception_for(code: str, message: str) -> Exception:
    """Rebuild a typed exception from an error frame (client side)."""
    return _CODE_TO_EXCEPTION.get(code, QuantumError)(message)


def error_frame(request_id: Any, exc_or_code: BaseException | str, message: str | None = None) -> dict[str, Any]:
    """Build an ``error`` response message."""
    if isinstance(exc_or_code, BaseException):
        code = error_code_for(exc_or_code)
        text = message if message is not None else str(exc_or_code)
    else:
        code, text = exc_or_code, message or exc_or_code
    return {"op": Opcode.ERROR.value, "id": request_id, "code": code, "message": text}


def result_frame(request_id: Any, value: Any) -> dict[str, Any]:
    """Build a ``result`` response message."""
    return {"op": Opcode.RESULT.value, "id": request_id, "value": value}


# ---------------------------------------------------------------------------
# Value serialization: session results <-> JSON-safe payloads
# ---------------------------------------------------------------------------


def commit_value(result: Any) -> dict[str, Any]:
    """JSON-safe payload for a commit outcome.

    Accepts both the synchronous :class:`~repro.core.quantum_database.CommitResult`
    and the session-layer :class:`~repro.server.session.AdmissionResult`
    (same attribute surface).  Grounded side effects travel as serialized
    grounding records, exactly like :func:`grounded_value`.
    """
    return {
        "transaction_id": result.transaction_id,
        "committed": bool(result.committed),
        "pending": bool(result.pending),
        "rejection_reason": result.rejection_reason,
        "grounded": [grounded_value(record) for record in result.grounded],
        # Decision provenance (admission-search redesign); getattr keeps
        # the codec tolerant of minimal result objects in older tests.
        "method": getattr(result, "method", "backtracking"),
        "exact": bool(getattr(result, "exact", True)),
    }


def grounded_value(record: Any) -> dict[str, Any]:
    """JSON-safe payload for one grounded transaction (id + valuation)."""
    return {
        "transaction_id": record.transaction_id,
        "valuation": dict(record.valuation),
    }
