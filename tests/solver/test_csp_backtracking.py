"""Tests for the finite-domain CSP model, propagation and backtracking."""

from __future__ import annotations

import pytest

from repro.errors import InconsistentProblemError, SolverError
from repro.solver.backtracking import BacktrackingSolver
from repro.solver.csp import CSP
from repro.solver.propagation import ac3, forward_check, initial_domains


def make_coloring_csp() -> CSP:
    """3-coloring of a triangle plus a pendant vertex."""
    problem = CSP()
    for node in "abcd":
        problem.add_variable(node, ["red", "green", "blue"])
    edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
    for left, right in edges:
        problem.add_constraint((left, right), lambda x, y: x != y, name="≠")
    return problem


class TestCSPModel:
    def test_duplicate_variable_rejected(self):
        problem = CSP()
        problem.add_variable("x", [1])
        with pytest.raises(SolverError):
            problem.add_variable("x", [2])

    def test_empty_domain_rejected(self):
        problem = CSP()
        with pytest.raises(InconsistentProblemError):
            problem.add_variable("x", [])

    def test_constraint_on_unknown_variable(self):
        problem = CSP()
        problem.add_variable("x", [1])
        with pytest.raises(SolverError):
            problem.add_constraint(("x", "y"), lambda a, b: True)

    def test_partial_assignments_not_violated(self):
        problem = make_coloring_csp()
        assert problem.is_consistent({"a": "red"})
        assert not problem.is_consistent({"a": "red", "b": "red"})

    def test_neighbors(self):
        problem = make_coloring_csp()
        assert problem.neighbors("c") == {"a", "b", "d"}

    def test_validate_solution(self):
        problem = make_coloring_csp()
        solution = {"a": "red", "b": "green", "c": "blue", "d": "red"}
        assert problem.validate_solution(solution)
        assert not problem.validate_solution({**solution, "d": "blue"})
        assert not problem.validate_solution({"a": "red"})


class TestPropagation:
    def test_ac3_prunes(self):
        problem = CSP()
        problem.add_variable("x", [1, 2, 3])
        problem.add_variable("y", [3])
        problem.add_constraint(("x", "y"), lambda a, b: a < b)
        consistent, domains = ac3(problem)
        assert consistent
        assert set(domains["x"]) == {1, 2}

    def test_ac3_detects_inconsistency(self):
        problem = CSP()
        problem.add_variable("x", [2, 3])
        problem.add_variable("y", [1])
        problem.add_constraint(("x", "y"), lambda a, b: a < b)
        consistent, _domains = ac3(problem)
        assert not consistent

    def test_forward_check(self):
        problem = make_coloring_csp()
        domains = initial_domains(problem)
        ok, pruned = forward_check(problem, domains, {"a": "red"}, "a")
        assert ok
        assert "red" not in pruned["b"]
        assert "red" not in pruned["c"]
        assert set(pruned["d"]) == {"red", "green", "blue"}


class TestBacktrackingSolver:
    def test_solves_coloring(self):
        problem = make_coloring_csp()
        solution = BacktrackingSolver().solve(problem)
        assert solution is not None
        assert problem.validate_solution(solution)

    def test_unsatisfiable(self):
        problem = CSP()
        for node in "ab":
            problem.add_variable(node, [1])
        problem.add_constraint(("a", "b"), lambda x, y: x != y)
        assert BacktrackingSolver().solve(problem) is None

    def test_respects_initial_assignment(self):
        problem = make_coloring_csp()
        solution = BacktrackingSolver().solve(problem, initial={"a": "green"})
        assert solution is not None and solution["a"] == "green"

    def test_inconsistent_initial_assignment(self):
        problem = make_coloring_csp()
        solution = BacktrackingSolver().solve(
            problem, initial={"a": "red", "b": "red"}
        )
        assert solution is None

    def test_enumerate_all_solutions(self):
        problem = CSP()
        problem.add_variable("x", [1, 2])
        problem.add_variable("y", [1, 2])
        problem.add_constraint(("x", "y"), lambda a, b: a != b)
        solutions = list(BacktrackingSolver().solutions(problem))
        assert len(solutions) == 2

    def test_max_solutions(self):
        problem = CSP()
        problem.add_variable("x", list(range(10)))
        solver = BacktrackingSolver(max_solutions=3)
        assert len(list(solver.solutions(problem))) == 3

    def test_all_different_helper(self):
        problem = CSP()
        for name in ("x", "y", "z"):
            problem.add_variable(name, [1, 2, 3])
        problem.all_different(["x", "y", "z"])
        solution = BacktrackingSolver(use_lcv=True).solve(problem)
        assert solution is not None
        assert len(set(solution.values())) == 3

    def test_statistics_populated(self):
        problem = make_coloring_csp()
        solver = BacktrackingSolver()
        solver.solve(problem)
        assert solver.statistics.assignments > 0
