"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.relational.database import Database
from repro.workloads.flights import (
    FlightDatabaseSpec,
    build_flight_database,
)


@pytest.fixture
def flight_spec() -> FlightDatabaseSpec:
    """A small flight database: one flight, three rows (nine seats)."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=3, first_flight_number=123)


@pytest.fixture
def flight_db(flight_spec: FlightDatabaseSpec) -> Database:
    """A populated flight database."""
    return build_flight_database(flight_spec)


@pytest.fixture
def quantum_db(flight_db: Database) -> QuantumDatabase:
    """A quantum database over the small flight database."""
    return QuantumDatabase(flight_db, QuantumConfig())


def make_tiny_flight_db(seats: int = 3, flight: int = 123) -> Database:
    """A single-row flight with ``seats`` seats (helper for focused tests)."""
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    database.create_table(
        "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
    )
    labels = [f"1{chr(ord('A') + i)}" for i in range(seats)]
    for label in labels:
        database.insert("Available", (flight, label))
    for left, right in zip(labels, labels[1:]):
        database.insert("Adjacent", (flight, left, right))
        database.insert("Adjacent", (flight, right, left))
    return database


@pytest.fixture
def tiny_flight_db() -> Database:
    """A single flight with one row of three seats."""
    return make_tiny_flight_db()
