"""Join-order planning for conjunctive queries.

The paper's prototype leans on the MySQL optimizer and observes two
artifacts that shape its evaluation section:

* composed transaction bodies reference up to 61 relations, MySQL's join
  limit — the quantum database keeps bodies below a parameter ``k`` for this
  reason; and
* the default exhaustive plan search becomes the bottleneck for many-way
  joins, so the authors set ``optimizer_search_depth = 3``; occasional bad
  plans produce the spikes in Figures 7 and 8.

Our planner reproduces both knobs.  It performs a greedy left-deep join
ordering: at each step it scores the next ``search_depth`` candidate atoms
(by how many of their variables are already bound, whether an index covers
the bound columns, and table cardinality) and picks the best.  With
``search_depth`` equal to the number of atoms this approximates exhaustive
ordering; with small depths it is fast but occasionally picks a poor order,
just like the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import JoinLimitExceededError, PlannerError, UnknownTableError
from repro.relational.query import ConjunctiveQuery, QueryAtom, Var

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.relational.database import Database

#: MySQL's documented maximum number of tables in a join, inherited by the
#: paper's prototype and therefore by our default configuration.
MYSQL_JOIN_LIMIT = 61


@dataclass
class PlannerConfig:
    """Tunable planner parameters.

    Attributes:
        search_depth: how many candidate atoms are scored at each greedy
            step (the analogue of MySQL's ``optimizer_search_depth``).  The
            paper uses 3.
        join_limit: maximum number of atoms a single query may reference
            (MySQL's 61-table limit).
    """

    search_depth: int = 3
    join_limit: int = MYSQL_JOIN_LIMIT

    def __post_init__(self) -> None:
        if self.search_depth < 1:
            raise PlannerError("search_depth must be at least 1")
        if self.join_limit < 1:
            raise PlannerError("join_limit must be at least 1")


@dataclass
class QueryPlan:
    """An ordered sequence of atoms, positives first where possible.

    Attributes:
        order: atoms in execution order.
        plans_considered: number of (partial) orders the planner scored,
            reported back through :class:`~repro.relational.query.QueryResult`.
    """

    order: list[QueryAtom] = field(default_factory=list)
    plans_considered: int = 0


class Planner:
    """Greedy bounded-depth join-order planner."""

    def __init__(self, config: PlannerConfig | None = None) -> None:
        self.config = config or PlannerConfig()

    def plan(self, database: "Database", query: ConjunctiveQuery) -> QueryPlan:
        """Produce an execution order for ``query`` against ``database``.

        Raises:
            JoinLimitExceededError: if the query references more atoms than
                the configured join limit.
            UnknownTableError: if an atom references a missing table.
        """
        query.validate()
        if len(query.atoms) > self.config.join_limit:
            raise JoinLimitExceededError(
                f"query references {len(query.atoms)} atoms, limit is "
                f"{self.config.join_limit}"
            )
        for atom in query.atoms:
            if not database.has_table(atom.table):
                raise UnknownTableError(f"unknown table {atom.table!r}")

        positives = [a for a in query.atoms if not a.negated]
        negatives = [a for a in query.atoms if a.negated]

        plan = QueryPlan()
        bound: set[str] = set()
        remaining = list(positives)
        while remaining:
            candidates = self._rank(database, remaining, bound)
            plan.plans_considered += len(candidates)
            best = candidates[0]
            plan.order.append(best)
            bound |= best.variable_names()
            remaining.remove(best)
            # Place any negated atom as soon as all its variables are bound:
            # anti-joins filter early and cheaply.
            for neg in list(negatives):
                if neg.variable_names() <= bound:
                    plan.order.append(neg)
                    negatives.remove(neg)
        # Safety validation guarantees the remaining negatives list is empty,
        # but keep the invariant explicit for ground negated atoms.
        plan.order.extend(negatives)
        return plan

    # -- scoring ------------------------------------------------------------

    def _rank(
        self,
        database: "Database",
        remaining: Sequence[QueryAtom],
        bound: set[str],
    ) -> list[QueryAtom]:
        """Return up to ``search_depth`` candidates sorted best-first."""
        scored = sorted(
            remaining,
            key=lambda atom: self._cost(database, atom, bound),
        )
        depth = min(self.config.search_depth, len(scored))
        # The greedy choice only looks at the first `depth` candidates; with
        # depth < len(remaining) the planner can miss the globally best atom,
        # which is exactly the behaviour (occasional bad plans) the paper
        # reports for optimizer_search_depth=3.
        return scored[:depth] if depth else list(scored)

    def _cost(
        self, database: "Database", atom: QueryAtom, bound: set[str]
    ) -> tuple[float, int]:
        """Estimated cost of evaluating ``atom`` next.

        Lower is better.  The estimate is the expected number of candidate
        rows: table cardinality divided by a selectivity factor derived from
        how many of the atom's columns are bound (by constants or previously
        bound variables) and whether an index covers them.
        """
        table = database.table(atom.table)
        cardinality = max(len(table), 1)
        schema = table.schema
        bound_columns: list[str] = []
        for position, term in enumerate(atom.terms):
            column = schema.columns[position].name
            if not isinstance(term, Var) or term.name in bound:
                bound_columns.append(column)
        if not bound_columns:
            return (float(cardinality), -len(atom.terms))
        index = table.best_index(bound_columns)
        if index is not None and set(index.columns) == set(bound_columns):
            # Fully covered equality lookup: expect O(1) matching rows.
            estimate = 1.0
        elif index is not None:
            estimate = cardinality / (10.0 * len(index.columns))
        else:
            estimate = cardinality / (2.0 * len(bound_columns))
        return (estimate, -len(bound_columns))
