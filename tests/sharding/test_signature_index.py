"""Unit tests for the signature-based routing index.

The index must be *conservative* — every partition the exhaustive
pairwise-unification scan would find is a candidate — and *incremental* —
extend/refresh/discard keep it equal to an index rebuilt from scratch.
"""

from __future__ import annotations

import random


from repro.core.partition import Partition
from repro.core.quantum_state import PendingTransaction
from repro.core.resource_transaction import ResourceTransaction
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.sharding import SignatureIndex


def make_entry(body, updates, sequence):
    """A pending entry whose renamed transaction is the transaction itself."""
    txn = ResourceTransaction(body=tuple(body), updates=tuple(updates))
    renamed = txn.rename_variables(f"@{txn.transaction_id}")
    return PendingTransaction(original=txn, renamed=renamed, sequence=sequence)


def booking_entry(flight, sequence, seat=None):
    """A flight-booking entry, constant-pinned to ``flight``.

    ``seat=None`` books any seat (wildcard position); otherwise the seat is
    pinned too.
    """
    seat_term = Variable("s") if seat is None else Constant(seat)
    body = [Atom.body("Available", [Constant(flight), seat_term])]
    updates = [
        Atom.delete("Available", [Constant(flight), seat_term]),
        Atom.insert("Bookings", [Constant(f"u{sequence}"), Constant(flight), seat_term]),
    ]
    return make_entry(body, updates, sequence)


def partition_with(*entries):
    partition = Partition()
    for entry in entries:
        partition.append(entry)
    return partition


def probe_atoms(entry):
    return tuple(entry.renamed.body) + tuple(entry.renamed.updates)


class TestConservative:
    def test_exact_overlap_implies_candidate(self):
        """Randomised: the index never filters a truly overlapping partition."""
        rng = random.Random(7)
        index = SignatureIndex()
        partitions = []
        sequence = 0
        for _ in range(12):
            entries = []
            for _ in range(rng.randrange(1, 4)):
                sequence += 1
                flight = rng.randrange(6)
                seat = rng.choice([None, f"s{rng.randrange(4)}"])
                entries.append(booking_entry(flight, sequence, seat=seat))
            partition = partition_with(*entries)
            partitions.append(partition)
            index.add(partition)
        for _ in range(120):
            sequence += 1
            flight = rng.randrange(6)
            seat = rng.choice([None, f"s{rng.randrange(4)}"])
            probe = probe_atoms(booking_entry(flight, sequence, seat=seat))
            candidates = index.candidates(probe)
            for partition in partitions:
                if partition.overlaps_atoms(probe):
                    assert partition.partition_id in candidates

    def test_constant_pinned_probe_is_precise(self):
        """Distinct pinned constants route to exactly the one partition."""
        index = SignatureIndex()
        partitions = {
            flight: partition_with(booking_entry(flight, flight + 1))
            for flight in range(8)
        }
        for partition in partitions.values():
            index.add(partition)
        for flight, partition in partitions.items():
            probe = probe_atoms(booking_entry(flight, 100 + flight))
            assert index.candidates(probe) == {partition.partition_id}

    def test_wildcard_probe_reaches_all_same_relation_partitions(self):
        index = SignatureIndex()
        pinned = partition_with(booking_entry(3, 1))
        other = partition_with(booking_entry(4, 2))
        unrelated = partition_with(
            make_entry(
                [Atom.body("Hotels", [Variable("h")])],
                [Atom.delete("Hotels", [Variable("h")])],
                3,
            )
        )
        for partition in (pinned, other, unrelated):
            index.add(partition)
        probe = probe_atoms(booking_entry(5, 4, seat=None))
        probe_any_flight = tuple(
            Atom.body("Available", [Variable("f"), Variable("s")]) for _ in (1,)
        )
        assert index.candidates(probe_any_flight) == {
            pinned.partition_id,
            other.partition_id,
        }
        # A pinned probe on flight 5 matches nothing: all partitions pin
        # other flights and none leaves the flight position wildcard.
        assert index.candidates(probe) == frozenset()

    def test_unknown_relation_has_no_candidates(self):
        index = SignatureIndex()
        index.add(partition_with(booking_entry(1, 1)))
        probe = (Atom.body("Cars", [Constant(1)]),)
        assert index.candidates(probe) == frozenset()

    def test_arity_mismatch_has_no_candidates(self):
        index = SignatureIndex()
        index.add(partition_with(booking_entry(1, 1)))
        probe = (Atom.body("Available", [Constant(1)]),)
        assert index.candidates(probe) == frozenset()


class TestIncrementalMaintenance:
    def rebuild(self, partitions):
        fresh = SignatureIndex()
        for partition in partitions:
            fresh.add(partition)
        return fresh

    def assert_equivalent(self, index, rebuilt, probes):
        for probe in probes:
            assert index.candidates(probe) == rebuilt.candidates(probe)

    def test_extend_matches_rebuild(self):
        index = SignatureIndex()
        partition = partition_with(booking_entry(1, 1))
        index.add(partition)
        new_entry = booking_entry(1, 2, seat="s9")
        partition.append(new_entry)
        index.extend(partition, new_entry)
        rebuilt = self.rebuild([partition])
        probes = [probe_atoms(booking_entry(1, 10, seat="s9")),
                  probe_atoms(booking_entry(1, 11))]
        self.assert_equivalent(index, rebuilt, probes)

    def test_refresh_drops_stale_postings(self):
        index = SignatureIndex()
        e1, e2 = booking_entry(1, 1, seat="s1"), booking_entry(2, 2, seat="s2")
        partition = partition_with(e1, e2)
        index.add(partition)
        partition.remove(e1)
        index.refresh(partition)
        probe_flight1 = probe_atoms(booking_entry(1, 10, seat="s1"))
        assert index.candidates(probe_flight1) == frozenset()
        probe_flight2 = probe_atoms(booking_entry(2, 11, seat="s2"))
        assert index.candidates(probe_flight2) == {partition.partition_id}

    def test_discard_forgets_partition(self):
        index = SignatureIndex()
        partition = partition_with(booking_entry(1, 1))
        index.add(partition)
        assert partition.partition_id in index
        index.discard(partition.partition_id)
        assert partition.partition_id not in index
        assert index.statistics.postings == 0
        assert index.candidates(probe_atoms(booking_entry(1, 2))) == frozenset()


class TestImpreciseFallback:
    def test_unhashable_constant_marks_partition_imprecise(self):
        index = SignatureIndex()
        partition = partition_with(
            make_entry(
                [Atom.body("Weird", [Constant([1, 2])])],
                [Atom.delete("Weird", [Constant([1, 2])])],
                1,
            )
        )
        index.add(partition)
        assert index.is_imprecise(partition.partition_id)
        # Imprecise partitions are candidates for *every* probe, even ones
        # that share no relation — the exact scan still decides.
        probe = probe_atoms(booking_entry(1, 2))
        assert partition.partition_id in index.candidates(probe)
        assert index.statistics.imprecise_probes >= 1

    def test_unhashable_probe_constant_stays_conservative(self):
        index = SignatureIndex()
        partition = partition_with(booking_entry(1, 1))
        index.add(partition)
        probe = (Atom.body("Available", [Constant(1), Constant([1, 2])]),)
        # The unhashable position is left unconstrained; the pinned flight
        # still narrows to the right partition.
        assert index.candidates(probe) == {partition.partition_id}

    def test_discard_clears_imprecise_flag(self):
        index = SignatureIndex()
        partition = partition_with(
            make_entry(
                [Atom.body("Weird", [Constant([1])])],
                [Atom.delete("Weird", [Constant([1])])],
                1,
            )
        )
        index.add(partition)
        index.discard(partition.partition_id)
        assert not index.is_imprecise(partition.partition_id)
        assert index.candidates(probe_atoms(booking_entry(1, 2))) == frozenset()
