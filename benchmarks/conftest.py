"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a scaled
workload size (the paper's Java-over-MySQL prototype ran thousands of
transactions; a pure-Python reproduction uses smaller databases so the whole
suite finishes in minutes).  Set ``REPRO_BENCH_SCALE=paper`` in the
environment to run the paper-sized parameters instead — see EXPERIMENTS.md
for which scale produced the recorded numbers.
"""

from __future__ import annotations

import os

import pytest

#: "default" (scaled-down, minutes) or "paper" (the published sizes, hours).
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

def pytest_configure(config) -> None:
    """Register the ``smoke`` marker (fast cases kept by ``-m smoke``)."""
    config.addinivalue_line(
        "markers",
        "smoke: fast benchmark subset run by `make check` (select with -m smoke)",
    )
    config.addinivalue_line(
        "markers",
        "recovery: durability/recovery benchmark run by `make recoverbench` "
        "(select with -m recovery; excluded from -m smoke)",
    )
    config.addinivalue_line(
        "markers",
        "search: admission-search strategy benchmark run by `make searchbench` "
        "(select with -m search; excluded from -m smoke)",
    )


@pytest.fixture(scope="session")
def smoke_run(request) -> bool:
    """True when the run was restricted to the smoke subset (``-m smoke``).

    Smoke-marked benchmarks shrink their parameters further so the whole
    selection finishes in roughly ten seconds (the ``make check`` budget).
    """
    markexpr = request.config.getoption("markexpr", default="") or ""
    # Exact match only: compound expressions like "not smoke" must not
    # shrink parameters.
    return markexpr.strip() == "smoke"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active benchmark scale ("default" or "paper")."""
    return BENCH_SCALE


def report(title: str, body: str) -> None:
    """Print a result block so ``pytest -s`` shows the regenerated artifact."""
    print(f"\n--- {title} ---\n{body}")
