"""Unit tests for the admission-lane machinery itself.

The linearization harness (`test_concurrent_admission_harness.py`) proves
the end-to-end property; these tests pin the individual mechanisms: the
bounded lane queue's typed saturation error (and that the dispatcher never
waits on a full queue while holding the routing lock), the conservative
conflict-pattern prefilter, the per-shard ownership assertions, controller
lifecycle, and the statistics surface.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import QuantumConfig, QuantumDatabase, parse_transaction
from repro.core.partition import PartitionManager
from repro.core.quantum_state import PendingTransaction
from repro.core.resource_transaction import ResourceTransaction
from repro.errors import AdmissionLaneSaturated, QuantumStateError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.sharding import ShardedPartitionManager
from repro.sharding.admission_lane import (
    conflict_pattern,
    patterns_may_unify,
)


def make_qdb(*, shards=2, lanes=True, k=8, **config_kwargs):
    qdb = QuantumDatabase(
        config=QuantumConfig(
            k=k, shards=shards, admission_lanes=lanes, **config_kwargs
        )
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, 7) for i in range(3)],
    )
    return qdb


def booking(user, flight):
    return parse_transaction(
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)",
        client=user,
    )


class TestConflictPattern:
    """The conservative prefilter must over-approximate unifiability."""

    def _atoms(self, *terms):
        return (Atom.body("Available", list(terms)),)

    def test_distinct_constants_do_not_conflict(self):
        first = conflict_pattern(self._atoms(Constant(1), Variable("s")))
        second = conflict_pattern(self._atoms(Constant(2), Variable("s")))
        assert not patterns_may_unify(first, second)

    def test_equal_constants_conflict(self):
        first = conflict_pattern(self._atoms(Constant(1), Variable("s")))
        second = conflict_pattern(self._atoms(Constant(1), Variable("t")))
        assert patterns_may_unify(first, second)

    def test_wildcard_conflicts_with_everything(self):
        wild = conflict_pattern(self._atoms(Variable("f"), Variable("s")))
        pinned = conflict_pattern(self._atoms(Constant(9), Constant("s1")))
        assert patterns_may_unify(wild, pinned)
        assert patterns_may_unify(pinned, wild)

    def test_different_relations_never_conflict(self):
        first = conflict_pattern((Atom.body("Available", [Constant(1)]),))
        second = conflict_pattern((Atom.body("Bookings", [Constant(1)]),))
        assert not patterns_may_unify(first, second)

    def test_unhashable_constants_compare_by_equality(self):
        first = conflict_pattern(self._atoms(Constant([1]), Variable("s")))
        second = conflict_pattern(self._atoms(Constant([1]), Variable("t")))
        third = conflict_pattern(self._atoms(Constant([2]), Variable("t")))
        assert patterns_may_unify(first, second)
        assert not patterns_may_unify(first, third)


class TestLaneSaturation:
    """Satellite: the bounded queue's typed error and lock discipline."""

    def test_put_raises_typed_error_when_queue_stays_full(self):
        qdb = make_qdb(lane_queue_depth=1, lane_dispatch_timeout_s=0.05)
        controller = qdb.admission_controller()
        assert controller is not None
        release = threading.Event()
        controller.before_admit = lambda _slot, _lane: release.wait(5.0)
        try:
            lane = controller.lanes[0]
            from repro.sharding.admission_lane import _LaneWork

            slots = [None] * 3
            # First item occupies the worker (blocked in before_admit), the
            # second fills the depth-1 queue, the third must time out with
            # the typed error instead of blocking forever.
            lane.put(_LaneWork(0, booking("a", 1), 1, slots), 1.0)
            lane.put(_LaneWork(1, booking("b", 1), 2, slots), 1.0)
            with pytest.raises(AdmissionLaneSaturated):
                lane.put(_LaneWork(2, booking("c", 1), 3, slots), 0.05)
        finally:
            release.set()
            qdb.close()

    def test_dispatcher_never_holds_routing_lock_while_waiting(self):
        """While a dispatch waits on a saturated lane, the routing lock must
        be free — the satellite's actual fix (a blocked router would stall
        every other lane and classification)."""
        qdb = make_qdb(lane_queue_depth=1, lane_dispatch_timeout_s=0.6)
        controller = qdb.admission_controller()
        assert controller is not None
        release = threading.Event()
        controller.before_admit = lambda _slot, _lane: release.wait(5.0)
        # All to one flight => all to one lane; depth 1 + a blocked worker
        # saturates it, so the dispatcher ends up waiting inside put().
        transactions = [booking(f"u{i}", 1) for i in range(4)]
        lock_was_free = threading.Event()

        def probe():
            deadline = time.monotonic() + 3.0
            routing_lock = qdb.state.partitions.routing_lock
            while time.monotonic() < deadline:
                # Give the dispatcher time to actually block in put().
                time.sleep(0.15)
                if routing_lock.acquire(timeout=0.05):
                    routing_lock.release()
                    lock_was_free.set()
                    release.set()
                    return
            release.set()

        prober = threading.Thread(target=probe, daemon=True)
        prober.start()
        results = qdb.commit_batch(transactions)
        prober.join(timeout=5.0)
        qdb.close()
        assert lock_was_free.is_set(), "routing lock was held during the wait"
        # Three seats on flight 1: the fourth booking is (correctly)
        # rejected; the batch itself completed despite the saturation.
        assert [r.committed for r in results] == [True, True, True, False]

    def test_saturation_escalates_to_barrier_not_failure(self):
        """A saturated dispatch degrades to an epoch barrier: the batch
        still completes with decisions identical to the serialized run."""
        slow = make_qdb(lane_queue_depth=1, lane_dispatch_timeout_s=0.02)
        controller = slow.admission_controller()
        assert controller is not None
        controller.before_admit = lambda _slot, _lane: time.sleep(0.05)
        transactions = [booking(f"v{i}", (i % 2) + 1) for i in range(8)]
        results = slow.commit_batch(transactions)
        stats = controller.statistics
        slow_decisions = [r.committed for r in results]
        slow.close()

        plain = make_qdb(lanes=False)
        plain_decisions = [
            r.committed for r in plain.commit_batch(transactions)
        ]
        plain.close()
        assert slow_decisions == plain_decisions
        assert stats.saturation_barriers >= 1


class TestOwnershipAssertions:
    """Partition ownership is asserted on every lane-scoped mutation."""

    def _entry(self, flight, sequence):
        txn = ResourceTransaction(
            body=(Atom.body("Available", [Constant(flight), Variable("s")]),),
            updates=(
                Atom.delete("Available", [Constant(flight), Variable("s")]),
            ),
        )
        renamed = txn.rename_variables(f"@{txn.transaction_id}")
        atoms = tuple(renamed.body) + tuple(renamed.updates)
        return (
            PendingTransaction(original=txn, renamed=renamed, sequence=sequence),
            atoms,
        )

    def test_shard_tags_partitions_it_owns(self):
        manager = ShardedPartitionManager(2)
        entry, atoms = self._entry(flight=1, sequence=1)
        partition, _merged = manager.merged_for(atoms)
        partition.append(entry)
        owner = manager.shard_for(partition.partition_id)
        assert owner is not None
        assert partition.owner_shard_id == owner.shard_id
        manager.close()

    def test_lane_scope_rejects_foreign_partition(self):
        manager = ShardedPartitionManager(2)
        entry, atoms = self._entry(flight=1, sequence=1)
        partition, _merged = manager.merged_for(atoms)
        partition.append(entry)
        owner = manager.shard_for(partition.partition_id)
        foreign = 1 - owner.shard_id
        _entry2, atoms2 = self._entry(flight=1, sequence=2)
        with manager.lane_scope(foreign):
            with pytest.raises(QuantumStateError):
                manager.merged_for(atoms2)
        # The owning lane is fine.
        with manager.lane_scope(owner.shard_id):
            same, merged = manager.merged_for(atoms2)
        assert same is partition and not merged
        manager.close()

    def test_fresh_partition_joins_the_lane_shard(self):
        manager = ShardedPartitionManager(3)
        _entry, atoms = self._entry(flight=5, sequence=1)
        with manager.lane_scope(2):
            partition, merged = manager.merged_for(atoms)
        assert not merged
        assert partition.owner_shard_id == 2
        # Outside a lane scope the least-loaded shard is used instead.
        _entry2, atoms2 = self._entry(flight=6, sequence=2)
        partition2, _merged = manager.merged_for(atoms2)
        assert partition2.owner_shard_id in (0, 1)
        manager.close()

    def test_plain_manager_has_no_ownership(self):
        manager = PartitionManager()
        _entry, atoms = self._entry(flight=1, sequence=1)
        partition, _merged = manager.merged_for(atoms)
        assert partition.owner_shard_id is None
        # assert_owned_by is a no-op without an owner (unsharded path).
        partition.assert_owned_by(7)


class TestControllerLifecycle:
    def test_close_is_idempotent_and_controller_restarts(self):
        qdb = make_qdb()
        first = qdb.admission_controller()
        assert first is not None
        results = qdb.commit_batch([booking(f"w{i}", i % 3 + 1) for i in range(6)])
        assert all(r.committed for r in results)
        qdb.close()
        qdb.close()  # idempotent
        assert first.closed
        # The next batch lazily builds a fresh controller.
        second = qdb.admission_controller()
        assert second is not first and not second.closed
        more = qdb.commit_batch([booking(f"x{i}", i % 3 + 1) for i in range(4)])
        assert len(more) == 4
        qdb.close()

    def test_unsharded_or_disabled_has_no_controller(self):
        plain = make_qdb(shards=1, lanes=True)
        assert plain.admission_controller() is None
        plain.close()
        disabled = make_qdb(shards=2, lanes=False)
        assert disabled.admission_controller() is None
        report = disabled.statistics_report()
        assert not any(key.startswith("admission.") for key in report)
        disabled.close()

    def test_statistics_report_exposes_admission_section(self):
        qdb = make_qdb(shards=2, lanes=True)
        qdb.commit_batch([booking(f"y{i}", i % 4 + 1) for i in range(8)])
        report = qdb.statistics_report()
        assert report["admission.lanes"] == 2
        assert report["admission.batches"] == 1
        assert (
            report["admission.lane_dispatches"]
            + report["admission.barrier_arrivals"]
        ) == 8
        assert "admission.lane_conflicts" in report
        assert "admission.barrier_drains" in report
        qdb.close()

    def test_lane_witness_statistics_slices_reconcile(self):
        qdb = make_qdb(shards=2, lanes=True)
        qdb.commit_batch([booking(f"z{i}", i % 4 + 1) for i in range(8)])
        cache = qdb.state.cache
        merged = cache.merged_statistics()
        # Lane slices carry the concurrent admissions' witness traffic ...
        lane_hits = sum(
            s.witness_hits for s in cache._lane_statistics.values()
        )
        assert lane_hits > 0
        # ... and the merged view reconciles shared + per-lane counters.
        assert merged.witness_hits == cache.statistics.witness_hits + lane_hits
        qdb.close()


class TestShippedAdmissionOnLanes:
    """Process-backend lanes ship each witness search to the owning
    shard's worker pool; thread lanes and serialized admissions never do."""

    def test_process_lanes_ship_and_match_serialized_decisions(self):
        shipped = make_qdb(shards=2, lanes=True, shard_backend="process")
        plain = make_qdb(shards=2, lanes=False)
        stream = [booking(f"u{i}", i % 4 + 1) for i in range(10)]
        shipped_decisions = [r.committed for r in shipped.commit_batch(stream)]
        plain_decisions = [plain.execute(t).committed for t in stream]
        assert shipped_decisions == plain_decisions
        report = shipped.statistics_report()
        assert report["sharding.admission_round_trips"] > 0
        assert report["sharding.admission_payload_bytes"] > 0
        # Admission ships are a subset of all worker round trips.
        assert (
            report["sharding.worker_round_trips"]
            >= report["sharding.admission_round_trips"]
        )
        assert plain.statistics_report()["sharding.admission_round_trips"] == 0
        shipped.close()
        plain.close()

    def test_thread_lanes_never_ship(self):
        qdb = make_qdb(shards=2, lanes=True)  # thread backend
        results = qdb.commit_batch([booking(f"t{i}", i % 3 + 1) for i in range(6)])
        assert len(results) == 6
        report = qdb.statistics_report()
        assert report["sharding.admission_round_trips"] == 0
        assert report["sharding.admission_payload_bytes"] == 0
        qdb.close()

    def test_controller_warm_prespawns_pools(self):
        qdb = make_qdb(shards=2, lanes=True, shard_backend="process")
        controller = qdb.admission_controller()
        assert controller is not None
        shards = qdb.state.partitions.shards
        assert not any(shard.started for shard in shards)
        controller.warm()
        assert all(shard.started for shard in shards)
        qdb.close()
