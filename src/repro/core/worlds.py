"""Explicit possible-worlds enumeration (Figure 2).

The quantum database never materialises its possible worlds — that is the
whole point of the intensional representation — but for *small* instances an
explicit enumeration is invaluable:

* it is the ground truth the intensional machinery is tested against
  (property tests check that the composed body is satisfiable if and only
  if the set of possible worlds is non-empty, and that every grounding the
  system picks corresponds to one of the enumerated worlds);
* it reproduces Figure 2 of the paper (the Mickey / Donald / Minnie
  evolution) in the ``possible_worlds`` example.

A possible world is the database state obtained from the initial database
by applying the pending transactions in order under one consistent choice
of groundings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.resource_transaction import ResourceTransaction
from repro.logic.formula import atoms_to_formula
from repro.relational.database import Database
from repro.solver.grounding import GroundingSearch


@dataclass(frozen=True)
class PossibleWorld:
    """One fully concrete database state plus the groundings that led to it.

    Attributes:
        snapshot: table name → sorted tuple of row value-tuples.
        groundings: per transaction (in sequence order), the chosen
            variable-name → value mapping.
        satisfied_optionals: total number of optional atoms satisfied across
            all transactions in this world.
    """

    snapshot: tuple[tuple[str, tuple[tuple[Any, ...], ...]], ...]
    groundings: tuple[tuple[int, tuple[tuple[str, Any], ...]], ...]
    satisfied_optionals: int = 0

    @classmethod
    def from_database(
        cls,
        database: Database,
        groundings: Sequence[tuple[int, dict[str, Any]]],
        satisfied_optionals: int = 0,
    ) -> "PossibleWorld":
        """Capture a database state as an immutable, comparable world."""
        snapshot = tuple(
            (name, tuple(sorted(database.table(name).snapshot())))
            for name in sorted(database.table_names())
        )
        frozen = tuple(
            (txn_id, tuple(sorted(valuation.items()))) for txn_id, valuation in groundings
        )
        return cls(snapshot=snapshot, groundings=frozen, satisfied_optionals=satisfied_optionals)

    def table(self, name: str) -> tuple[tuple[Any, ...], ...]:
        """Rows of ``name`` in this world (sorted tuples)."""
        for table_name, rows in self.snapshot:
            if table_name == name:
                return rows
        return ()

    def distinct_states(self) -> frozenset:
        """Hashable representation of the extensional state only."""
        return frozenset(self.snapshot)


def enumerate_possible_worlds(
    database: Database,
    transactions: Sequence[ResourceTransaction],
    *,
    max_worlds: int = 10_000,
) -> list[PossibleWorld]:
    """Enumerate every possible world of ``database`` + pending transactions.

    Transactions are applied in the given order; each consistent grounding
    of each transaction forks the state, exactly as in Figure 2.  Optional
    atoms do not restrict the enumeration (they never block execution) but
    each world records how many it satisfies, so callers can identify the
    worlds a preference-maximising system would retain.

    Args:
        database: the initial extensional database (not modified).
        transactions: the pending transactions, in serialization order.
        max_worlds: safety bound; enumeration stops with a ``ValueError``
            when exceeded (the extensional representation grows
            exponentially, which is the paper's argument for the intensional
            one).

    Returns:
        All distinct possible worlds.  An empty list means the transaction
        sequence cannot be executed consistently (the quantum database would
        have rejected the last transaction).
    """
    worlds: list[tuple[Database, list[tuple[int, dict[str, Any]]], int]] = [
        (database.copy(), [], 0)
    ]
    for transaction in transactions:
        next_worlds: list[tuple[Database, list[tuple[int, dict[str, Any]]], int]] = []
        hard_formula = atoms_to_formula(transaction.hard_body)
        for state, history, optional_count in worlds:
            search = GroundingSearch(state)
            groundings = search.find_all(
                hard_formula, required=transaction.hard_variables()
            )
            for grounding in groundings:
                forked = state.copy()
                substitution = grounding.substitution
                for statement in transaction.ground_updates(substitution):
                    forked.apply(statement)
                # Optional atoms are judged against the state this world
                # reaches after the transaction executes, existentially over
                # any variables the hard grounding left free.
                satisfied = _count_satisfied_optionals(forked, transaction, substitution)
                next_worlds.append(
                    (
                        forked,
                        history + [(transaction.transaction_id, substitution.as_valuation())],
                        optional_count + satisfied,
                    )
                )
                if len(next_worlds) > max_worlds:
                    raise ValueError(
                        f"possible-world enumeration exceeded {max_worlds} worlds"
                    )
        worlds = next_worlds
    results = [
        PossibleWorld.from_database(state, history, satisfied)
        for state, history, satisfied in worlds
    ]
    # Deduplicate identical worlds (same extensional state and groundings).
    unique: dict[tuple, PossibleWorld] = {}
    for world in results:
        unique[(world.snapshot, world.groundings)] = world
    return list(unique.values())


def distinct_extensional_states(worlds: Iterable[PossibleWorld]) -> int:
    """Number of distinct extensional database states among ``worlds``."""
    return len({world.distinct_states() for world in worlds})


def max_optional_worlds(worlds: Sequence[PossibleWorld]) -> list[PossibleWorld]:
    """The worlds satisfying the maximum number of optional atoms.

    These are the worlds a preference-maximising collapse would retain
    ("the world in which the maximum number of conditions are satisfied is
    preserved").
    """
    if not worlds:
        return []
    best = max(world.satisfied_optionals for world in worlds)
    return [world for world in worlds if world.satisfied_optionals == best]


def _count_satisfied_optionals(
    database: Database,
    transaction: ResourceTransaction,
    substitution,
) -> int:
    """Optional atoms of ``transaction`` satisfiable in ``database``.

    Each optional atom is specialised with the hard grounding first; any
    remaining free variables are checked existentially.
    """
    from repro.logic.formula import AtomFormula

    search = GroundingSearch(database)
    count = 0
    for atom in transaction.optional_body:
        specialised = substitution.apply_atom(atom)
        if search.exists(AtomFormula(specialised.as_body())):
            count += 1
    return count


def _database_oracle(database: Database):
    """Membership oracle over a database (for optional-atom counting)."""

    def oracle(relation: str, values: tuple[Any, ...]) -> bool:
        if not database.has_table(relation):
            return False
        table = database.table(relation)
        columns = list(table.schema.column_names)
        for _ in table.lookup(columns, list(values)):
            return True
        return False

    return oracle
