"""Figure 8 — read vs. update time under mixed workloads.

Regenerates the Figure 8 series: as the read percentage grows, the time
spent answering reads grows and the time spent executing resource
transactions shrinks.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure8 import default_parameters, paper_parameters, run_figure8
from repro.experiments.report import format_table

PARAMETERS = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_figure8_mixed_time_split(benchmark):
    result = benchmark.pedantic(lambda: run_figure8(PARAMETERS), rounds=1, iterations=1)
    report(
        "Figure 8",
        format_table(["Read %", "k", "Update time (s)", "Read time (s)"], result.rows()),
    )
    percentages = sorted(PARAMETERS.read_percentages)
    low, high = percentages[0], percentages[-1]
    for k in PARAMETERS.ks:
        low_run = result.runs[(k, low)]
        high_run = result.runs[(k, high)]
        # More reads → more read time and less resource-transaction time.
        assert high_run.extra["read_time"] >= low_run.extra["read_time"]
        assert high_run.extra["update_time"] <= low_run.extra["update_time"] * 1.5
