"""The QuantumDatabase facade: the library's main public API.

From the developer's perspective "the API is almost identical to the API
provided by any standard database ... the major new feature is support for
resource transactions" (Section 4).  :class:`QuantumDatabase` wraps an
extensional :class:`~repro.relational.database.Database` and adds:

* ``execute`` — submit a resource transaction (object or Datalog-like text);
  it commits without assigning values, or is rejected if no consistent
  grounding exists;
* ``read`` — ordinary reads; under the default collapse semantics a read
  forces the grounding of exactly the pending transactions it unifies with;
* ``insert`` / ``delete`` — ordinary blind writes, admission-checked against
  the pending transactions' composed bodies;
* ``ground`` / ``ground_all`` / ``check_in`` — explicit collapse, e.g. when
  the traveller shows up at the airport;
* crash recovery from the pending-transactions table (``recover``).

Typical usage::

    qdb = QuantumDatabase()
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
    ...
    result = qdb.execute(
        "-Available(?f, ?s), +Bookings('Mickey', ?f, ?s) :-1 Available(?f, ?s)"
    )
    assert result.committed          # Mickey has a guaranteed seat ...
    qdb.check_in(result.transaction_id)   # ... fixed only at check-in time.

Concurrent clients should go through the asyncio session layer
(:mod:`repro.server`), which serializes every mutation behind one writer
while preserving these exact semantics.  ``docs/architecture.md`` describes
the admission flow, the witness-cache fast path and the session model.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sharding.admission_lane import AdmissionController
    from repro.sharding.backend import ShardBackend

from repro.core.entanglement import EntanglementRegistry
from repro.core.grounding_policy import GroundingPolicy, GroundingStrategy
from repro.core.parser import parse_transaction
from repro.core.quantum_state import GroundedTransaction, QuantumState
from repro.core.reads import ReadMode, ReadRequest
from repro.core.recovery import PendingTransactionStore
from repro.core.resource_transaction import ResourceTransaction
from repro.core.serializability import SerializabilityMode
from repro.core.worlds import enumerate_possible_worlds
from repro.errors import QuantumError, TransactionRejected
from repro.relational.database import Database
from repro.relational.dml import Delete, Insert
from repro.relational.planner import MYSQL_JOIN_LIMIT, PlannerConfig
from repro.relational.schema import Column
from repro.solver.strategy import AdmissionSearchConfig


@dataclass(frozen=True)
class QuantumConfig:
    """Configuration of a quantum database.

    Attributes:
        k: maximum number of pending transactions per partition (the paper's
            ``k``; default 61, MySQL's join limit).
        strategy: forced-grounding victim order (paper default: oldest
            first).
        serializability: STRICT (arrival order) or SEMANTIC (the paper's
            preferred mode).
        read_mode: default read semantics (the paper's choice: COLLAPSE).
        ground_on_partner_arrival: ground an entangled pair as soon as both
            partners are in the system (Section 5.1's execution policy).
        witness_cache: enable the per-partition witness store that powers the
            incremental admission fast path.  Disabling it reproduces the
            seed behaviour (every admission re-verifies the whole composed
            body); accept/reject decisions are identical either way, only
            the amount of re-search differs — the cache statistics (witness
            hits / misses / invalidations / fallback searches) report the
            difference.
        shards: number of partition shards (default 1: the plain
            exhaustive-scan partition manager).  With ``shards >= 2`` the
            database uses the :mod:`repro.sharding` subsystem: a
            signature-based routing index prefilters ``merged_for``
            candidates and partitions are owned by worker shards whose
            executors the grounding plan phase fans out on.  Accept/reject
            decisions are bit-identical to the unsharded path — only the
            scan work changes (the ``partitions.*`` counters report it).
        shard_workers: worker count of each shard's plan executor.  On a
            sharded database grounding plans always run on these (the
            session layer's shared ``executor_workers`` pool is bypassed).
        shard_backend: executor strategy of the shards — ``"thread"``
            (default) plans on per-shard thread pools sharing the writer's
            heap; ``"process"`` ships each partition's composed body and
            witness state to per-shard worker processes as picklable
            payloads and runs the read-only grounding searches truly in
            parallel (no GIL).  Decisions are bit-identical either way;
            the ``sharding.*`` counters report the payload traffic.
        admission_lanes: enable the router-first concurrent admission
            pipeline (:mod:`repro.sharding.admission_lane`): batched
            admissions are classified at enqueue time and single-shard
            arrivals run on per-shard admission lanes — one writer per
            shard instead of one global writer — while cross-shard
            arrivals act as epoch barriers that drain every lane and run
            serialized.  Decisions, partition contents and grounding
            valuations are bit-identical to the serialized writer for
            every arrival sequence (the linearization harness in
            ``tests/sharding`` proves it over seeded streams); only the
            scheduling changes.  Requires ``shards >= 2`` to have any
            effect; the ``admission.*`` counters report lane traffic.
        lane_queue_depth: bound of each admission lane's queue; dispatches
            beyond it wait (backpressure) up to the dispatch timeout.
        lane_dispatch_timeout_s: how long a dispatch may wait on a full
            lane queue before the typed
            :class:`~repro.errors.AdmissionLaneSaturated` fires (the
            controller then escalates the arrival to an epoch barrier).
        admission_ship_timeout_s: with ``admission_lanes=True`` and
            ``shard_backend="process"``, each lane ships its arrivals'
            witness-extension searches to the owning shard's worker
            process as picklable payloads (see
            :class:`~repro.sharding.backend.AdmissionPayload`) — the
            admission analogue of the grounding-plan shipping, and what
            makes concurrent lanes scale on real cores instead of the
            GIL.  This bounds the wait for each shipped result; on expiry
            the lane reruns the search inline, so the decision is
            unchanged (same pure search function) and a hung worker costs
            latency, never correctness.  ``None`` waits indefinitely.
        search: the admission-search strategy
            (:class:`~repro.solver.strategy.AdmissionSearchConfig`).  The
            default reproduces the seed's plain backtracking search
            byte-for-byte; ``strategy="bnb"`` switches every admission to
            the trail-based branch-and-bound searcher with per-shape fast
            paths, and an explicit
            :class:`~repro.solver.strategy.SamplingConfig` opts huge
            partitions into the approximate estimator.  Dispatch lives
            inside the pure ``compute_admission``, so inline admission,
            thread lanes, and shipped process workers honor the strategy
            bit-identically.
        planner: join-planner settings for the underlying store.
    """

    k: int = MYSQL_JOIN_LIMIT
    strategy: GroundingStrategy = GroundingStrategy.OLDEST_FIRST
    serializability: SerializabilityMode = SerializabilityMode.SEMANTIC
    read_mode: ReadMode = ReadMode.COLLAPSE
    ground_on_partner_arrival: bool = True
    witness_cache: bool = True
    shards: int = 1
    shard_workers: int = 1
    shard_backend: "ShardBackend | str" = "thread"
    admission_lanes: bool = False
    lane_queue_depth: int = 256
    lane_dispatch_timeout_s: float = 5.0
    admission_ship_timeout_s: float | None = 30.0
    search: AdmissionSearchConfig = field(default_factory=AdmissionSearchConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise QuantumError("QuantumConfig.shards must be at least 1")
        if self.shard_workers < 1:
            raise QuantumError("QuantumConfig.shard_workers must be at least 1")
        if self.lane_queue_depth < 1:
            raise QuantumError("QuantumConfig.lane_queue_depth must be at least 1")
        if self.lane_dispatch_timeout_s <= 0:
            raise QuantumError(
                "QuantumConfig.lane_dispatch_timeout_s must be positive"
            )
        if (
            self.admission_ship_timeout_s is not None
            and self.admission_ship_timeout_s <= 0
        ):
            raise QuantumError(
                "QuantumConfig.admission_ship_timeout_s must be positive "
                "(or None to wait indefinitely)"
            )
        from repro.sharding.backend import ShardBackend

        # Validate eagerly (a typo should fail at configuration time, not
        # at first grounding) and normalise to the enum.
        object.__setattr__(
            self, "shard_backend", ShardBackend.coerce(self.shard_backend)
        )

    def policy(self) -> GroundingPolicy:
        """The grounding policy implied by this configuration."""
        return GroundingPolicy(k=self.k, strategy=self.strategy)

    def partition_manager(self):
        """The partition manager implied by this configuration.

        ``shards == 1`` keeps the plain exhaustive-scan manager;
        ``shards >= 2`` builds a
        :class:`~repro.sharding.ShardedPartitionManager` (signature-routed
        admission, per-shard grounding-plan executors running on the
        configured backend).
        """
        if self.shards == 1:
            return None
        from repro.sharding import ShardedPartitionManager

        return ShardedPartitionManager(
            self.shards,
            workers_per_shard=self.shard_workers,
            backend=self.shard_backend,
        )


@dataclass
class CommitResult:
    """Outcome of submitting a resource transaction.

    The commit notification "represents a guarantee that the transaction
    will achieve its goal of booking a seat when value assignment actually
    happens" — so ``committed=True`` means the application never needs to
    check back.

    Attributes:
        transaction: the submitted transaction.
        committed: True if the transaction was admitted.
        pending: True if its values are still deferred (False when it was
            grounded immediately, e.g. by partner arrival or the k bound).
        grounded: transactions whose values were fixed as a side effect of
            this submission (partner pairs, forced groundings).
        rejection_reason: populated when ``committed`` is False.
        method: which admission search decided this submission —
            ``"witness"``, ``"fastpath"``, ``"backtracking"``, ``"bnb"``,
            or ``"sampled"`` (see
            :class:`~repro.core.solution_cache.AdmissionProbe`).
        exact: False only when the decision came from the opt-in sampling
            estimator; an approximate accept still carries a genuine
            witness, an approximate reject may be a false negative.
    """

    transaction: ResourceTransaction
    committed: bool
    pending: bool = False
    grounded: tuple[GroundedTransaction, ...] = ()
    rejection_reason: str | None = None
    method: str = "backtracking"
    exact: bool = True

    @property
    def transaction_id(self) -> int:
        """Id of the submitted transaction."""
        return self.transaction.transaction_id

    def __bool__(self) -> bool:
        return self.committed


class QuantumDatabase:
    """A quantum database: an extensional store plus a quantum state."""

    def __init__(
        self,
        database: Database | None = None,
        config: QuantumConfig | None = None,
    ) -> None:
        self.config = config or QuantumConfig()
        self.database = database or Database(self.config.planner)
        self.pending_store = PendingTransactionStore(self.database)
        self.entanglement = EntanglementRegistry()
        self.state = QuantumState(
            self.database,
            policy=self.config.policy(),
            serializability=self.config.serializability,
            on_grounded=self._handle_grounded,
            witness_cache=self.config.witness_cache,
            partitions=self.config.partition_manager(),
            admission_ship_timeout_s=self.config.admission_ship_timeout_s,
            search_config=self.config.search,
        )
        # The lane-parallel admission controller (lazily created; only with
        # admission_lanes=True on a sharded database).
        self._admission: "AdmissionController | None" = None
        self._admission_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Schema and extensional passthrough
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column | str],
        key: Sequence[str] | None = None,
        *,
        indexes: Sequence[Sequence[str]] = (),
    ):
        """Create a table in the extensional store."""
        return self.database.create_table(name, columns, key, indexes=indexes)

    def table(self, name: str):
        """Access a table of the extensional store directly (read-only use)."""
        return self.database.table(name)

    # ------------------------------------------------------------------
    # Ordinary (non-resource) writes
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Blind insert, checked against the pending transactions.

        Raises:
            WriteRejected: if the insert would invalidate a pending
                transaction's guarantee.
        """
        self.state.validate_write([Insert(table, tuple(values) if not isinstance(values, Mapping) else values)])

    def delete(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Blind delete, checked against the pending transactions.

        Raises:
            WriteRejected: if the delete would invalidate a pending
                transaction's guarantee.
        """
        self.state.validate_write([Delete(table, tuple(values) if not isinstance(values, Mapping) else values)])

    def load_rows(self, table: str, rows: Iterable[Sequence[Any]]) -> None:
        """Bulk-load initial data without write checks (setup convenience)."""
        deltas = []
        with self.database.begin() as txn:
            for values in rows:
                row = txn.insert(table, values)
                deltas.append((table, row.values, False))
        # Inserts cannot invalidate a monotone witness, but keep the cache
        # informed so the invariant holds even for exotic formulas.
        self.state.cache.notify_deltas(deltas)

    # ------------------------------------------------------------------
    # Resource transactions
    # ------------------------------------------------------------------

    def execute(
        self, transaction: ResourceTransaction | str, **parse_kwargs: Any
    ) -> CommitResult:
        """Submit a resource transaction (object or Datalog-like text).

        The transaction commits *without* assigning values; the commit is a
        guarantee that a suitable assignment will exist whenever it is
        forced.  If no consistent grounding exists the transaction is
        rejected (``committed=False``) rather than raising, mirroring how an
        application would experience an abort.
        """
        if isinstance(transaction, str):
            transaction = parse_transaction(transaction, **parse_kwargs)
        try:
            entry = self.state.admit(transaction)
        except TransactionRejected as exc:
            return CommitResult(
                transaction=transaction,
                committed=False,
                rejection_reason=str(exc),
                method=self.state.cache.last_method,
                exact=self.state.cache.last_exact,
            )
        # Capture the decision provenance before partner groundings below
        # run further searches on this thread.
        method = self.state.cache.last_method
        exact = self.state.cache.last_exact
        grounded: list[GroundedTransaction] = []
        # Forced groundings triggered by the k bound have already fired via
        # the on_grounded callback; collect the ones involving this call.
        if self.state.is_pending(transaction.transaction_id):
            self.pending_store.persist(transaction, entry.sequence)
        else:
            record = self.state.grounded_results.get(transaction.transaction_id)
            if record is not None:
                grounded.append(record)
        match = self.entanglement.register(transaction)
        if match is not None and self.config.ground_on_partner_arrival:
            grounded.extend(self.state.ground(match.transaction_ids()))
        return CommitResult(
            transaction=transaction,
            committed=True,
            pending=self.state.is_pending(transaction.transaction_id),
            grounded=tuple(grounded),
            method=method,
            exact=exact,
        )

    def commit_batch(
        self,
        transactions: Sequence[ResourceTransaction | str],
        **parse_kwargs: Any,
    ) -> list[CommitResult]:
        """Submit a sequence of resource transactions as one batch.

        Semantically equivalent to calling :meth:`execute` on each element in
        order (admission order matters; a rejected transaction is skipped and
        later ones still run), but cheaper:

        * admission rides the incremental fast path — each partition's
          composed body grows factor-by-factor, so the batch costs one
          composition pass per partition instead of one recomposition per
          transaction;
        * durability is batched — every transaction still pending at the end
          of the batch is persisted to the pending-transactions table in a
          single store transaction (one WAL commit record for the whole
          batch).

        With ``QuantumConfig(admission_lanes=True)`` on a sharded database
        the batch runs through the router-first concurrent admission
        pipeline instead of the serialized loop: arrivals are classified at
        enqueue time, single-shard ones run on per-shard admission lanes,
        cross-shard ones act as epoch barriers — with decisions, partition
        contents and grounding valuations bit-identical to the serialized
        loop for the same arrival order.  The durability write below stays
        a single group commit either way.

        Returns:
            One :class:`CommitResult` per submitted transaction, in order.
        """
        parsed: list[ResourceTransaction] = [
            parse_transaction(t, **parse_kwargs) if isinstance(t, str) else t
            for t in transactions
        ]
        results: list[CommitResult] = []
        admitted: list[tuple[ResourceTransaction, int]] = []
        controller = self.admission_controller() if len(parsed) > 1 else None
        if controller is not None:
            lane_results, sequences = controller.commit_many(parsed)
            results = lane_results
            admitted = [
                (transaction, sequence)
                for transaction, sequence, result in zip(
                    parsed, sequences, results
                )
                if result.committed
            ]
        else:
            for transaction in parsed:
                result, sequence = self._admit_for_batch(transaction)
                results.append(result)
                if result.committed:
                    assert sequence is not None
                    admitted.append((transaction, sequence))
        self.pending_store.persist_many(
            (transaction, sequence)
            for transaction, sequence in admitted
            if self.state.is_pending(transaction.transaction_id)
        )
        self.state.statistics.batches += 1
        self.state.statistics.batch_transactions += len(parsed)
        return results

    def _admit_for_batch(
        self,
        transaction: ResourceTransaction,
        *,
        sequence: int | None = None,
        renamed: ResourceTransaction | None = None,
    ) -> tuple[CommitResult, int | None]:
        """Admit one batch element (shared by the serial loop, the admission
        lanes, and the epoch barriers).

        Returns ``(result, sequence)`` — the sequence is ``None`` for a
        rejected transaction.  Durability is *not* handled here: the caller
        persists every still-pending admission in one group write at the
        end of its batch.
        """
        try:
            entry = self.state.admit(transaction, sequence=sequence, renamed=renamed)
        except TransactionRejected as exc:
            return (
                CommitResult(
                    transaction=transaction,
                    committed=False,
                    rejection_reason=str(exc),
                    method=self.state.cache.last_method,
                    exact=self.state.cache.last_exact,
                ),
                None,
            )
        method = self.state.cache.last_method
        exact = self.state.cache.last_exact
        grounded: list[GroundedTransaction] = []
        if not self.state.is_pending(transaction.transaction_id):
            record = self.state.grounded_results.get(transaction.transaction_id)
            if record is not None:
                grounded.append(record)
        match = self.entanglement.register(transaction)
        if match is not None and self.config.ground_on_partner_arrival:
            grounded.extend(self.state.ground(match.transaction_ids()))
        return (
            CommitResult(
                transaction=transaction,
                committed=True,
                pending=self.state.is_pending(transaction.transaction_id),
                grounded=tuple(grounded),
                method=method,
                exact=exact,
            ),
            entry.sequence,
        )

    def admission_controller(self) -> "AdmissionController | None":
        """The lane-parallel admission controller (created on first use).

        ``None`` unless ``QuantumConfig(admission_lanes=True)`` *and* the
        database is sharded.  A controller closed by :meth:`close` is
        replaced lazily, mirroring the shard executors' restart-on-use
        behaviour.
        """
        if not (self.config.admission_lanes and self.sharded):
            return None
        with self._admission_lock:
            controller = self._admission
            if controller is None or controller.closed:
                from repro.sharding.admission_lane import AdmissionController

                controller = AdmissionController(
                    self,
                    self.state.partitions,
                    queue_depth=self.config.lane_queue_depth,
                    dispatch_timeout_s=self.config.lane_dispatch_timeout_s,
                )
                self._admission = controller
            return controller

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(
        self,
        request: ReadRequest | str,
        terms: Sequence[Any] | None = None,
        *,
        mode: ReadMode | None = None,
        select: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Answer a read query.

        Accepts either a :class:`ReadRequest` or a relation name plus terms
        (shorthand for a single-atom read).  The read mode defaults to the
        configured one (COLLAPSE): pending transactions whose updates unify
        with the read are grounded first, then the query is answered over
        the extensional store, giving ordinary read-repeatability.
        """
        if isinstance(request, str):
            if terms is None:
                raise QuantumError("read(relation, terms) requires the terms argument")
            request = ReadRequest.single(
                request, terms, select=select, limit=limit,
                mode=mode or self.config.read_mode,
            )
        effective_mode = mode or request.mode
        if effective_mode is ReadMode.COLLAPSE:
            affected = self.state.affected_by_read(request.atoms)
            if affected:
                self.state.ground([entry.transaction_id for entry in affected])
            return self.database.execute(request.to_query()).bindings
        if effective_mode is ReadMode.PEEK:
            return self._peek(request)
        return self._expose_all(request)

    def _peek(self, request: ReadRequest) -> list[dict[str, Any]]:
        """Answer over one possible world without collapsing anything."""
        world = self.database.copy()
        for partition in self.state.partitions:
            solution = self.state.cache.ensure(partition)
            if solution is None:
                continue
            for entry in partition:
                for statement in entry.renamed.ground_updates(solution):
                    world.apply(statement)
        return world.execute(request.to_query()).bindings

    def _expose_all(self, request: ReadRequest) -> list[dict[str, Any]]:
        """Answer across all possible worlds, annotating answers with support."""
        pending = [entry.original for entry in self.state.pending_transactions()]
        worlds = enumerate_possible_worlds(self.database, pending)
        counts: dict[tuple, dict[str, Any]] = {}
        support: dict[tuple, int] = {}
        for world in worlds:
            world_db = self.database.copy()
            world_db.restore(dict(world.snapshot))
            for binding in world_db.execute(request.to_query()).bindings:
                key = tuple(sorted(binding.items()))
                counts[key] = binding
                support[key] = support.get(key, 0) + 1
        results = []
        for key, binding in counts.items():
            annotated = dict(binding)
            annotated["_worlds"] = support[key]
            results.append(annotated)
        return results

    # ------------------------------------------------------------------
    # Explicit grounding
    # ------------------------------------------------------------------

    def ground(
        self,
        transaction_ids: Iterable[int],
        *,
        executor: Executor | None = None,
        timeout_s: float | None = None,
    ) -> list[GroundedTransaction]:
        """Fix the value assignments of specific pending transactions.

        When ``executor`` is given and the ids span several partitions, the
        read-only grounding searches run concurrently on it (partition
        independence makes the plans commute); the mutating apply phase
        stays serial.  The session layer passes its executor here.
        ``timeout_s`` bounds the wait on each fanned-out plan future (see
        :class:`~repro.errors.GroundingTimeout`); a hung worker then costs
        one exception instead of wedging the caller.
        """
        return self.state.ground(
            transaction_ids, executor=executor, timeout_s=timeout_s
        )

    def ground_all(
        self,
        *,
        executor: Executor | None = None,
        timeout_s: float | None = None,
    ) -> list[GroundedTransaction]:
        """Fix every pending transaction (e.g. at the end of a booking day)."""
        return self.state.ground_all(executor=executor, timeout_s=timeout_s)

    def check_in(self, transaction_id: int) -> GroundedTransaction | None:
        """Collapse one transaction and return its assignment.

        Named after the running example: Mickey checking in for his flight
        is the moment his seat must become concrete.  Returns the grounded
        record (possibly from an earlier grounding) or ``None`` for unknown
        ids.
        """
        if self.state.is_pending(transaction_id):
            self.state.ground([transaction_id])
        return self.state.grounded_results.get(transaction_id)

    def assignment_of(self, transaction_id: int) -> dict[str, Any] | None:
        """The fixed valuation of a grounded transaction, if it has one."""
        record = self.state.grounded_results.get(transaction_id)
        return dict(record.valuation) if record is not None else None

    # ------------------------------------------------------------------
    # Introspection and reporting
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of committed transactions still awaiting grounding."""
        return self.state.pending_count()

    @property
    def sharded(self) -> bool:
        """True when partition execution is sharded (``shards >= 2``)."""
        return self.config.shards > 1

    def close(self) -> None:
        """Release executor resources (lanes and shard workers), if any.

        Idempotent and optional — the admission lanes and shard executors
        are created lazily and a database that never used them holds no
        threads — but benchmarks and servers that cycle through many
        databases should call it.  Closing lanes first lets them finish
        anything still queued (no admission is abandoned half-way), then
        the shard executors are joined.
        """
        with self._admission_lock:
            controller = self._admission
        if controller is not None:
            # Kept (closed) for statistics reporting; admission_controller()
            # replaces a closed controller lazily on the next batch.
            controller.close()
        close = getattr(self.state.partitions, "close", None)
        if close is not None:
            close()

    @property
    def statistics(self):
        """The quantum state's counters (admissions, groundings, ...)."""
        return self.state.statistics

    @property
    def cache_statistics(self):
        """The solution cache's counters (witness hits, fallbacks, ...).

        On the serial paths this is the live shared counter object (tests
        hold it across operations and watch it move).  Once admission
        lanes have recorded into per-lane slices, the live object alone
        would undercount nearly all witness traffic, so a reconciled
        snapshot (shared + every lane slice) is returned instead —
        matching ``statistics_report()``'s ``cache.*`` section.
        """
        cache = self.state.cache
        if cache.has_lane_statistics():
            return cache.merged_statistics()
        return cache.statistics

    def statistics_report(self) -> dict[str, Any]:
        """Every counter the system maintains, flattened for benchmarks.

        Combines the quantum-state, solution-cache, partition and
        grounding-search statistics into one ``section.counter`` → value
        mapping, so experiment harnesses can diff configurations (e.g.
        witness cache on vs. off) without reaching into internals.
        """
        report: dict[str, Any] = {}
        # The cache section reconciles the per-lane witness-statistics
        # slices with the shared counters (exact under concurrent lanes).
        cache_statistics = self.state.cache.merged_statistics()
        sections = {
            "state": self.state.statistics,
            "cache": cache_statistics,
            "partitions": self.state.partitions.statistics,
            "search": self.state.cache.search.totals,
        }
        for section, stats in sections.items():
            for name, value in vars(stats).items():
                report[f"{section}.{name}"] = value
        report["cache.composed_body_passes"] = (
            cache_statistics.composed_body_passes()
        )
        report["search.searches"] = self.state.cache.search.searches
        index = getattr(self.state.partitions, "index", None)
        if index is not None:
            for name, value in vars(index.statistics).items():
                report[f"routing.{name}"] = value
            report["routing.shards"] = self.state.partitions.shard_count
        backend = getattr(self.state.partitions, "backend", None)
        if backend is not None:
            stats = self.state.partitions.statistics
            report["sharding.backend"] = backend.value
            report["sharding.plan_payload_bytes"] = stats.plan_payload_bytes
            report["sharding.worker_round_trips"] = stats.worker_round_trips
            report["sharding.admission_payload_bytes"] = (
                stats.admission_payload_bytes
            )
            report["sharding.admission_round_trips"] = (
                stats.admission_round_trips
            )
        if self.config.admission_lanes and self.sharded:
            from repro.sharding.admission_lane import AdmissionStatistics

            controller = self._admission
            admission = (
                controller.statistics
                if controller is not None
                else AdmissionStatistics(lanes=self.config.shards)
            )
            for name, value in vars(admission).items():
                report[f"admission.{name}"] = value
        # Durability: segmented engines report their own counters
        # (segments sealed, compactions, bytes reclaimed, checkpoint
        # pauses, fsyncs); the legacy monolithic log reports its
        # checkpoint pause and — when a FileWalSink is attached — the
        # group-commit flush/fsync counts that used to be invisible.
        wal = self.database.wal
        durability = getattr(wal, "durability_statistics", None)
        if callable(durability):
            for name, value in durability().items():
                report[f"durability.{name}"] = value
        else:
            report["durability.mode"] = "legacy"
            report["durability.checkpoint_pause_ms"] = getattr(
                wal, "max_checkpoint_pause_ms", 0.0
            )
            sink = getattr(wal, "sink", None)
            if sink is not None and hasattr(sink, "flushes"):
                report["durability.flushes"] = sink.flushes
                report["durability.fsyncs"] = getattr(sink, "fsyncs", 0)
        return report

    def coordination_report(self) -> dict[str, float]:
        """Summary of coordination success among grounded entangled requests.

        Returns a dict with ``requests`` (grounded transactions that had
        optional coordination atoms), ``coordinated`` (those whose optional
        atoms were all satisfied) and ``percentage``.
        """
        grounded = [
            record
            for record in self.state.grounded_results.values()
            if record.transaction.optional_body
        ]
        coordinated = sum(1 for record in grounded if record.coordinated)
        total = len(grounded)
        return {
            "requests": float(total),
            "coordinated": float(coordinated),
            "percentage": (100.0 * coordinated / total) if total else 0.0,
        }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint the store's WAL: snapshot the state, drop the replay tail.

        After this call crash recovery restores the snapshot carried by the
        checkpoint record and replays only later records, so recovery work
        stays bounded no matter how long the server has been running.  The
        pending-transactions table is part of the snapshot, so pending
        resource transactions survive exactly as before.
        """
        self.database.checkpoint()

    @classmethod
    def recover(
        cls, database: Database, config: QuantumConfig | None = None
    ) -> "QuantumDatabase":
        """Rebuild the in-memory quantum state after a crash.

        ``database`` is the extensional store as restored by the relational
        recovery path (WAL replay); the pending-transactions table it
        contains drives the reconstruction: every persisted transaction is
        re-admitted in its original sequence order, rebuilding partitions,
        composed bodies and the solution cache.

        Raises:
            QuantumRecoveryError: if a persisted transaction cannot be
                restored or can no longer be satisfied (which would indicate
                the crash interrupted an atomicity guarantee).
        """
        quantum = cls(database, config)
        restored = quantum.pending_store.restore()
        for sequence, transaction in restored:
            try:
                quantum.state.admit(transaction, sequence=sequence)
            except TransactionRejected as exc:
                from repro.errors import QuantumRecoveryError

                raise QuantumRecoveryError(
                    f"pending transaction #{transaction.transaction_id} is no "
                    f"longer satisfiable after recovery: {exc}"
                ) from exc
            quantum.entanglement.register(transaction)
        return quantum

    # ------------------------------------------------------------------
    # Internal hooks
    # ------------------------------------------------------------------

    def _handle_grounded(self, record: GroundedTransaction) -> None:
        """Housekeeping when a pending transaction gets grounded."""
        self.pending_store.remove(record.transaction_id)
        self.entanglement.withdraw(record.transaction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantumDatabase pending={self.pending_count} "
            f"tables={len(self.database.table_names())}>"
        )
