"""The paper's primary contribution: the quantum database middle tier.

The public entry point is :class:`~repro.core.quantum_database.QuantumDatabase`,
which wraps a :class:`~repro.relational.database.Database` and adds:

* **resource transactions** (:mod:`.resource_transaction`, :mod:`.parser`) —
  SQL/Datalog-style transactions with OPTIONAL preferences, ``CHOOSE 1`` and
  a blind-write ``FOLLOWED BY`` block;
* **deferred value assignment** — committed transactions stay *pending*; the
  system maintains the invariant that a consistent grounding exists for all
  of them (:mod:`.quantum_state`, :mod:`.composition`, :mod:`.partition`,
  :mod:`.solution_cache`);
* **read-induced collapse** and blind-write admission checks
  (:mod:`.reads`, :mod:`.writes`);
* **grounding policies** (the ``k`` bound, oldest-first forced grounding)
  and **serializability modes** (strict vs. semantic)
  (:mod:`.grounding_policy`, :mod:`.serializability`);
* **durability** of pending transactions through a pending-transactions
  table (:mod:`.recovery`);
* **entangled resource transactions** for cross-user coordination
  (:mod:`.entanglement`);
* an explicit **possible-worlds** enumeration used to validate the
  intensional representation on small instances (:mod:`.worlds`).

Concurrent clients are served by the asyncio session layer on top of this
tier (:mod:`repro.server`); the admission flow, the witness-cache fast
path and the session/queue model are documented in ``docs/architecture.md``.
"""

from repro.core.composition import compose_pair, compose_sequence, composed_body
from repro.core.entanglement import EntangledResourceTransaction, EntanglementRegistry
from repro.core.grounding_policy import GroundingPolicy, GroundingStrategy
from repro.core.parser import format_transaction, parse_transaction
from repro.core.quantum_database import CommitResult, QuantumConfig, QuantumDatabase
from repro.core.quantum_state import PendingTransaction, QuantumState
from repro.core.reads import ReadMode, ReadRequest
from repro.core.resource_transaction import ResourceTransaction
from repro.core.serializability import SerializabilityMode
from repro.core.worlds import enumerate_possible_worlds, PossibleWorld

__all__ = [
    "CommitResult",
    "EntangledResourceTransaction",
    "EntanglementRegistry",
    "GroundingPolicy",
    "GroundingStrategy",
    "PendingTransaction",
    "PossibleWorld",
    "QuantumConfig",
    "QuantumDatabase",
    "QuantumState",
    "ReadMode",
    "ReadRequest",
    "ResourceTransaction",
    "SerializabilityMode",
    "compose_pair",
    "compose_sequence",
    "composed_body",
    "enumerate_possible_worlds",
    "format_transaction",
    "parse_transaction",
]
