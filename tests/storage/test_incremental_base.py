"""Incremental base checkpoints (``DurabilityConfig.incremental_bases``).

With incremental bases the writer folds a full-store snapshot exactly
once — the first base.  Every later checkpoint is a delta, and when the
delta chain reaches ``base_interval`` the *compactor* synthesizes the
next ``CHECKPOINT_BASE`` off the writer lock by merging the previous
base with the sealed delta chain, installing it with one manifest swap.
The synthesized base reuses the LSN of the newest delta it folded, so
these tests also pin the duplicate-LSN discipline: the superseded delta
must lose to the base at replay and at compaction.
"""

from __future__ import annotations

import time

import pytest

from repro.relational.database import Database
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover


def make_schema() -> Database:
    database = Database()
    database.create_table("Seats", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Notes", ["id", "note"], key=["id"])
    return database


def make_engine(tmp_path, **overrides) -> tuple[Database, SegmentedWriteAheadLog]:
    directory = str(tmp_path / "segments")
    config = DurabilityConfig(
        mode="segmented",
        directory=directory,
        incremental_bases=True,
        **{"segment_max_records": 8, "base_interval": 2, **overrides},
    )
    database = make_schema()
    engine = SegmentedWriteAheadLog(directory, config)
    engine.adopt(database.wal)
    database.wal = engine
    return database, engine


def churn_and_checkpoint(database, rounds: int, *, start: int = 0) -> None:
    for round_index in range(rounds):
        for i in range(4):
            database.insert("Seats", (start + round_index * 10 + i, "s"))
        database.checkpoint()


class TestWriterNeverFoldsAgain:
    def test_only_the_first_base_snapshots_the_store(self, tmp_path):
        database, engine = make_engine(tmp_path)
        folds = 0
        real_snapshot = database.snapshot

        def counting_snapshot():
            nonlocal folds
            folds += 1
            return real_snapshot()

        database.snapshot = counting_snapshot
        churn_and_checkpoint(database, 6)
        # One full fold (the first base); the other five checkpoints are
        # deltas even though base_interval=2 — the cadence that would have
        # forced bases 3 and 5 now arms off-writer synthesis instead.
        assert folds == 1
        assert engine.statistics.checkpoints_base == 1
        assert engine.statistics.checkpoints_delta == 5
        assert engine.wants_delta_checkpoint()
        engine.close()

    def test_cadence_without_incremental_is_unchanged(self, tmp_path):
        # Control: the plain engine still folds a base every base_interval
        # deltas on the writer (see test_segmented_wal cadence test).
        directory = str(tmp_path / "segments")
        config = DurabilityConfig(
            mode="segmented",
            directory=directory,
            segment_max_records=8,
            base_interval=2,
        )
        database = make_schema()
        engine = SegmentedWriteAheadLog(directory, config)
        engine.adopt(database.wal)
        database.wal = engine
        churn_and_checkpoint(database, 6)
        assert engine.statistics.checkpoints_base == 2
        engine.close()


class TestSynthesizedBases:
    def test_compact_now_synthesizes_the_due_base(self, tmp_path):
        database, engine = make_engine(tmp_path)
        churn_and_checkpoint(database, 5)
        assert engine.compact_now() > 0
        stats = engine.durability_statistics()
        assert stats["bases_synthesized"] >= 1
        assert stats["base_synthesis_ms"] > 0
        assert stats["checkpoints_base"] == 1  # writer-side count unchanged
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_single_pass_leaves_superseded_delta_recoverable(self, tmp_path):
        # One compact_once() installs the synthesized base but has not yet
        # compacted the old segments: the delta sharing the base's LSN is
        # still on disk.  Replay must prefer the base and drop that delta.
        database, engine = make_engine(tmp_path)
        churn_and_checkpoint(database, 3)
        assert engine.compact_once()
        assert engine.statistics.bases_synthesized == 1
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_background_compactor_synthesizes(self, tmp_path):
        database, engine = make_engine(tmp_path)
        engine.start_compactor()
        churn_and_checkpoint(database, 5)
        deadline = time.monotonic() + 5.0
        while engine.statistics.bases_synthesized == 0:
            assert time.monotonic() < deadline, "synthesis never ran"
            time.sleep(0.01)
        engine.stop_compactor()
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_synthesis_keeps_commits_after_the_cutoff(self, tmp_path):
        database, engine = make_engine(tmp_path)
        churn_and_checkpoint(database, 3)
        for i in range(500, 508):
            database.insert("Seats", (i, "late"))  # after the fold horizon
        engine.compact_now()
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_deletes_fold_through_synthesis(self, tmp_path):
        database, engine = make_engine(tmp_path)
        for i in range(8):
            database.insert("Seats", (i, "s"))
        database.checkpoint()  # first (writer-folded) base
        for i in range(0, 8, 2):
            database.delete("Seats", (i, "s"))
        database.checkpoint()
        database.insert("Notes", (1, "kept"))
        database.checkpoint()  # chain reaches base_interval → synthesis due
        assert engine.compact_now() > 0
        assert engine.statistics.bases_synthesized >= 1
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        assert recovered.snapshot()["Seats"] == [
            (i, "s") for i in range(1, 8, 2)
        ]
        recovered.wal.close()

    def test_reopened_engine_keeps_synthesizing(self, tmp_path):
        database, engine = make_engine(tmp_path)
        churn_and_checkpoint(database, 3)
        engine.compact_now()
        first = engine.statistics.bases_synthesized
        assert first >= 1
        engine.close()
        directory = tmp_path / "segments"
        recovered = recover(
            directory,
            make_schema,
            DurabilityConfig(
                mode="segmented",
                directory=str(directory),
                segment_max_records=8,
                base_interval=2,
                incremental_bases=True,
            ),
        )
        engine2 = recovered.wal
        churn_and_checkpoint(recovered, 3, start=3000)
        assert engine2.compact_now() > 0
        assert engine2.statistics.bases_synthesized >= 1
        assert engine2.statistics.checkpoints_base == 0  # never folds again
        engine2.close()
        final = recover(directory, make_schema)
        assert final.snapshot() == recovered.snapshot()
        final.wal.close()


class TestSynthesisFailureHandling:
    def test_failed_synthesis_disarms_and_rearms(self, tmp_path, monkeypatch):
        database, engine = make_engine(tmp_path)
        churn_and_checkpoint(database, 3)
        original = engine._fold_lineage
        monkeypatch.setattr(
            SegmentedWriteAheadLog,
            "_fold_lineage",
            staticmethod(lambda base, deltas: (_ for _ in ()).throw(
                OSError("fold blew up")
            )),
        )
        with pytest.raises(OSError):
            engine.compact_once()
        assert not engine._synthesis_due  # disarmed, not hot-looping
        assert engine.statistics.compaction_errors == 1
        assert "base synthesis" in engine.statistics.last_compaction_error
        monkeypatch.setattr(
            SegmentedWriteAheadLog, "_fold_lineage", staticmethod(original)
        )
        churn_and_checkpoint(database, 2, start=2000)  # next deltas re-arm
        assert engine.compact_now() > 0
        assert engine.statistics.bases_synthesized >= 1
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()
