"""Sharded partition execution behind the signature-based router.

The paper's central property — partitions contain no pairwise-unifiable
atoms, so they are independent by construction — is exactly a sharding
invariant.  :class:`ShardedPartitionManager` exploits it: partitions are
split across N :class:`~repro.sharding.shard.Shard` workers (disjoint
ownership keyed by partition id, which is also the witness-store key, so
PR 1's cached witnesses hand off between shards for free), and the
:class:`~repro.sharding.signature.SignatureIndex` doubles as the router
that sends an incoming transaction to the shard owning its matching
partition.

The manager is a drop-in :class:`~repro.core.partition.PartitionManager`:
``QuantumState`` keeps calling ``merged_for`` / ``find`` /
``drop_if_empty`` unchanged, and accept/reject decisions are bit-identical
to the unsharded scan — the index is a conservative prefilter and every
candidate is still exactly confirmed by pairwise unification.  What
changes is the work: on constant-pinned workloads ``merged_for`` scans one
candidate partition instead of all of them, and the read-only grounding
*plan* phase fans out per shard (:meth:`plan_on_shards`).

Cross-shard merges — a transaction whose atoms unify with partitions owned
by different shards, the rare case — go through one designated
serialization point (today that is trivially satisfied: all admission runs
on the single writer; the explicit merge lock makes the invariant a stated
contract for the planned per-shard admission pipeline rather than an
accident of the current threading); the surviving partition stays with its
current owner and the absorbed partitions' shards simply release
ownership.  A shared
:class:`PendingTable` keeps the global pending-transaction accounting (the
``k``-bound bookkeeping and O(1) ``find``) in one place regardless of how
many shards exist.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro.core.futures import collect_plan_futures
from repro.core.partition import Partition, PartitionManager, PartitionStatistics
from repro.errors import QuantumError
from repro.logic.atoms import Atom
from repro.sharding.backend import ShardBackend, dump_payload, plan_in_worker
from repro.sharding.shard import Shard
from repro.sharding.signature import SignatureIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.quantum_state import PendingTransaction


@dataclass(frozen=True)
class PendingRef:
    """One row of the shared pending-transactions table.

    Attributes:
        transaction_id: id of the pending resource transaction.
        partition_id: partition currently holding it.
        shard_id: shard owning that partition.
        sequence: global arrival sequence (the serialization order key).
    """

    transaction_id: int
    partition_id: int
    shard_id: int
    sequence: int


class PendingTable:
    """Shared pending-transactions table for global ``k``-bound accounting.

    Every shard reads and writes the same table (mutations happen on the
    single admission writer, so no lock is needed on the hot path); it
    answers "where is transaction X?" and "how much is pending, globally
    and per shard?" in O(1) without touching any partition.
    """

    def __init__(self) -> None:
        self._rows: dict[int, PendingRef] = {}
        self._by_partition: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, transaction_id: int) -> PendingRef | None:
        """The row for a pending transaction, if present."""
        return self._rows.get(transaction_id)

    def add(self, ref: PendingRef) -> None:
        """Insert (or move) one pending transaction."""
        existing = self._rows.get(ref.transaction_id)
        if existing is not None:
            self._by_partition.get(existing.partition_id, set()).discard(
                ref.transaction_id
            )
        self._rows[ref.transaction_id] = ref
        self._by_partition.setdefault(ref.partition_id, set()).add(
            ref.transaction_id
        )

    def rebuild_partition(
        self, partition: Partition, shard_id: int
    ) -> None:
        """Re-derive a partition's rows from its current pending sequence."""
        stale = self._by_partition.pop(partition.partition_id, set())
        for transaction_id in stale:
            self._rows.pop(transaction_id, None)
        for entry in partition:
            self.add(
                PendingRef(
                    transaction_id=entry.transaction_id,
                    partition_id=partition.partition_id,
                    shard_id=shard_id,
                    sequence=entry.sequence,
                )
            )

    def drop_partition(self, partition_id: int) -> None:
        """Forget every row of a partition (merged away or emptied)."""
        for transaction_id in self._by_partition.pop(partition_id, set()):
            self._rows.pop(transaction_id, None)

    def total(self) -> int:
        """Pending transactions across all shards (the global accounting)."""
        return len(self._rows)

    def by_shard(self) -> dict[int, int]:
        """Pending-transaction count per shard id."""
        counts: dict[int, int] = {}
        for ref in self._rows.values():
            counts[ref.shard_id] = counts.get(ref.shard_id, 0) + 1
        return counts

    def rows(self) -> Mapping[int, PendingRef]:
        """Read-only view of the table (transaction id → row)."""
        return self._rows


@dataclass
class ShardedPartitionStatistics(PartitionStatistics):
    """Partition counters plus the sharding/routing ones.

    Attributes:
        index_filtered: partitions skipped by the signature index without a
            single unification probe (the saved scan work).
        routed_single_shard: overlap queries whose candidates all lived on
            one shard (or were empty) — the common, lock-free case.
        routed_cross_shard: overlap queries whose candidates spanned shards.
        cross_shard_merges: merges that combined partitions owned by
            different shards (serialized on the merge lock).
        plan_payload_bytes: pickled plan-payload bytes shipped to worker
            processes (0 on the thread backend, which submits closures).
        worker_round_trips: payloads shipped to (and results received from)
            worker processes — grounding plans and admission searches
            combined.
        admission_payload_bytes: pickled admission-payload bytes shipped to
            worker processes by the lane-parallel admission pipeline.
        admission_round_trips: admission searches shipped to worker
            processes (a subset of ``worker_round_trips``).
    """

    index_filtered: int = 0
    routed_single_shard: int = 0
    routed_cross_shard: int = 0
    cross_shard_merges: int = 0
    plan_payload_bytes: int = 0
    worker_round_trips: int = 0
    admission_payload_bytes: int = 0
    admission_round_trips: int = 0


class ShardedPartitionManager(PartitionManager):
    """A :class:`PartitionManager` split across N worker shards.

    Args:
        shards: number of worker shards (≥ 1).
        workers_per_shard: worker count of each shard's plan executor.
        backend: shard executor strategy — ``"thread"`` (default) runs
            plans on per-shard thread pools, ``"process"`` ships them to
            per-shard process pools as pickled payloads (see
            :mod:`repro.sharding.backend`).
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        workers_per_shard: int = 1,
        backend: ShardBackend | str = ShardBackend.THREAD,
    ) -> None:
        if shards < 1:
            raise QuantumError("a sharded partition manager needs at least 1 shard")
        super().__init__()
        self.statistics: ShardedPartitionStatistics = ShardedPartitionStatistics()
        self.index = SignatureIndex()
        self.backend = ShardBackend.coerce(backend)
        self.shards: tuple[Shard, ...] = tuple(
            Shard(shard_id, workers=workers_per_shard, backend=self.backend)
            for shard_id in range(shards)
        )
        self.pending_table = PendingTable()
        #: partition id → owning shard (disjoint by construction).  The
        #: partition object itself is resolved through the owner's
        #: ``partitions`` dict, so there is exactly one ownership source.
        self._owner: dict[int, Shard] = {}
        #: The designated serialization point for ownership hand-off during
        #: cross-shard merges; cross-shard arrivals only run at epoch
        #: barriers (all lanes drained), so the lock is uncontended — it
        #: keeps the hand-off invariant an explicit contract.
        self._merge_lock = threading.Lock()
        #: The routing lock: guards the signature index, the ownership map,
        #: the shared pending table and the partition list against the
        #: concurrent per-shard admission lanes.  Reentrant because locked
        #: entry points (``merged_for``) fire structural-change hooks that
        #: re-enter it.  Critical sections are short — classification and
        #: bookkeeping only, never a grounding search, and *never* a wait on
        #: a full lane queue (see ``AdmissionLane.put``).
        self.routing_lock = threading.RLock()
        #: Thread-local lane context: while an admission lane processes an
        #: arrival, fresh partitions are created on (and asserted against)
        #: the lane's own shard instead of the global least-loaded one.
        self._lane_local = threading.local()

    # -- lane context --------------------------------------------------------

    @contextmanager
    def lane_scope(self, shard_id: int) -> Iterator[None]:
        """Mark the calling thread as shard ``shard_id``'s admission lane.

        While active, a fresh partition created by ``merged_for`` is
        assigned to the lane's own shard (keeping the per-shard writer
        invariant: a lane only ever mutates partitions its shard owns), and
        every partition ``merged_for`` returns is asserted to be owned by
        that shard (:meth:`~repro.core.partition.Partition.assert_owned_by`).
        """
        previous = getattr(self._lane_local, "shard_id", None)
        self._lane_local.shard_id = shard_id
        try:
            yield
        finally:
            self._lane_local.shard_id = previous

    def _lane_shard_id(self) -> int | None:
        """The shard id of the admission lane running on this thread."""
        return getattr(self._lane_local, "shard_id", None)

    # -- introspection -------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of worker shards."""
        return len(self.shards)

    def shard_for(self, partition_id: int) -> Shard | None:
        """The shard owning ``partition_id``, if any."""
        return self._owner.get(partition_id)

    def _partition_by_id(self, partition_id: int) -> Partition | None:
        """Resolve a partition through its owning shard (O(1))."""
        shard = self._owner.get(partition_id)
        if shard is None:
            return None
        return shard.partitions.get(partition_id)

    def pending_count(self) -> int:
        """Total pending transactions (from the shared pending table)."""
        with self.routing_lock:
            return self.pending_table.total()

    def find(
        self, transaction_id: int
    ) -> tuple[Partition, "PendingTransaction"] | None:
        """Locate a pending transaction via the shared pending table."""
        with self.routing_lock:
            ref = self.pending_table.get(transaction_id)
            if ref is None:
                return None
            partition = self._partition_by_id(ref.partition_id)
            if partition is not None:
                for entry in partition:
                    if entry.transaction_id == transaction_id:
                        return partition, entry
            # The table should always be current (it is maintained from the
            # partitions' own structural-change hooks); scan as a safety net.
            return super().find(transaction_id)

    # -- routing -------------------------------------------------------------

    def route(self, atoms: Sequence[Atom]) -> tuple[Shard | None, frozenset[int]]:
        """Route a transaction's atoms to the shard owning its partition.

        Returns ``(shard, candidate partition ids)``: the single shard
        owning every candidate (``None`` for the cross-shard case), and the
        index's candidate set.  An empty candidate set routes to the shard
        that would receive the next fresh partition.
        """
        with self.routing_lock:
            candidates = self.index.candidates(atoms)
            owners = {
                self._owner[pid].shard_id for pid in candidates if pid in self._owner
            }
            if not owners:
                return self._home_shard(), candidates
            if len(owners) == 1:
                return self.shards[owners.pop()], candidates
            return None, candidates

    def _home_shard(self) -> Shard:
        """The shard a fresh partition would be assigned to (least loaded)."""
        return min(self.shards, key=lambda shard: (len(shard), shard.shard_id))

    def overlapping_partitions(self, atoms: Sequence[Atom]) -> list[Partition]:
        """Index-prefiltered overlap scan (bit-identical to the full scan).

        Routing goes through :meth:`route`; each candidate partition is
        then confirmed with the exact pairwise-unification test.
        Candidates are visited in ascending partition-id order, which *is*
        partition-list order (partitions enter the list in id order and
        removals preserve it), so the result — including which partition
        survives a merge — matches the exhaustive scan exactly, without
        walking the whole partition list.
        """
        with self.routing_lock:
            shard, candidates = self.route(atoms)
            self.statistics.index_filtered += len(self.partitions) - len(candidates)
            if shard is None:
                self.statistics.routed_cross_shard += 1
            else:
                self.statistics.routed_single_shard += 1
            scanned = [
                partition
                for pid in sorted(candidates)
                if (partition := self._partition_by_id(pid)) is not None
            ]
            self.statistics.scanned_partitions += len(scanned)
            return [p for p in scanned if p.overlaps_atoms(atoms, self.statistics)]

    def merged_for(self, atoms: Sequence[Atom]) -> tuple[Partition, bool]:
        """Locked ``merged_for``: routing state mutates atomically.

        The whole merge-or-create step runs under the routing lock (the
        structural-change hooks it fires re-enter the reentrant lock), so
        concurrent admission lanes observe the index, ownership map and
        pending table in a consistent state.  Inside a lane scope the
        resulting partition is additionally asserted to belong to the
        lane's shard — the per-shard writer invariant the router-first
        dispatch is supposed to guarantee.
        """
        with self.routing_lock:
            partition, merged = super().merged_for(atoms)
            lane = self._lane_shard_id()
            if lane is not None:
                partition.assert_owned_by(lane)
            return partition, merged

    def drop_if_empty(self, partition: Partition) -> None:
        """Locked partition-list removal (see base class)."""
        with self.routing_lock:
            super().drop_if_empty(partition)

    # -- shard-parallel grounding plans --------------------------------------

    def plan_on_shards(
        self,
        groups: Sequence[tuple[Partition, Sequence["PendingTransaction"]]],
        plan: Callable[[Partition, Sequence["PendingTransaction"]], Any],
        *,
        payload_builder: Callable[
            [Partition, Sequence["PendingTransaction"]], Any
        ] | None = None,
        timeout_s: float | None = None,
    ) -> list[Any]:
        """Fan the read-only grounding plan phase out per owning shard.

        Each group runs on the executor of the shard owning its partition
        (unowned partitions fall back to the home shard); results come back
        in group order, so the caller's serial apply phase is deterministic.
        Partition independence makes the concurrent plans commute — see
        ``docs/architecture.md`` ("Shard backends").

        On the thread backend each group is submitted as ``plan(partition,
        entries)`` — a plain closure sharing the writer's heap.  On the
        process backend ``payload_builder`` assembles a picklable
        :class:`~repro.sharding.backend.PlanPayload` per group; the manager
        serializes it, ships it to the owning shard's worker process, and
        returns the workers' :class:`~repro.sharding.backend.PlanResult`
        objects (the caller rehydrates them against its own entries).

        Args:
            groups: ``(partition, entries)`` pairs to plan.
            plan: in-process plan callable (thread backend).
            payload_builder: payload factory (process backend); when the
                backend is process-based and this is omitted, the thread
                path is used (``plan`` must then be process-agnostic).
            timeout_s: per-future bound on collecting a plan result; on
                expiry every remaining future is cancelled (already-running
                workers finish and are discarded) and a
                :class:`~repro.errors.GroundingTimeout` is raised before
                the caller applied anything.

        Raises:
            GroundingTimeout: a plan future missed the ``timeout_s`` bound.
        """
        ship = self.backend is ShardBackend.PROCESS and payload_builder is not None
        futures = []
        for partition, entries in groups:
            shard = self._owner.get(partition.partition_id) or self._home_shard()
            if ship:
                blob = dump_payload(payload_builder(partition, entries))
                self.statistics.plan_payload_bytes += len(blob)
                self.statistics.worker_round_trips += 1
                futures.append(shard.submit(plan_in_worker, blob))
            else:
                futures.append(shard.submit(plan, partition, entries))
        return collect_plan_futures(futures, timeout_s, what="shard plan")

    # -- shipped admission searches ------------------------------------------

    def admission_ship_target(self, partition: Partition) -> Shard | None:
        """The shard an admission lane should ship this search to, if any.

        Shipping happens only on the process backend and only from inside a
        lane scope: the lane owns the partition (so nothing can restructure
        it between snapshot and commit), and the per-shard pools are what
        turn concurrent lanes into actual multi-core search work.  Outside
        a lane — the serialized writer, recovery, the lanes-off sweep
        points — the inline search is strictly cheaper, so ``None`` keeps
        those paths byte-for-byte unchanged.
        """
        if self.backend is not ShardBackend.PROCESS:
            return None
        lane = self._lane_shard_id()
        if lane is None:
            return None
        owner = self._owner.get(partition.partition_id)
        return owner if owner is not None else self.shards[lane]

    def record_admission_ship(self, payload_bytes: int) -> None:
        """Count one shipped admission search (concurrent-lane safe)."""
        with self.routing_lock:
            self.statistics.admission_payload_bytes += payload_bytes
            self.statistics.admission_round_trips += 1
            self.statistics.worker_round_trips += 1

    def close(self) -> None:
        """Shut down every shard's executor (idempotent)."""
        for shard in self.shards:
            shard.close()

    # -- lifecycle hooks (called by the base manager) ------------------------

    def _on_partition_created(self, partition: Partition) -> None:
        with self.routing_lock:
            lane = self._lane_shard_id()
            # Inside a lane scope the fresh partition joins the lane's own
            # shard — the dispatcher already picked the home lane at enqueue
            # time, and assigning anywhere else would hand another shard a
            # partition this lane is about to mutate.
            shard = self.shards[lane] if lane is not None else self._home_shard()
            shard.own(partition)
            self._owner[partition.partition_id] = shard
            self.index.add(partition)
            partition.on_structural_change = self._handle_structural_change

    def _on_partitions_merging(
        self, merged: Partition, absorbed: Sequence[Partition]
    ) -> None:
        shards_involved = {
            self._owner[p.partition_id].shard_id
            for p in (merged, *absorbed)
            if p.partition_id in self._owner
        }
        if len(shards_involved) > 1:
            self.statistics.cross_shard_merges += 1
        # Ownership hand-off happens at one serialization point (trivially
        # so today — admission is single-writer); the surviving partition
        # stays with its current owner.
        with self._merge_lock:
            for partition in absorbed:
                self._forget(partition)
        # The caller assigns the merged pending sequence next, which fires
        # the structural-change hook and re-derives the merged partition's
        # signature and pending-table rows.

    def _on_partition_dropped(self, partition: Partition) -> None:
        self._forget(partition)

    def _forget(self, partition: Partition) -> None:
        with self.routing_lock:
            pid = partition.partition_id
            shard = self._owner.pop(pid, None)
            if shard is not None:
                shard.disown(pid)
            self.index.discard(pid)
            self.pending_table.drop_partition(pid)
            if partition.on_structural_change == self._handle_structural_change:
                partition.on_structural_change = None

    # -- incremental maintenance (called by the partitions themselves) -------

    def _handle_structural_change(
        self, partition: Partition, entry: "PendingTransaction | None"
    ) -> None:
        with self.routing_lock:
            self._handle_structural_change_locked(partition, entry)

    def _handle_structural_change_locked(
        self, partition: Partition, entry: "PendingTransaction | None"
    ) -> None:
        shard = self._owner.get(partition.partition_id)
        shard_id = shard.shard_id if shard is not None else -1
        if entry is not None:
            # Append: signatures only grow, so post just the new entry.
            self.index.extend(partition, entry)
            self.pending_table.add(
                PendingRef(
                    transaction_id=entry.transaction_id,
                    partition_id=partition.partition_id,
                    shard_id=shard_id,
                    sequence=entry.sequence,
                )
            )
        else:
            # Removal or whole-sequence assignment: re-derive both views.
            self.index.refresh(partition)
            self.pending_table.rebuild_partition(partition, shard_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedPartitionManager shards={self.shard_count} "
            f"partitions={len(self.partitions)} pending={self.pending_count()}>"
        )
