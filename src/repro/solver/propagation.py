"""Constraint propagation: AC-3 arc consistency and forward checking.

Both routines operate on *working domains* — a mutable mapping from variable
name to the list of values still considered possible — so the backtracking
solver can copy-and-prune cheaply at each choice point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping, MutableMapping

from repro.solver.csp import CSP, Constraint

#: Working domains used during search.
WorkingDomains = MutableMapping[str, list[Any]]


def initial_domains(csp: CSP) -> dict[str, list[Any]]:
    """Copy the CSP's declared domains into mutable working domains."""
    return {var: list(domain) for var, domain in csp.domains.items()}


def _binary_constraints(csp: CSP) -> list[Constraint]:
    """All constraints of arity exactly two (AC-3 only propagates these)."""
    return [c for c in csp.constraints if len(c.scope) == 2]


def _revise(
    constraint: Constraint,
    domains: WorkingDomains,
    variable: str,
) -> bool:
    """Prune values of ``variable`` with no support under ``constraint``.

    Returns True if the domain shrank.
    """
    first, second = constraint.scope
    other = second if variable == first else first
    revised = False
    kept: list[Any] = []
    for value in domains[variable]:
        supported = False
        for other_value in domains[other]:
            assignment = {variable: value, other: other_value}
            if constraint.is_satisfied(assignment):
                supported = True
                break
        if supported:
            kept.append(value)
        else:
            revised = True
    if revised:
        domains[variable] = kept
    return revised


def ac3(csp: CSP, domains: WorkingDomains | None = None) -> tuple[bool, dict[str, list[Any]]]:
    """Enforce arc consistency over the binary constraints of ``csp``.

    Args:
        csp: the problem.
        domains: working domains to prune; fresh copies of the declared
            domains are used when omitted.

    Returns:
        ``(consistent, domains)`` where ``consistent`` is False if some
        domain was emptied (the problem is unsatisfiable under these
        domains).
    """
    working = dict(domains) if domains is not None else initial_domains(csp)
    working = {var: list(values) for var, values in working.items()}
    constraints = _binary_constraints(csp)
    queue: deque[tuple[str, Constraint]] = deque(
        (var, constraint) for constraint in constraints for var in constraint.scope
    )
    while queue:
        variable, constraint = queue.popleft()
        if _revise(constraint, working, variable):
            if not working[variable]:
                return False, working
            for other_constraint in csp.constraints_on(variable):
                if len(other_constraint.scope) != 2:
                    continue
                for neighbor in other_constraint.scope:
                    if neighbor != variable:
                        queue.append((neighbor, other_constraint))
    return True, working


def forward_check(
    csp: CSP,
    domains: WorkingDomains,
    assignment: Mapping[str, Any],
    variable: str,
) -> tuple[bool, dict[str, list[Any]]]:
    """Prune neighbours of ``variable`` after it was assigned.

    For every constraint involving ``variable`` whose only unassigned scope
    variable is some neighbour, values of that neighbour incompatible with
    the current assignment are removed.

    Returns:
        ``(consistent, pruned_domains)``; ``consistent`` is False if a
        neighbour's domain became empty.
    """
    working = {var: list(values) for var, values in domains.items()}
    for constraint in csp.constraints_on(variable):
        unassigned = [v for v in constraint.scope if v not in assignment]
        if len(unassigned) != 1:
            continue
        neighbor = unassigned[0]
        kept: list[Any] = []
        for candidate in working[neighbor]:
            trial = dict(assignment)
            trial[neighbor] = candidate
            if constraint.is_satisfied(trial):
                kept.append(candidate)
        working[neighbor] = kept
        if not kept:
            return False, working
    return True, working
