"""Most general unifiers and unification predicates.

These are Definitions 3.2 and 3.3 of the paper.  Composition of resource
transactions (Lemma 3.4 / Theorem 3.5) rewrites "does the body of a later
transaction interact with an earlier transaction's update?" into unification
predicates: conjunctions of equality constraints corresponding to the most
general unifier of the two atoms.

Example (from the paper): the mgu of ``R(1, v1, v2)`` and ``R(v3, 2, v4)``
is ``{v1/2, v2/v4, v3/1}`` and the corresponding unification predicate is
``(v1 = 2) ∧ (v2 = v4) ∧ (v3 = 1)``.  If no unifier exists the predicate is
trivially false; if the mgu is empty (both atoms ground and equal) the
predicate is trivially true.
"""

from __future__ import annotations

from typing import Iterable

from repro.logic.atoms import Atom
from repro.logic.formula import Equality, FALSE, Formula, TRUE, conjunction
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Term, Variable


def unify_terms(
    left: Term, right: Term, substitution: Substitution | None = None
) -> Substitution | None:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` if the terms clash.
    """
    theta = substitution or Substitution.empty()
    left = theta.apply_term(left)
    right = theta.apply_term(right)
    if left == right:
        return theta
    if isinstance(left, Variable):
        return theta.bind(left, right)
    if isinstance(right, Variable):
        return theta.bind(right, left)
    # Two distinct constants.
    return None


def most_general_unifier(left: Atom, right: Atom) -> Substitution | None:
    """Compute the mgu of two atoms (Definition 3.2).

    Returns ``None`` when the atoms cannot be unified: different relation
    names, different arities, or clashing constants at some position.
    """
    if left.relation != right.relation or left.arity != right.arity:
        return None
    theta: Substitution | None = Substitution.empty()
    for l_term, r_term in zip(left.terms, right.terms):
        theta = unify_terms(l_term, r_term, theta)
        if theta is None:
            return None
    return theta


def unification_predicate(left: Atom, right: Atom) -> Formula:
    """Compute the unification predicate ϕ(left, right) (Definition 3.3).

    The predicate is a conjunction of equalities, one per binding of the
    most general unifier; trivially FALSE when no unifier exists and
    trivially TRUE when the mgu is empty.
    """
    theta = most_general_unifier(left, right)
    if theta is None:
        return FALSE
    equalities = [Equality(var, term) for var, term in theta.items()]
    if not equalities:
        return TRUE
    return conjunction(equalities)


def unifiable(left: Atom, right: Atom) -> bool:
    """True if the two atoms have a unifier.

    This is the conservative interference test the paper uses both for read
    handling ("if a relational atom in our incoming read query unifies with
    a pending update Ui ... the values involved in that transaction are
    fixed") and for partitioning transactions into independent sets.
    """
    return most_general_unifier(left, right) is not None


def any_unifiable(left: Iterable[Atom], right: Iterable[Atom]) -> bool:
    """True if any atom of ``left`` unifies with any atom of ``right``."""
    right_atoms = list(right)
    for l_atom in left:
        for r_atom in right_atoms:
            if unifiable(l_atom, r_atom):
                return True
    return False


def match_ground_atom(pattern: Atom, ground: Atom) -> Substitution | None:
    """One-way match of ``pattern`` against a ground atom.

    Unlike full unification, only the pattern's variables may be bound.
    Used when checking whether a concrete row (a ground atom) satisfies a
    body atom.
    """
    if pattern.relation != ground.relation or pattern.arity != ground.arity:
        return None
    theta = Substitution.empty()
    for p_term, g_term in zip(pattern.terms, ground.terms):
        if not isinstance(g_term, Constant):
            return None
        bound = theta.apply_term(p_term)
        if isinstance(bound, Variable):
            theta = theta.bind(bound, g_term)
        elif bound != g_term:
            return None
    return theta
