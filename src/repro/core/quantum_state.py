"""The quantum state: pending transactions and invariant maintenance.

A quantum database ``D̂`` is "a completely extensional initial database"
plus "an ordered sequence of pending transactions — more precisely,
committed transactions whose value assignments are still pending"
(Definition 3.1).  :class:`QuantumState` is that object: it owns the
partitions of pending transactions, their composed bodies and cached
solutions, and implements the operations of Section 3.2:

* :meth:`QuantumState.admit` — composing a newly arrived resource
  transaction into its partition and checking that the set of possible
  worlds stays non-empty (else the transaction is rejected);
* :meth:`QuantumState.ground` — fixing value assignments for specific
  pending transactions (because of a read, a check-in, the arrival of a
  coordination partner, or the ``k`` bound), under either strict or
  semantic serializability, preferring groundings that satisfy optional
  atoms;
* :meth:`QuantumState.validate_write` — admission control for blind writes
  issued by ordinary (non-resource) transactions.

Grounding is split into a read-only *plan* phase (:meth:`QuantumState.plan_grounding`
— serializability planning plus the grounding search) and a mutating *apply*
phase (:meth:`QuantumState.apply_grounding` — executing the chosen update
portions and refreshing witnesses).  Because partitions are independent by
construction — no atom of one unifies with any atom of another, hence their
ground-row footprints are disjoint — plans for *different* partitions
commute: :meth:`QuantumState.ground` exploits this by planning independent
partitions concurrently on an executor before applying the plans serially.
See ``docs/architecture.md`` ("Concurrent grounding") for the full argument.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.core.composition import (
    compose_sequence,
    rewrite_atom_against_updates,
    rewrite_body_against_updates,
)
from repro.core.futures import ReadWriteGuard, collect_plan_futures
from repro.core.grounding_policy import GroundingPolicy
from repro.core.partition import Partition, PartitionManager
from repro.core.resource_transaction import ResourceTransaction
from repro.core.serializability import (
    GroundingPlan,
    SerializabilityMode,
    grounding_plan,
)
from repro.core.solution_cache import AdmissionProbe, SolutionCache, Witness
from repro.errors import (
    AdmissionSearchExhausted,
    GroundingTimeout,
    QuantumStateError,
    TransactionRejected,
    WriteRejected,
)
from repro.logic.atoms import Atom
from repro.logic.formula import Formula, TRUE, conjunction
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.logic.unification import unifiable
from repro.relational.database import Database
from repro.relational.dml import Delete, Insert, Statement

if TYPE_CHECKING:  # pragma: no cover
    from repro.sharding.backend import PlanResult
    from repro.solver.grounding import GroundingSearch
    from repro.solver.strategy import AdmissionSearchConfig


@dataclass(frozen=True)
class PendingTransaction:
    """A committed resource transaction whose grounding is still deferred.

    Attributes:
        original: the transaction as submitted by the application.
        renamed: the same transaction with variables suffixed ``@<id>`` so
            that different pending transactions never share variables (the
            assumption behind composition).
        sequence: global arrival order (the serialization order within a
            partition follows this unless semantically reordered).
    """

    original: ResourceTransaction
    renamed: ResourceTransaction
    sequence: int

    @property
    def transaction_id(self) -> int:
        """Id of the underlying resource transaction."""
        return self.original.transaction_id

    @property
    def suffix(self) -> str:
        """The variable-renaming suffix used for this transaction."""
        return f"@{self.original.transaction_id}"

    def original_valuation(self, substitution: Substitution) -> dict[str, Any]:
        """Map a grounding of the renamed variables back to original names."""
        valuation: dict[str, Any] = {}
        suffix = self.suffix
        for var in self.renamed.variables():
            term = substitution.apply_term(var)
            if hasattr(term, "value"):
                name = var.name
                if name.endswith(suffix):
                    name = name[: -len(suffix)]
                valuation[name] = term.value
        return valuation


@dataclass
class GroundedTransaction:
    """Record of a pending transaction whose values have been fixed.

    Attributes:
        transaction: the original resource transaction.
        valuation: variable-name → value mapping (original variable names).
        satisfied_optionals: how many of the transaction's optional atoms
            held under the chosen grounding (evaluated against the database
            state in which the grounding was applied).
        statements: the DML statements that were executed.
        forced: True when grounding was forced by the ``k`` bound rather
            than requested by a read / check-in / partner arrival.
    """

    transaction: ResourceTransaction
    valuation: dict[str, Any]
    satisfied_optionals: int
    statements: tuple[Statement, ...]
    forced: bool = False

    @property
    def transaction_id(self) -> int:
        """Id of the grounded transaction."""
        return self.transaction.transaction_id

    @property
    def coordinated(self) -> bool:
        """True if every optional atom of the transaction was satisfied.

        The evaluation section uses this as the per-transaction success
        criterion for coordination (adjacent seats obtained).
        """
        total = len(self.transaction.optional_body)
        return total > 0 and self.satisfied_optionals == total


@dataclass(frozen=True)
class PlannedGrounding:
    """The outcome of the read-only grounding plan phase.

    Produced by :meth:`QuantumState.plan_grounding`, consumed by
    :meth:`QuantumState.apply_grounding`.  Plans for different partitions
    commute (disjoint row footprints), so the session layer computes them
    concurrently and applies them in any order.

    Attributes:
        partition: the partition being grounded.
        plan: the serialization order chosen for the partition.
        substitution: the grounding found for the order's prefix (plus a
            witness for its suffix).
        satisfied_atoms: per-transaction satisfied-optional counts at
            search time.
        forced: whether this grounding was forced by the ``k`` bound.
    """

    partition: Partition
    plan: GroundingPlan
    substitution: Substitution
    satisfied_atoms: Mapping[int, int]
    forced: bool = False


#: How many candidate prefix groundings are tried before giving up on a
#: particular set of optional atoms (each candidate costs one suffix
#: satisfiability check).
PREFIX_CANDIDATES = 8
#: Node budget for the combined prefix-and-suffix fallback search when
#: optional factors are included (the hard-only fallback is unbounded —
#: it must be complete to uphold the invariant).
COMBINED_NODE_BUDGET = 20_000


def order_is_satisfiable(
    search: "GroundingSearch", order: Sequence[PendingTransaction]
) -> bool:
    """Satisfiability check used by the semantic reorder strategy."""
    formula = compose_sequence([entry.renamed for entry in order])
    return search.exists(formula)


def compute_grounding_plan(
    search: "GroundingSearch",
    serializability: SerializabilityMode,
    partition: Partition,
    targets: Sequence[PendingTransaction],
) -> tuple[GroundingPlan, Substitution | None, dict[int, int]]:
    """The pure plan computation: serialization order plus a grounding.

    This is the whole read-only half of grounding as a module-level
    function of ``(search, serializability, partition, targets)`` — no
    closures, no locks, no reference to a :class:`QuantumState` — so the
    process shard backend can run it in a worker process against a shipped
    snapshot (:mod:`repro.sharding.backend`) and get bit-identical results
    to the in-process path.

    Returns:
        ``(plan, substitution, satisfied)``; ``substitution`` is ``None``
        when no grounding exists (an invariant violation the caller turns
        into an error).
    """
    plan = grounding_plan(
        serializability,
        partition,
        targets,
        lambda order: order_is_satisfiable(search, order),
    )
    order = list(plan.to_ground) + list(plan.remaining_order)
    substitution, satisfied_atoms = choose_grounding(search, order, plan.to_ground)
    return plan, substitution, satisfied_atoms


def choose_grounding(
    search: "GroundingSearch",
    order: Sequence[PendingTransaction],
    to_ground: Sequence[PendingTransaction],
) -> tuple[Substitution | None, dict[int, int]]:
    """Find a grounding of the order, maximising the prefix's optionals.

    The transactions being grounded now (``to_ground``) form a prefix of
    ``order``.  The search is decomposed exactly the way the paper's
    solution cache suggests:

    1. ground the prefix alone, preferring groundings that satisfy its
       optional atoms (all of them first, then a greedy maximal subset);
    2. for each candidate prefix grounding, check that the remaining
       pending transactions are still jointly satisfiable (extending the
       candidate), which is what guarantees the invariant survives;
    3. fall back to a grounding of the whole order without optional
       atoms if preferences cannot be accommodated.

    Returns:
        ``(substitution, satisfied)`` where the substitution covers both
        the prefix and a witness for the suffix, and ``satisfied`` maps
        each grounded transaction id to its satisfied-optional count at
        search time.
    """
    satisfied: dict[int, int] = {entry.transaction_id: 0 for entry in to_ground}
    prefix = list(to_ground)
    prefix_ids = {entry.transaction_id for entry in prefix}
    suffix = [entry for entry in order if entry.transaction_id not in prefix_ids]

    prefix_hard = compose_sequence([entry.renamed for entry in prefix])
    prefix_required = frozenset().union(
        *(entry.renamed.hard_variables() for entry in prefix)
    ) if prefix else frozenset()
    suffix_formula, suffix_required = _suffix_formula(prefix, suffix)
    optional_atoms = _optional_factors(order, to_ground)

    def attempt(
        selected: Sequence[tuple[int, Atom, Formula]]
    ) -> Substitution | None:
        """Try to ground the prefix with ``selected`` optional factors.

        Strategy: enumerate a handful of prefix groundings and extend
        each over the suffix (cheap in the common, under-constrained
        case).  If none of those candidates extends — e.g. every early
        candidate sits on a seat a later pinned transaction needs — fall
        back to one *combined* prefix-and-suffix search, which is
        complete; a node budget keeps the combined search from thrashing
        when optional factors are involved.
        """
        formula = conjunction(
            [prefix_hard] + [factor for _txn, _atom, factor in selected]
        )
        candidates = search.find(
            formula, required=prefix_required, limit=PREFIX_CANDIDATES
        )
        for candidate in candidates:
            if not suffix:
                return candidate.substitution
            extended = search.find_one(
                suffix_formula,
                required=suffix_required,
                initial=candidate.substitution,
            )
            if extended.satisfiable:
                return extended.substitution
        if not suffix:
            return None
        combined = search.find_one(
            conjunction([formula, suffix_formula]),
            required=prefix_required | suffix_required,
            node_budget=COMBINED_NODE_BUDGET if selected else None,
        )
        return combined.substitution if combined.satisfiable else None

    if optional_atoms:
        solution = attempt(optional_atoms)
        if solution is not None:
            for txn_id, _atom, _factor in optional_atoms:
                satisfied[txn_id] += 1
            return solution, satisfied
        # Greedy maximal subset of optional atoms.
        accepted: list[tuple[int, Atom, Formula]] = []
        best: Substitution | None = None
        for candidate_atom in optional_atoms:
            solution = attempt(accepted + [candidate_atom])
            if solution is not None:
                accepted.append(candidate_atom)
                best = solution
        if best is not None:
            for txn_id, _atom, _factor in accepted:
                satisfied[txn_id] += 1
            return best, satisfied
    solution = attempt([])
    if solution is not None:
        return solution, satisfied
    return None, satisfied


def _suffix_formula(
    prefix: Sequence[PendingTransaction],
    suffix: Sequence[PendingTransaction],
) -> tuple[Formula, frozenset[Variable]]:
    """Composed body of the suffix, rewritten against the prefix updates."""
    accumulated: list[Atom] = [
        atom for entry in prefix for atom in entry.renamed.updates
    ]
    factors: list[Formula] = []
    required: set[Variable] = set()
    for entry in suffix:
        factors.append(
            rewrite_body_against_updates(entry.renamed.hard_body, accumulated)
        )
        accumulated.extend(entry.renamed.updates)
        required |= entry.renamed.hard_variables()
    return conjunction(factors) if factors else TRUE, frozenset(required)


def _optional_factors(
    order: Sequence[PendingTransaction],
    to_ground: Sequence[PendingTransaction],
) -> list[tuple[int, Atom, Formula]]:
    """Optional atoms of the to-be-grounded entries, rewritten in context.

    Each optional atom is rewritten against the update portions of the
    transactions that precede its owner in the serialization order, the
    same way hard atoms are during composition.
    """
    to_ground_ids = {entry.transaction_id for entry in to_ground}
    factors: list[tuple[int, Atom, Formula]] = []
    accumulated: list[Atom] = []
    for entry in order:
        if entry.transaction_id in to_ground_ids:
            for atom in entry.renamed.optional_body:
                factors.append(
                    (
                        entry.transaction_id,
                        atom,
                        rewrite_atom_against_updates(atom, accumulated),
                    )
                )
        accumulated.extend(entry.renamed.updates)
    return factors


@dataclass
class QuantumStateStatistics:
    """Counters the experiments report."""

    admitted: int = 0
    rejected: int = 0
    grounded: int = 0
    forced_groundings: int = 0
    writes_checked: int = 0
    writes_rejected: int = 0
    max_pending: int = 0
    semantic_reorders: int = 0
    batches: int = 0
    batch_transactions: int = 0


class QuantumState:
    """Pending transactions, composed bodies, and invariant maintenance."""

    def __init__(
        self,
        database: Database,
        *,
        policy: GroundingPolicy | None = None,
        serializability: SerializabilityMode = SerializabilityMode.SEMANTIC,
        on_grounded: Callable[[GroundedTransaction], None] | None = None,
        witness_cache: bool = True,
        partitions: PartitionManager | None = None,
        admission_ship_timeout_s: float | None = 30.0,
        search_config: "AdmissionSearchConfig | None" = None,
    ) -> None:
        self.database = database
        self.policy = policy or GroundingPolicy()
        self.serializability = serializability
        #: The partition manager: the plain exhaustive-scan one by default,
        #: or an injected :class:`~repro.sharding.ShardedPartitionManager`
        #: (``QuantumConfig(shards=N)``) that routes admissions through the
        #: signature index and fans grounding plans out per shard.  Both
        #: produce bit-identical accept/reject decisions.
        self.partitions = partitions if partitions is not None else PartitionManager()
        self.cache = SolutionCache(
            database, enable_witness=witness_cache, search_config=search_config
        )
        self.statistics = QuantumStateStatistics()
        self.grounded_results: dict[int, GroundedTransaction] = {}
        self._next_sequence = 1
        #: Callback invoked for every grounded transaction (the quantum
        #: database uses it to delete rows from the pending-transactions
        #: table and to notify the application if desired).
        self.on_grounded = on_grounded
        #: Readers-writer guard over the extensional store: per-lane
        #: witness-extension searches hold the shared side, store mutations
        #: (grounding applies, blind-write validation) the exclusive side.
        #: Uncontended on the serial paths; what makes the lane-parallel
        #: admission pipeline memory-safe (see ``repro.sharding.admission_lane``).
        self.store_guard = ReadWriteGuard()
        #: Serializes arrival-sequence allocation (the admission controller
        #: allocates sequences up front, in arrival order, before handing
        #: work to concurrent lanes).
        self._sequence_lock = threading.Lock()
        #: Guards the state counters against lost updates when several
        #: admission lanes increment them concurrently.
        self._statistics_lock = threading.Lock()
        #: Per-search bound on waiting for a shipped admission result; on
        #: expiry the lane falls back to the inline search (same decision,
        #: by purity of :func:`~repro.core.solution_cache.compute_admission`).
        self._admission_ship_timeout_s = admission_ship_timeout_s
        # Merges drop exactly the absorbed partitions' witnesses (precise,
        # merge-local — safe while lanes create partitions concurrently).
        self.partitions.on_partitions_absorbed = self._drop_absorbed_witnesses

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        """Number of committed-but-not-grounded transactions."""
        return self.partitions.pending_count()

    def pending_transactions(self) -> list[PendingTransaction]:
        """All pending transactions across partitions, in arrival order."""
        entries = [entry for partition in self.partitions for entry in partition]
        entries.sort(key=lambda e: e.sequence)
        return entries

    def find_pending(self, transaction_id: int) -> PendingTransaction | None:
        """The pending entry for ``transaction_id``, if it is still pending."""
        located = self.partitions.find(transaction_id)
        return located[1] if located else None

    def is_pending(self, transaction_id: int) -> bool:
        """True if the transaction is still awaiting grounding."""
        return self.find_pending(transaction_id) is not None

    # ------------------------------------------------------------------
    # Admission (new resource transactions)
    # ------------------------------------------------------------------

    def admit(
        self,
        transaction: ResourceTransaction,
        *,
        sequence: int | None = None,
        renamed: ResourceTransaction | None = None,
    ) -> PendingTransaction:
        """Admit a resource transaction, keeping the possible worlds non-empty.

        The incremental fast path: the transaction's body is rewritten
        against the partition's *incrementally maintained* accumulated
        updates (Theorem 3.5, one new factor — never a recomposition), and
        while the partition holds a known-valid witness only that new factor
        is searched, extending the witness.  On a witness miss the full
        composed body is verified or re-solved (the ``LIMIT 1`` analogue).
        If no grounding exists the transaction is rejected.

        Args:
            transaction: the resource transaction to admit.
            sequence: arrival sequence to record for the transaction.
                Normally omitted (the state assigns the next number); the
                recovery path passes the persisted sequence so the rebuilt
                state resumes numbering where the crashed instance stopped.
            renamed: the ``@<id>``-renamed copy of the transaction when the
                caller already computed one (the admission dispatcher
                renames for routing); omitted, the rename happens here.

        Returns:
            The pending entry for the admitted transaction.

        Raises:
            TransactionRejected: if admitting the transaction would empty
                the set of possible worlds.
        """
        if sequence is None:
            sequence = self.allocate_sequence()
        else:
            with self._sequence_lock:
                self._next_sequence = max(self._next_sequence, sequence + 1)
        entry = PendingTransaction(
            original=transaction,
            renamed=(
                renamed
                if renamed is not None
                else transaction.rename_variables(f"@{transaction.transaction_id}")
            ),
            sequence=sequence,
        )
        atoms = tuple(entry.renamed.body) + tuple(entry.renamed.updates)
        partition, merged = self.partitions.merged_for(atoms)
        if merged:
            # The merged pending sequence is new; no stored witness covers
            # it (the absorbed partitions' witnesses were already dropped by
            # the on_partitions_absorbed hook, inside the merge).
            self.cache.drop_witness(partition.partition_id)
        new_factor = partition.composition().preview_factor(entry.renamed)
        # Fetch the (structurally current) witness before the append changes
        # the partition's signature; it seeds the successor witness below.
        base_witness = self.cache.witness_for(partition)
        probe = self._ship_admission_search(partition, entry, base_witness)
        if probe is not None:
            # A worker ran the witness-extension search over a snapshot;
            # apply its counters and decision exactly as if it ran inline.
            self.cache.absorb_probe(probe)
            solution = probe.substitution
        else:
            # The witness-extension search reads the extensional store; hold
            # the shared side of the store guard so a concurrent lane's
            # grounding apply cannot mutate tables mid-search.
            with self.store_guard.read():
                solution = self.cache.ensure(
                    partition, new_factor, entry.renamed.hard_variables()
                )
        if solution is None:
            with self._statistics_lock:
                self.statistics.rejected += 1
            self.partitions.drop_if_empty(partition)
            if not partition.pending:
                self.cache.drop_witness(partition.partition_id)
            if self.cache.last_exhausted_budget:
                # The bounded search gave up undecided; reject conservatively
                # but let the caller distinguish "budget ran out" from a
                # proven unsatisfiability (retry with a larger budget, or
                # force a grounding to shrink the partition).
                raise AdmissionSearchExhausted(
                    f"transaction #{transaction.transaction_id} rejected: the "
                    "admission search exhausted its node budget before "
                    "deciding satisfiability"
                )
            raise TransactionRejected(
                f"transaction #{transaction.transaction_id} cannot be admitted: "
                "no consistent grounding exists"
            )
        used_witness = self.cache.last_used_witness
        partition.append(entry, factor=new_factor)
        partition.cached_solution = solution
        if used_witness and base_witness is not None:
            # Fast path: the old factors keep their footprint (the extension
            # never rebinds their variables); only the new factor's rows are
            # added.
            self.cache.store_witness(
                partition, new_factor, solution, base=base_witness
            )
        else:
            self.cache.store_witness(
                partition, partition.composed_formula(), solution
            )
        with self._statistics_lock:
            self.statistics.admitted += 1
            pending = self.pending_count()
            if pending > self.statistics.max_pending:
                self.statistics.max_pending = pending
        self._enforce_bound(partition)
        return entry

    def allocate_sequence(self) -> int:
        """Reserve and return the next arrival sequence number.

        The lane-parallel admission controller allocates sequences in
        arrival order *before* dispatching work to concurrent lanes, so the
        serialization-order key is identical to the serial writer's no
        matter how the lanes interleave.
        """
        with self._sequence_lock:
            sequence = self._next_sequence
            self._next_sequence = sequence + 1
            return sequence

    def _ship_admission_search(
        self,
        partition: Partition,
        entry: PendingTransaction,
        base_witness: Witness | None,
    ) -> AdmissionProbe | None:
        """Run the admission search on the owning shard's worker process.

        Returns the worker's :class:`~repro.core.solution_cache.AdmissionProbe`
        — or ``None`` whenever the inline path should run instead: the
        manager has no ship target (unsharded, thread backend, or not on an
        admission lane), the worker timed out, or the returned result fails
        validation against the partition about to be committed to.  Falling
        back is always sound because the shipped search and the inline one
        are the same pure function.

        The payload is built under the shared side of the store guard (the
        snapshot must be consistent with the witness state shipped with
        it); the wait for the worker happens *outside* the guard, so other
        lanes' grounding applies proceed while this lane's search is on a
        worker — that overlap is the multi-core win.
        """
        target = getattr(self.partitions, "admission_ship_target", None)
        if target is None:
            return None
        shard = target(partition)
        if shard is None:
            return None
        from repro.sharding.backend import (
            admit_in_worker,
            build_admission_payload,
            dump_payload,
        )

        with self.store_guard.read():
            payload = build_admission_payload(
                partition,
                entry.renamed,
                entry.transaction_id,
                database=self.database,
                witness=base_witness,
                enable_witness=self.cache.enable_witness,
                search_config=self.cache.search_config,
            )
        blob = dump_payload(payload)
        self.partitions.record_admission_ship(len(blob))
        future = shard.submit(admit_in_worker, blob)
        try:
            result = collect_plan_futures(
                [future], self._admission_ship_timeout_s, what="admission search"
            )[0]
        except GroundingTimeout:
            return None
        if (
            result.transaction_id != entry.transaction_id
            or result.partition_id != partition.partition_id
            or result.pending_ids != partition.transaction_ids()
        ):
            # The partition is no longer the one the worker searched (it
            # cannot restructure under lane ownership, but the check makes
            # that invariant local and cheap); rerun inline.
            return None
        self.cache.search.absorb_nodes(result.search_nodes)
        return result.probe

    def _drop_absorbed_witnesses(self, partition_ids: Sequence[int]) -> None:
        """Forget the witnesses of partitions a merge just absorbed."""
        for partition_id in partition_ids:
            self.cache.drop_witness(partition_id)

    def _enforce_bound(self, partition: Partition) -> None:
        """Force-ground transactions until the ``k`` bound is respected."""
        victims = self.policy.victims(partition, cache=self.cache)
        if not victims:
            return
        with self._statistics_lock:
            self.statistics.forced_groundings += len(victims)
        self.ground(
            [v.transaction_id for v in victims],
            forced=True,
        )

    # ------------------------------------------------------------------
    # Grounding
    # ------------------------------------------------------------------

    def ground(
        self,
        transaction_ids: Iterable[int],
        *,
        forced: bool = False,
        executor: Executor | None = None,
        timeout_s: float | None = None,
    ) -> list[GroundedTransaction]:
        """Fix value assignments for the given pending transactions.

        Transactions are grouped by partition; each group is grounded under
        the configured serializability mode.  Ids that are not pending
        (already grounded) are silently skipped, which makes the call
        idempotent.

        Args:
            transaction_ids: the pending transactions to ground.
            forced: mark the resulting records as forced by the ``k`` bound.
            executor: optional executor on which the read-only *plan* phase
                (serializability planning + grounding search) runs
                concurrently when more than one partition is involved.
                Partitions are independent by construction — their atoms
                cannot unify, so the rows their plans ground on are
                disjoint — which makes the plans valid regardless of the
                order the (serial) apply phase later executes them in.
            timeout_s: optional per-plan bound on how long to wait for a
                fanned-out plan future.  Applies to the sharded and
                executor paths only (inline plans run on the caller's
                thread).  On expiry a
                :class:`~repro.errors.GroundingTimeout` is raised *before*
                any apply phase ran, so the database state is unchanged —
                every targeted transaction simply stays pending.
        """
        grouped: dict[int, tuple[Partition, list[PendingTransaction]]] = {}
        for transaction_id in transaction_ids:
            located = self.partitions.find(transaction_id)
            if located is None:
                continue
            partition, entry = located
            grouped.setdefault(partition.partition_id, (partition, []))[1].append(entry)
        groups = list(grouped.values())
        results: list[GroundedTransaction] = []
        plan_on_shards = getattr(self.partitions, "plan_on_shards", None)
        if (
            plan_on_shards is not None
            and getattr(self.partitions, "shard_count", 1) > 1
            and len(groups) > 1
        ):
            # Sharded execution: each partition's read-only plan runs on
            # the executor of the shard that owns it — in-process for the
            # thread backend, via a pickled PlanPayload round-trip for the
            # process backend — while the mutating apply phase stays
            # serial, in deterministic group order.
            planned = plan_on_shards(
                groups,
                lambda partition, entries: self.plan_grounding(
                    partition, entries, forced=forced
                ),
                payload_builder=self._build_plan_payload(forced),
                timeout_s=timeout_s,
            )
            # Resolve every shipped PlanResult before applying any plan:
            # resolution raises on an unsatisfiable result, and both
            # backends must fail *before* the first apply so no group is
            # grounded when a later one violates the invariant.
            resolved = [
                plan
                if isinstance(plan, PlannedGrounding)
                else self._resolve_plan_result(group[0], plan)
                for group, plan in zip(groups, planned)
            ]
            for plan in resolved:
                results.extend(self.apply_grounding(plan))
        elif executor is not None and len(groups) > 1:
            # Per-future timeout (matching the sharded path), not a single
            # cumulative deadline over the whole batch: a slow-but-healthy
            # fan-out must not be misreported as a hung worker.
            futures = [
                executor.submit(
                    self.plan_grounding, partition, entries, forced=forced
                )
                for partition, entries in groups
            ]
            planned = collect_plan_futures(
                futures, timeout_s, what="grounding plan"
            )
            for plan in planned:
                results.extend(self.apply_grounding(plan))
        else:
            for partition, entries in groups:
                results.extend(
                    self._ground_in_partition(partition, entries, forced=forced)
                )
        return results

    def _build_plan_payload(self, forced: bool) -> Callable[..., Any]:
        """Payload factory for the process shard backend's plan shipping.

        Returns a callable the sharded partition manager invokes per group
        to obtain the picklable :class:`~repro.sharding.backend.PlanPayload`
        it ships to the owning worker process.  Only consulted when the
        manager's backend is process-based.  One table-snapshot cache is
        shared across the groups of the call: partitions of the same
        fan-out typically touch the same relations, so each table is
        walked once rather than once per group.
        """
        snapshot_cache: dict[str, Any] = {}

        def build(
            partition: Partition, targets: Sequence[PendingTransaction]
        ):
            from repro.sharding.backend import build_payload

            return build_payload(
                partition,
                targets,
                database=self.database,
                serializability=self.serializability,
                forced=forced,
                snapshot_cache=snapshot_cache,
            )

        return build

    def _resolve_plan_result(
        self, partition: Partition, result: "PlanResult"
    ) -> PlannedGrounding:
        """Rehydrate a worker process's picklable plan into local objects.

        The worker plans over shipped copies of the pending entries; the
        writer maps the returned transaction ids back onto *its* entry
        objects, so the apply phase mutates the real partition.
        """
        self.cache.search.absorb_nodes(result.search_nodes)
        if not result.satisfiable:
            raise QuantumStateError(
                "quantum database invariant violated: no grounding exists for "
                f"partition #{partition.partition_id}"
            )
        by_id = {entry.transaction_id: entry for entry in partition.pending}
        plan = GroundingPlan(
            to_ground=tuple(by_id[i] for i in result.to_ground_ids),
            remaining_order=tuple(by_id[i] for i in result.remaining_ids),
            reordered=result.reordered,
        )
        assert result.substitution is not None
        return PlannedGrounding(
            partition=partition,
            plan=plan,
            substitution=result.substitution,
            satisfied_atoms=dict(result.satisfied_atoms),
            forced=result.forced,
        )

    def ground_all(
        self,
        *,
        executor: Executor | None = None,
        timeout_s: float | None = None,
    ) -> list[GroundedTransaction]:
        """Ground every pending transaction (used at workload end)."""
        ids = [entry.transaction_id for entry in self.pending_transactions()]
        return self.ground(ids, executor=executor, timeout_s=timeout_s)

    def plan_grounding(
        self,
        partition: Partition,
        targets: Sequence[PendingTransaction],
        *,
        forced: bool = False,
    ) -> "PlannedGrounding":
        """The read-only half of grounding: pick an order and a substitution.

        Runs the serializability planner and the preference-maximising
        grounding search (:func:`compute_grounding_plan`), mutating no
        shared state (the search's own counters are lock-guarded) — safe
        to run concurrently for *different* partitions while no writes are
        in flight (the single-writer session loop guarantees that).

        Raises:
            QuantumStateError: if no grounding exists, i.e. the quantum
                database invariant was somehow violated.
        """
        with self.store_guard.read():
            plan, substitution, satisfied_atoms = compute_grounding_plan(
                self.cache.search, self.serializability, partition, targets
            )
        if substitution is None:
            raise QuantumStateError(
                "quantum database invariant violated: no grounding exists for "
                f"partition #{partition.partition_id}"
            )
        return PlannedGrounding(
            partition=partition,
            plan=plan,
            substitution=substitution,
            satisfied_atoms=satisfied_atoms,
            forced=forced,
        )

    def apply_grounding(
        self, planned: "PlannedGrounding"
    ) -> list[GroundedTransaction]:
        """The mutating half of grounding: execute a plan's update portions."""
        # Counted here, not in the (possibly concurrent) plan phase; the
        # lock keeps the counter exact when lane writers apply concurrently.
        if planned.plan.reordered:
            with self._statistics_lock:
                self.statistics.semantic_reorders += 1
        return self._execute_grounding(
            planned.partition,
            planned.plan,
            planned.substitution,
            planned.satisfied_atoms,
            forced=planned.forced,
        )

    def _ground_in_partition(
        self,
        partition: Partition,
        targets: Sequence[PendingTransaction],
        *,
        forced: bool,
    ) -> list[GroundedTransaction]:
        return self.apply_grounding(
            self.plan_grounding(partition, targets, forced=forced)
        )

    def _execute_grounding(
        self,
        partition: Partition,
        plan: GroundingPlan,
        substitution: Substitution,
        satisfied_atoms: dict[int, int],
        *,
        forced: bool,
    ) -> list[GroundedTransaction]:
        """Apply the update portions of the grounded prefix to the database.

        Runs under the exclusive side of the store guard: a lane-triggered
        forced grounding mutates the shared extensional store, and every
        concurrent witness-extension search (shared side) must be excluded
        while the tables change shape.  Partition independence already makes
        the *row sets* disjoint; the guard protects the Python-level table
        structures.
        """
        with self.store_guard.write():
            return self._execute_grounding_locked(
                partition, plan, substitution, satisfied_atoms, forced=forced
            )

    def _execute_grounding_locked(
        self,
        partition: Partition,
        plan: GroundingPlan,
        substitution: Substitution,
        satisfied_atoms: dict[int, int],
        *,
        forced: bool,
    ) -> list[GroundedTransaction]:
        grounded_statements: list[tuple[PendingTransaction, list[Statement]]] = []
        deltas: list[tuple[str, tuple, bool]] = []
        with self.database.begin() as txn:
            for entry in plan.to_ground:
                statements = entry.renamed.ground_updates(substitution)
                for statement in statements:
                    applied = txn.apply(statement)
                    is_delete = isinstance(statement, Delete)
                    deltas.extend(
                        (statement.table, row.values, is_delete) for row in applied
                    )
                grounded_statements.append((entry, statements))
        # This partition's witness is superseded below; dropping it first
        # keeps the invalidation counter to genuine cross-partition hits.
        self.cache.drop_witness(partition.partition_id)
        # Row-level deltas invalidate exactly the witnesses they touch
        # (normally none outside this partition, by independence).
        self.cache.notify_deltas(deltas)
        # Optional-atom satisfaction is reported against the database state
        # that results from executing the grounded prefix: "sit next to
        # Goofy" is a property of the final seating, not of the intermediate
        # state in which one partner's booking does not exist yet.
        results: list[GroundedTransaction] = []
        for entry, statements in grounded_statements:
            results.append(
                GroundedTransaction(
                    transaction=entry.original,
                    valuation=entry.original_valuation(substitution),
                    satisfied_optionals=self._count_satisfied_optionals(
                        entry, substitution
                    ),
                    statements=tuple(statements),
                    forced=forced,
                )
            )
        partition.pending = list(plan.remaining_order)
        partition.cached_solution = substitution
        partition.restrict_solution()
        if partition.pending and partition.cached_solution is not None:
            # The restriction of a consistent grounding for the full order is
            # a consistent grounding of the remaining sequence over the
            # database produced by executing the prefix (Theorem 3.5), so the
            # successor witness can be stored without re-searching.
            self.cache.store_witness(
                partition, partition.composed_formula(), partition.cached_solution
            )
        self.partitions.drop_if_empty(partition)
        for record in results:
            self.grounded_results[record.transaction_id] = record
            self.statistics.grounded += 1
            if self.on_grounded is not None:
                self.on_grounded(record)
        return results

    def _count_satisfied_optionals(
        self, entry: PendingTransaction, substitution: Substitution
    ) -> int:
        """How many optional atoms of ``entry`` hold in the current database.

        Only the bindings of the transaction's *hard* variables (the ones
        that determine its actual effect — which seat was taken) are pinned;
        auxiliary variables that occur solely in optional atoms are checked
        existentially, so a preference counts as satisfied whenever the final
        state supports it, regardless of what the preference-maximisation
        search happened to bind those auxiliaries to.
        """
        pinned = substitution.restrict(entry.renamed.hard_variables())
        count = 0
        for atom in entry.renamed.optional_body:
            specialised = pinned.apply_atom(atom)
            formula = rewrite_atom_against_updates(specialised, [])
            if self.cache.search.exists(formula):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Reads: which pending transactions does a read touch?
    # ------------------------------------------------------------------

    def affected_by_read(self, atoms: Sequence[Atom]) -> list[PendingTransaction]:
        """Pending transactions whose updates unify with any read atom.

        This is the paper's "simple practical solution ... a conservative
        criterion based on unifiability": if a relational atom of the read
        unifies with a pending update, that transaction's values must be
        fixed before the read can be answered.

        The scan is restricted to partitions whose atoms overlap the read
        (via the partition manager, so the sharded signature index
        prefilters it): an update that unifies with a read atom makes its
        whole partition overlap, hence the restriction loses nothing.
        """
        candidates = self.partitions.overlapping_partitions(atoms)
        entries = [entry for partition in candidates for entry in partition]
        entries.sort(key=lambda e: e.sequence)
        affected: list[PendingTransaction] = []
        for entry in entries:
            for update in entry.renamed.updates:
                if any(unifiable(update.as_body(), atom.as_body()) for atom in atoms):
                    affected.append(entry)
                    break
        return affected

    # ------------------------------------------------------------------
    # Writes: blind-write admission control
    # ------------------------------------------------------------------

    def validate_write(self, statements: Sequence[Statement]) -> None:
        """Apply blind writes only if every partition invariant survives.

        "All writes to the database which unify with the bodies of the
        pending transactions need to pass through a check and are rejected
        if the check fails" (Section 3.2.2).  The check applies the write,
        re-validates (or re-solves) every affected partition's composed body
        over the modified database, and rolls the write back on failure.

        Raises:
            WriteRejected: if the write would empty the set of possible
                worlds.
        """
        with self.store_guard.write():
            self._validate_write_locked(statements)

    def _validate_write_locked(self, statements: Sequence[Statement]) -> None:
        """The write check proper, under the exclusive store guard.

        Blind writes interleave store mutation with re-validation searches,
        so the whole check holds the write side (the guard lets the holder
        read its own exclusive state; see :class:`ReadWriteGuard`).
        """
        self.statistics.writes_checked += 1
        write_atoms = [_statement_atom(s) for s in statements]
        affected = [
            partition
            for partition in self.partitions.overlapping_partitions(write_atoms)
            if partition.pending
        ]
        txn = self.database.begin()
        deltas: list[tuple[str, tuple, bool]] = []
        touched: list[Partition] = []
        try:
            # Only blind single-row inserts/deletes reach this point
            # (_statement_atom above rejects Update and conditional Delete),
            # so the applied rows describe the write's complete delta.
            for statement in statements:
                applied = txn.apply(statement)
                is_delete = isinstance(statement, Delete)
                deltas.extend(
                    (statement.table, row.values, is_delete) for row in applied
                )
            new_solutions: dict[int, Substitution] = {}
            for partition in affected:
                witness = self.cache.witness_for(partition)
                if witness is not None and not witness.touched_by(deltas):
                    # Fast path: the write provably misses every row the
                    # witness grounds on, so the invariant survives without
                    # re-walking the composed body.
                    self.cache.statistics.witness_hits += 1
                    continue
                touched.append(partition)
                if self.cache.enable_witness:
                    self.cache.statistics.witness_misses += 1
                    self.cache.statistics.fallback_searches += 1
                formula = partition.composed_formula()
                if self.cache.verify(formula, partition.cached_solution):
                    continue
                required = frozenset().union(
                    *(e.renamed.hard_variables() for e in partition.pending)
                )
                result = self.cache.solve(formula, required=required)
                if not result.satisfiable:
                    raise WriteRejected(
                        "write rejected: it would invalidate pending "
                        f"transactions {partition.transaction_ids()}"
                    )
                new_solutions[partition.partition_id] = result.substitution
        except Exception:
            if txn.is_active:
                txn.abort()
            self.statistics.writes_rejected += 1
            raise
        txn.commit()
        self.cache.notify_deltas(deltas)
        for partition in affected:
            if partition.partition_id in new_solutions:
                partition.cached_solution = new_solutions[partition.partition_id]
        for partition in touched:
            # Every touched partition was re-validated (or re-solved) against
            # the post-write store; refresh its witness accordingly.
            self.cache.store_witness(
                partition, partition.composed_formula(), partition.cached_solution
            )


def _statement_atom(statement: Statement) -> Atom:
    """Convert a blind write statement into a ground atom for unification."""
    if isinstance(statement, Insert):
        values = statement.values
    elif isinstance(statement, Delete) and statement.values is not None:
        values = statement.values
    else:
        raise WriteRejected(
            f"only blind single-row writes can be checked, got {statement!r}"
        )
    if isinstance(values, Mapping):
        ordered = tuple(values.values())
    else:
        ordered = tuple(values)
    return Atom.body(statement.table, ordered)
