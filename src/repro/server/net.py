"""The network layer: a framed asyncio TCP server over the session layer.

This module puts :class:`~repro.server.service.QuantumServer` on the wire.
Each TCP connection is adapted to one ordinary
:class:`~repro.server.session.Session`, so every decision path — the
single-writer admission queue, group-commit drains, admission lanes,
cancellation semantics — is reused *unchanged*: the network layer parses
frames and marshals results, nothing more.  Decisions over TCP are
therefore identical to in-process sessions fed the same admission order
(pinned by ``tests/server/test_net_identity.py``).

Design points (see ``docs/architecture.md``, "The network layer"):

* **Framed protocol.**  Length-prefixed JSON messages with typed opcodes
  (:mod:`repro.server.protocol`).  Malformed frames produce a typed error
  frame and a clean close — never an unhandled exception near the writer
  loop.

* **Backpressure ladder.**  Session quota (one connection's pipeline) →
  tenant quota (all connections of one tenant, summed) → per-connection
  write buffer.  The first two surface as typed error frames
  (``session_backpressure`` / ``tenant_backpressure``); the third guards
  the server against *slow readers*: response frames queue in a bounded
  per-connection buffer, and a client that stops reading past the bound is
  disconnected (``slow_client_disconnects``) instead of wedging the writer
  or growing the heap.

* **Graceful drain.**  On SIGTERM (or :meth:`NetworkServer.drain`): stop
  accepting connections, refuse new requests with a ``draining`` error
  frame, let in-flight requests complete, shut the session layer down
  (which drains the admission queue and lanes and checkpoints the WAL —
  a full-snapshot fold on the legacy log; on the segmented engine a
  base/delta lineage record plus one final compaction sweep before the
  compactor thread is joined), then push a ``goodbye`` frame and close
  every socket.
  Commits in flight at the moment of the signal keep their guarantee:
  the store and the in-memory pending set agree exactly afterwards.

* **Disconnect semantics.**  A client that vanishes mid-commit behaves
  exactly like a post-admission cancellation: the request already queued
  is processed normally (the decision stands and is durable), only the
  acknowledgement is dropped.
"""

from __future__ import annotations

import asyncio
import signal as signal_module
import socket as socket_module
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.quantum_database import QuantumDatabase
from repro.core.reads import ReadMode
from repro.errors import ProtocolError, QuantumError, ReproError
from repro.server.protocol import (
    DRAINING_CODE,
    MAX_FRAME_BYTES,
    FrameDecoder,
    Opcode,
    commit_value,
    encode_frame,
    error_frame,
    grounded_value,
    result_frame,
)
from repro.server.service import QuantumServer, ServerConfig
from repro.server.session import Session


@dataclass(frozen=True)
class NetConfig:
    """Configuration of a :class:`NetworkServer`.

    Attributes:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` (default) lets the OS pick a free one —
            read it back from :attr:`NetworkServer.port`.
        max_frame_bytes: ceiling on one frame's payload, both directions.
        write_buffer_bytes: per-connection bound on queued-but-unsent
            response bytes; a connection that exceeds it (a slow reader)
            is disconnected rather than buffered without bound.
        drain_timeout_s: how long a graceful drain waits for in-flight
            requests before shutting the session layer down anyway.
        sock_sndbuf: when set, shrink each connection's kernel send buffer
            (``SO_SNDBUF``) — mainly for tests that need to exercise the
            slow-reader path without pumping megabytes through loopback.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_frame_bytes: int = MAX_FRAME_BYTES
    write_buffer_bytes: int = 1 << 20
    drain_timeout_s: float = 10.0
    sock_sndbuf: int | None = None

    def __post_init__(self) -> None:
        if self.max_frame_bytes < 64:
            raise QuantumError("NetConfig.max_frame_bytes must be at least 64")
        if self.write_buffer_bytes < 1:
            raise QuantumError(
                "NetConfig.write_buffer_bytes must be positive"
            )
        if self.drain_timeout_s < 0:
            raise QuantumError("NetConfig.drain_timeout_s must not be negative")


@dataclass
class NetStatistics:
    """Network-layer counters (exposed via ``statistics_report()``).

    Attributes:
        connections_opened / connections_closed: TCP connection lifecycle.
        frames_in / frames_out: complete frames decoded / queued for send.
        bytes_in / bytes_out: raw socket bytes received / queued for send.
        requests: request frames dispatched to a session.
        errors_sent: typed error frames answered.
        protocol_errors: connections killed by a malformed frame.
        slow_client_disconnects: connections killed by the write-buffer
            bound (the slow-reader rung of the backpressure ladder).
        draining_rejections: requests refused with a ``draining`` frame
            during graceful drain.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    requests: int = 0
    errors_sent: int = 0
    protocol_errors: int = 0
    slow_client_disconnects: int = 0
    draining_rejections: int = 0


class _Connection:
    """One accepted TCP connection: a framed adapter around one Session.

    Requests on a connection are handled strictly in arrival order (the
    closed-loop client model); concurrency comes from many connections
    sharing the single-writer admission queue.  Responses flow through a
    bounded outbound queue serviced by a dedicated sender task, so a slow
    reader blocks only its own sender — and past the bound, is dropped.
    """

    def __init__(
        self,
        net: "NetworkServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.net = net
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_frame_bytes=net.config.max_frame_bytes)
        self.session: Session | None = None
        self.closed = False
        self._aborted = False
        #: Outbound frames waiting for the sender task, bounded by
        #: ``NetConfig.write_buffer_bytes`` (counted in bytes, not frames).
        self._outbound: deque[bytes] = deque()
        self._outbound_bytes = 0
        self._send_ready = asyncio.Event()
        self._sender_task: asyncio.Task | None = None
        #: True while a request handler is running (graceful drain waits
        #: for this to clear before shutting the session layer down).
        self.busy = False

    # -- outbound path -------------------------------------------------------

    def send(self, message: dict[str, Any]) -> bool:
        """Queue one frame for sending; False if the connection is gone.

        This is the slow-reader guard: the frame is appended to the
        bounded outbound buffer, and a connection whose reader cannot keep
        up — kernel buffers full, sender blocked in ``drain()``, queue
        past the bound — is aborted here instead of buffering without
        limit or stalling the event loop.
        """
        if self.closed:
            return False
        try:
            data = encode_frame(
                message, max_frame_bytes=self.net.config.max_frame_bytes
            )
        except ProtocolError:
            # A response too large for the frame bound (e.g. a huge read
            # result): answer with a typed error instead of dying silently.
            data = encode_frame(
                error_frame(
                    message.get("id"),
                    "frame_too_large",
                    "response exceeded the frame size bound",
                )
            )
        self._outbound_bytes += len(data)
        if self._outbound_bytes > self.net.config.write_buffer_bytes:
            self.net.statistics.slow_client_disconnects += 1
            self.abort()
            return False
        self._outbound.append(data)
        self.net.statistics.frames_out += 1
        self.net.statistics.bytes_out += len(data)
        self._send_ready.set()
        return True

    async def _sender(self) -> None:
        """Drain the outbound queue onto the transport, frame by frame."""
        try:
            while True:
                await self._send_ready.wait()
                while self._outbound:
                    data = self._outbound.popleft()
                    self.writer.write(data)
                    # Honor transport backpressure *outside* the request
                    # handlers: a slow reader parks this task, the queue
                    # grows, and `send` disconnects past the bound.
                    await self.writer.drain()
                    self._outbound_bytes -= len(data)
                self._send_ready.clear()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def abort(self) -> None:
        """Tear the connection down immediately (no flush)."""
        if self.closed:
            return
        self.closed = True
        self._aborted = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    # -- inbound path --------------------------------------------------------

    async def run(self) -> None:
        """Read frames until EOF/error, handling each request in order."""
        self._sender_task = asyncio.get_running_loop().create_task(
            self._sender()
        )
        try:
            while not self.closed:
                data = await self.reader.read(65536)
                if not data:
                    break  # clean EOF (possibly with a half-written frame buffered)
                self.net.statistics.bytes_in += len(data)
                try:
                    messages = self.decoder.feed(data)
                except ProtocolError as exc:
                    # Framing is byte-positional: after a corrupt frame
                    # there is no resynchronization point, so answer with
                    # one final typed error and close.
                    self.net.statistics.protocol_errors += 1
                    self.send(error_frame(None, exc))
                    break
                for message in messages:
                    self.net.statistics.frames_in += 1
                    await self._handle(message)
                    if self.closed:
                        break
        except ConnectionError:
            pass
        finally:
            await self._close()

    async def _handle(self, message: dict[str, Any]) -> None:
        request_id = message.get("id")
        op = Opcode(message["op"])  # validated by the decoder
        if op in (Opcode.RESULT, Opcode.ERROR, Opcode.GOODBYE):
            self.net.statistics.protocol_errors += 1
            self.send(
                error_frame(
                    request_id,
                    "protocol_error",
                    f"{op.value} is a response opcode; clients must not send it",
                )
            )
            # Stop reading; run() falls through to _close, which flushes
            # the error frame before closing the socket.
            self.closed = True
            return
        if self.net.draining:
            # Stop-accepting applies to requests too: anything arriving
            # after the drain began was never processed, and the client
            # should fail over rather than wait.
            self.net.statistics.draining_rejections += 1
            self.send(
                error_frame(
                    request_id, DRAINING_CODE, "server is draining; reconnect elsewhere"
                )
            )
            return
        self.net.statistics.requests += 1
        self.busy = True
        try:
            value = await self._dispatch(op, message)
        except ReproError as exc:
            self.net.statistics.errors_sent += 1
            self.send(error_frame(request_id, exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            self.net.statistics.errors_sent += 1
            self.send(error_frame(request_id, "internal", repr(exc)))
        else:
            self.send(result_frame(request_id, value))
        finally:
            self.busy = False

    def _session(self) -> Session:
        """The connection's session, created lazily on first use."""
        if self.session is None:
            peer = self.writer.get_extra_info("peername")
            client = f"{peer[0]}:{peer[1]}" if peer else None
            self.session = self.net.server.session(client=client)
        return self.session

    async def _dispatch(self, op: Opcode, message: dict[str, Any]) -> Any:
        if op is Opcode.HELLO:
            if self.session is not None:
                raise ProtocolError(
                    "hello must be the connection's first request"
                )
            self.session = self.net.server.session(
                client=message.get("client"), tenant=message.get("tenant")
            )
            return {"session": self.session.session_id}
        if op is Opcode.PING:
            return {"pong": True}
        session = self._session()
        if op is Opcode.COMMIT:
            result = await session.commit(
                self._transaction_text(message), **self._parse_kwargs(message)
            )
            return commit_value(result)
        if op is Opcode.COMMIT_BATCH:
            items = message.get("transactions")
            if not isinstance(items, list):
                raise ProtocolError("commit_batch needs a 'transactions' list")
            parsed = [
                self.net.server._parse(
                    self._transaction_text(item),
                    self._parse_kwargs(item),
                    client=session.client,
                )
                for item in items
            ]
            results = await session.commit_batch(parsed)
            return [commit_value(result) for result in results]
        if op is Opcode.READ:
            request = message.get("request")
            if not isinstance(request, str):
                raise ProtocolError("read needs a 'request' relation name")
            mode = message.get("mode")
            return await session.read(
                request,
                message.get("terms"),
                mode=ReadMode(mode) if mode is not None else None,
                select=message.get("select"),
                limit=message.get("limit"),
            )
        if op is Opcode.GROUND:
            ids = message.get("transaction_ids")
            if not isinstance(ids, list):
                raise ProtocolError("ground needs a 'transaction_ids' list")
            records = await session.ground([int(i) for i in ids])
            return [grounded_value(record) for record in records]
        if op is Opcode.GROUND_ALL:
            records = await self.net.server.ground_all()
            return [grounded_value(record) for record in records]
        if op is Opcode.CHECK_IN:
            record = await session.check_in(int(message["transaction_id"]))
            return grounded_value(record) if record is not None else None
        if op is Opcode.STATS:
            return self.net.statistics_report()
        raise ProtocolError(f"unhandled opcode {op.value!r}")  # pragma: no cover

    @staticmethod
    def _transaction_text(message: Any) -> str:
        if isinstance(message, str):
            return message
        if isinstance(message, dict):
            text = message.get("text")
            if isinstance(text, str):
                return text
        raise ProtocolError("commit needs a transaction 'text'")

    @staticmethod
    def _parse_kwargs(message: Any) -> dict[str, Any]:
        if not isinstance(message, dict):
            return {}
        kwargs: dict[str, Any] = {}
        for key in ("client", "partner"):
            value = message.get(key)
            if value is not None:
                kwargs[key] = value
        return kwargs

    # -- teardown ------------------------------------------------------------

    async def _close(self) -> None:
        # Give the sender a bounded chance to flush what is already queued
        # (e.g. the final error frame after a protocol violation) before
        # cancelling it; an aborted transport ends the wait immediately.
        if self._sender_task is not None and not self._aborted:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 1.0
            while self._outbound and not self._sender_task.done():
                if loop.time() >= deadline:
                    break
                await asyncio.sleep(0.005)
        self.closed = True
        if self.session is not None:
            await self.session.close()
        if self._sender_task is not None:
            self._sender_task.cancel()
            try:
                await self._sender_task
            except asyncio.CancelledError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        # Count every connection exactly once (run() reaches here once).
        self.net.statistics.connections_closed += 1
        self.net._connections.discard(self)


class NetworkServer:
    """A framed asyncio TCP front end over one :class:`QuantumServer`.

    Usable as an async context manager::

        qdb = QuantumDatabase()
        ...schema + data...
        async with NetworkServer(qdb) as net:
            client = await NetClient.connect("127.0.0.1", net.port)
            ...

    Accepts either an existing (possibly running) :class:`QuantumServer`
    or a bare :class:`QuantumDatabase` (wrapped in a fresh server built
    from ``server_config``).  ``__aexit__`` performs a full graceful
    drain, including the session layer's queue drain and WAL checkpoint.
    """

    def __init__(
        self,
        server: QuantumServer | QuantumDatabase,
        config: NetConfig | None = None,
        *,
        server_config: ServerConfig | None = None,
    ) -> None:
        if isinstance(server, QuantumDatabase):
            server = QuantumServer(server, server_config)
        elif server_config is not None:
            raise QuantumError(
                "pass server_config only with a bare QuantumDatabase; an "
                "existing QuantumServer already has its configuration"
            )
        self.server = server
        self.config = config or NetConfig()
        self.statistics = NetStatistics()
        self.draining = False
        self._listener: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._drain_task: asyncio.Task | None = None
        self._drained = asyncio.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``NetConfig(port=0)``)."""
        if self._port is None:
            raise QuantumError("server is not started")
        return self._port

    async def start(self) -> "NetworkServer":
        """Start the session layer (if needed) and begin accepting."""
        if self._started:
            return self
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._accept, self.config.host, self.config.port
        )
        self._port = self._listener.sockets[0].getsockname()[1]
        self._started = True
        return self

    async def __aenter__(self) -> "NetworkServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal_module.SIGTERM, signal_module.SIGINT)
    ) -> None:
        """Trigger a graceful drain on SIGTERM/SIGINT (idempotent)."""
        loop = asyncio.get_running_loop()
        for sig in signals:
            loop.add_signal_handler(sig, self._signal_drain)

    def _signal_drain(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.get_event_loop().create_task(
                self.drain(), name="repro-net-drain"
            )

    async def wait_drained(self) -> None:
        """Block until a graceful drain (e.g. from SIGTERM) completed."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown, in the documented order.

        1. Stop accepting TCP connections.
        2. Refuse new requests with a ``draining`` error frame while the
           in-flight ones complete (bounded by ``drain_timeout_s``).
        3. Shut the session layer down: the admission queue and lanes
           drain, grounding futures resolve, and the WAL folds into a
           snapshot checkpoint.
        4. Push a ``goodbye`` frame to every connection, then close all
           sockets.
        """
        if self.draining:
            await self._drained.wait()
            return
        self.draining = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_timeout_s
        )
        while any(conn.busy for conn in self._connections):
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.005)
        await self.server.shutdown()
        for conn in list(self._connections):
            conn.send({"op": Opcode.GOODBYE.value})
        # Give each sender one scheduling round to flush the goodbye, then
        # close; `_close` waits for the transport's buffers.
        await asyncio.sleep(0)
        for conn in list(self._connections):
            conn.closed = True
            try:
                conn.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - defensive
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._drained.set()

    # -- accept path ---------------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.draining:
            writer.close()
            return
        if self.config.sock_sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket_module.SOL_SOCKET,
                    socket_module.SO_SNDBUF,
                    self.config.sock_sndbuf,
                )
        self.statistics.connections_opened += 1
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        task = asyncio.get_running_loop().create_task(connection.run())
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    # -- reporting -----------------------------------------------------------

    @property
    def connection_count(self) -> int:
        """Currently open TCP connections."""
        return len(self._connections)

    def statistics_report(self) -> dict[str, Any]:
        """The session layer's report plus a ``net.*`` section."""
        report = self.server.statistics_report()
        for name, value in vars(self.statistics).items():
            report[f"net.{name}"] = value
        report["net.connections"] = self.connection_count
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "draining"
            if self.draining
            else ("listening" if self._started else "new")
        )
        return f"<NetworkServer {state} connections={self.connection_count}>"


async def serve(
    qdb: QuantumDatabase,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config: NetConfig | None = None,
    server_config: ServerConfig | None = None,
    install_signals: bool = True,
    ready: "asyncio.Future[NetworkServer] | None" = None,
) -> None:
    """Serve ``qdb`` over TCP until a graceful drain completes.

    The one-call entry point: wraps the database in a
    :class:`QuantumServer`, starts a :class:`NetworkServer`, installs
    SIGTERM/SIGINT handlers (so ``kill <pid>`` performs the documented
    drain sequence), and returns once the drain finished.  Pass a
    ``ready`` future to learn the bound port (it resolves with the
    running :class:`NetworkServer`)::

        ready = asyncio.get_running_loop().create_future()
        task = asyncio.create_task(serve(qdb, ready=ready))
        net = await ready          # net.port is now bound
        ...
        await net.drain()          # or: os.kill(os.getpid(), SIGTERM)
        await task
    """
    if config is None:
        config = NetConfig(host=host, port=port)
    net = NetworkServer(qdb, config, server_config=server_config)
    await net.start()
    if install_signals:
        net.install_signal_handlers()
    if ready is not None and not ready.done():
        ready.set_result(net)
    await net.wait_drained()
