"""Seeded sampling-based admission estimation for huge partitions.

Partitions whose composed bodies are too large to search exactly could
previously only be rejected or force-grounded.  This estimator (shaped
after pracmln's MC-SAT/Gibbs samplers: randomized state construction,
deterministic under a seed) runs a bounded number of *greedy descents*
through the formula instead of an exhaustive search:

* each descent walks the same part-selection order as the exact search,
  but commits to one randomly chosen row per atom (candidate rows are
  shuffled; unification failures skip to the next shuffled row) and one
  random branch per disjunction — **no backtracking across parts**;
* a descent succeeds only when it reaches a *complete* assignment that
  passes the deferred-negation checks and the required-variable close —
  i.e. a genuine grounding, constructed exactly as the exact search
  would certify it.

Sampling therefore produces **false negatives only**: an accept is backed
by a real witness (the invariant can never be corrupted), while a reject
merely means no descent got lucky.  Both outcomes are approximate in the
sense surfaced to callers (``AdmissionProbe.exact = False``); the
estimator never engages without an explicit
:class:`~repro.solver.strategy.SamplingConfig` opt-in.

Determinism: a fresh ``random.Random(seed)`` per call plus the store's
insertion-order-preserving row enumeration make decisions identical
across runs and across execution modes (inline, thread lanes, shipped
``AdmissionPayload`` workers).
"""

from __future__ import annotations

import random

from repro.errors import FormulaError
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Formula,
    Negation,
    TRUE,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.solver.bnb import TrailSearch
from repro.solver.grounding import (
    GroundingResult,
    GroundingSearch,
    GroundingStatistics,
)
from repro.solver.strategy import SamplingConfig
from repro.solver.undo import TrailBindings


def relational_atom_count(formula: Formula) -> int:
    """Relational atoms in a formula — the partition-size threshold key.

    A pure function of the formula alone, so every execution mode decides
    "is this partition above the sampling threshold?" identically.
    """
    return len(formula.atoms())


def _descend(
    engine: TrailSearch, simplified: Formula, rng: random.Random
) -> Substitution | None:
    """One greedy randomized descent; a snapshot on success, else None."""
    bindings = engine.bindings
    stats = engine.stats
    parts: list[Formula] = [simplified]
    deferred: list[Formula] = []
    while True:
        if not parts:
            if engine._check_deferred(deferred):
                return bindings.snapshot()
            return None
        index, part = engine._select_part(parts)
        rest = parts[:index] + parts[index + 1 :]
        if part is TRUE:
            parts = rest
            continue
        if part is FALSE:
            stats.backtracks += 1
            return None
        if isinstance(part, Conjunction):
            parts = list(part.parts) + rest
            continue
        if isinstance(part, Equality):
            if not bindings.unify(part.left, part.right):
                stats.backtracks += 1
                return None
            ok, deferred = engine._propagate_deferred(deferred)
            if not ok:
                stats.backtracks += 1
                return None
            parts = rest
            continue
        if isinstance(part, Negation):
            decision = engine._try_negation(part)
            if decision is False:
                stats.backtracks += 1
                return None
            if decision is None:
                deferred = deferred + [part]
            parts = rest
            continue
        if isinstance(part, Disjunction):
            stats.choice_points += 1
            branch = part.parts[rng.randrange(len(part.parts))]
            parts = [branch] + rest
            continue
        if isinstance(part, AtomFormula):
            stats.choice_points += 1
            if not _commit_atom(engine, part, rng):
                return None
            parts = rest
            ok, deferred = engine._propagate_deferred(deferred)
            if not ok:
                stats.backtracks += 1
                return None
            continue
        raise FormulaError(f"unsupported formula node {part!r}")


def _commit_atom(engine: TrailSearch, part: AtomFormula, rng: random.Random) -> bool:
    """Bind one shuffled matching row of the atom, greedily and for good."""
    bindings = engine.bindings
    stats = engine.stats
    atom = part.atom
    database = engine.database
    if not database.has_table(atom.relation):
        return False
    table = database.table(atom.relation)
    schema = table.schema
    resolved = [bindings.walk(t) for t in atom.terms]
    if len(resolved) != schema.arity:
        raise FormulaError(
            f"atom {atom!r} has arity {len(resolved)}, table "
            f"{schema.name!r} has arity {schema.arity}"
        )
    columns = []
    values = []
    for position, term in enumerate(resolved):
        if isinstance(term, Constant):
            columns.append(schema.columns[position].name)
            values.append(term.value)
    rows = list(table.lookup(columns, values) if columns else table.scan())
    rng.shuffle(rows)
    for row in rows:
        stats.rows_examined += 1
        mark = bindings.trail.mark()
        matched = True
        for term, value in zip(resolved, row.values):
            if not bindings.unify(term, Constant(value)):
                matched = False
                break
        if matched:
            stats.nodes += 1
            return True
        bindings.trail.undo_to(mark)
    stats.backtracks += 1
    return False


def sample_find_one(
    search: GroundingSearch,
    formula: Formula,
    *,
    required: frozenset[Variable] | None = None,
    initial: Substitution | None = None,
    sampling: SamplingConfig,
) -> GroundingResult:
    """Estimate satisfiability by seeded greedy descents.

    Returns a satisfiable result carrying a *genuine* grounding when any
    descent completes, an (approximate) unsatisfiable result when all
    ``sampling.samples`` descents fail.  Work lands in ``search``'s
    shared totals like every other strategy's.
    """
    simplified = formula.simplify()
    stats = GroundingStatistics()
    if simplified is FALSE:
        return GroundingResult(Substitution.empty(), False, stats)
    required_vars = (
        frozenset(required) if required is not None else simplified.free_variables()
    )
    rng = random.Random(sampling.seed)
    found: GroundingResult | None = None
    max_depth = 0
    try:
        for _ in range(sampling.samples):
            stats.samples += 1
            bindings = TrailBindings(initial)
            engine = TrailSearch(
                search.database, bindings, stats, None, required_vars, prune=False
            )
            snapshot = _descend(engine, simplified, rng)
            max_depth = max(max_depth, bindings.trail.max_depth)
            if snapshot is None:
                continue
            grounded = search._close(snapshot, required_vars)
            if grounded is None:
                continue
            found = GroundingResult(grounded, True, stats)
            break
    finally:
        stats.undo_depth = max(stats.undo_depth, max_depth)
        search.absorb_statistics(stats, formula=simplified, count_search=True)
    if found is not None:
        return found
    return GroundingResult(Substitution.empty(), False, stats)
