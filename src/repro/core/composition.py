"""Composition of resource transactions (Lemma 3.4 and Theorem 3.5).

A sequence of pending resource transactions is composed into a single
formula whose satisfiability over the *current* extensional database
guarantees the existence of consistent groundings for all of them, executed
in sequence.  Following Lemma 3.4 and the worked example of Figure 3, every
body atom ``b`` of a *later* transaction is rewritten against the update
portion ``U`` of each *earlier* transaction:

* inserts ``i ∈ U`` offer an alternative way for ``b`` to hold — ``b`` may
  ground on the inserted tuple — contributing the disjunct ``ϕ(b, i)``;
* deletes ``d ∈ U`` remove a tuple ``b`` may not ground on, contributing the
  conjunct ``¬ϕ(b, d)``;

so the factor for ``b`` is::

    ( b ∨ ⋁_i ϕ(b, i) ) ∧ ⋀_d ¬ϕ(b, d)

Unification predicates that are trivially FALSE (the atoms cannot unify)
drop out of the disjunction, and trivially TRUE/FALSE conjuncts simplify
away, reproducing exactly the composed bodies of Figure 3.

Two textual conventions from the paper are handled here:

* **variable namespaces** — the proof of Lemma 3.4 assumes the composed
  transactions share no variables; :func:`compose_sequence` renames the
  variables of each transaction with a per-transaction suffix before
  composing (the caller receives the renamed transactions so groundings can
  be mapped back);
* **optional atoms** — only the *non-optional* body atoms participate in the
  invariant (Section 2: "the only invariant ... is that there exists a
  satisfying assignment for its non-optional body atoms"); optional atoms
  can be composed separately for grounding-time preference maximisation via
  ``include_optional=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.resource_transaction import ResourceTransaction
from repro.logic.atoms import Atom, AtomKind
from repro.logic.formula import (
    AtomFormula,
    FALSE,
    Formula,
    Negation,
    TRUE,
    conjunction,
    disjunction,
)
from repro.logic.unification import unification_predicate


def rewrite_atom_against_updates(atom: Atom, updates: Sequence[Atom]) -> Formula:
    """Rewrite one later body atom against one earlier update portion.

    Returns the factor ``(b ∨ ⋁_i ϕ(b, i)) ∧ ⋀_d ¬ϕ(b, d)`` described in the
    module docstring.  When the update portion shares no relation with the
    atom the factor collapses back to the plain atom.
    """
    base = AtomFormula(atom.as_body())
    alternatives: list[Formula] = [base]
    exclusions: list[Formula] = []
    for update in updates:
        predicate = unification_predicate(atom.as_body(), update.as_body())
        if update.kind is AtomKind.INSERT:
            if predicate is not FALSE:
                alternatives.append(predicate)
        elif update.kind is AtomKind.DELETE:
            if predicate is not FALSE:
                exclusions.append(Negation(predicate))
    factor = disjunction(alternatives)
    if exclusions:
        factor = conjunction([factor, *exclusions])
    return factor


def rewrite_body_against_updates(
    body: Iterable[Atom], updates: Sequence[Atom]
) -> Formula:
    """Rewrite a whole later body against an earlier update portion."""
    return conjunction(
        [rewrite_atom_against_updates(atom, updates) for atom in body]
    )


def compose_pair(
    earlier: ResourceTransaction,
    later: ResourceTransaction,
    *,
    include_optional: bool = False,
) -> Formula:
    """Compose two resource transactions (Lemma 3.4, general form).

    The result is the body of the equivalent single transaction
    ``U1,U2 :-1 B``: the earlier body conjoined with the later body rewritten
    against the earlier update portion.  Satisfiability of the result on a
    database ``D`` guarantees a consistent sequential grounding of
    ``earlier`` then ``later`` on ``D``.

    Args:
        earlier: the transaction serialized first.
        later: the transaction serialized second.
        include_optional: include optional body atoms (used only when
            building grounding-time "preferred" formulas, never for the
            invariant).
    """
    earlier_body = earlier.body if include_optional else earlier.hard_body
    later_body = later.body if include_optional else later.hard_body
    first = conjunction([AtomFormula(a.as_body()) for a in earlier_body])
    second = rewrite_body_against_updates(later_body, earlier.updates)
    return conjunction([first, second])


def compose_sequence(
    transactions: Sequence[ResourceTransaction],
    *,
    include_optional: bool = False,
    rename: bool = False,
) -> Formula:
    """Compose an ordered sequence of resource transactions (Theorem 3.5).

    Transaction ``i``'s body is rewritten against the accumulated update
    portions of transactions ``0 .. i-1``; the composed body is the
    conjunction of all the rewritten bodies.  Satisfiability over the
    current extensional database is exactly the quantum database invariant.

    Args:
        transactions: pending transactions in serialization order.
        include_optional: include optional body atoms in the composition.
        rename: rename each transaction's variables with a ``@<txn id>``
            suffix before composing.  The quantum state does this renaming
            itself (so that groundings can be mapped back per transaction);
            enable it here for standalone use on transactions that may share
            variable names.
    """
    if rename:
        transactions = [
            t.rename_variables(f"@{t.transaction_id}") for t in transactions
        ]
    factors: list[Formula] = []
    accumulated_updates: list[Atom] = []
    for transaction in transactions:
        body = transaction.body if include_optional else transaction.hard_body
        factors.append(rewrite_body_against_updates(body, accumulated_updates))
        accumulated_updates.extend(transaction.updates)
    if not factors:
        return TRUE
    return conjunction(factors)


def composed_body(
    transactions: Sequence[ResourceTransaction],
    *,
    include_optional: bool = False,
) -> Formula:
    """Alias of :func:`compose_sequence` with renaming disabled.

    Provided for readability at call sites that have already namespaced
    their transactions (the quantum state does).
    """
    return compose_sequence(transactions, include_optional=include_optional)


class IncrementalComposition:
    """A composed body maintained factor-by-factor (Theorem 3.5, online form).

    :func:`compose_sequence` recomputes every rewritten factor on each call,
    which makes re-checking a partition's invariant on every admission
    quadratic in the number of pending transactions.  This class maintains
    the same composed body incrementally: appending transaction ``n+1`` only
    rewrites *its* body against the updates accumulated so far and conjoins
    one new factor, so a whole admission sequence costs one composition pass
    per partition in total.

    The composed formula is identical (same factors, same order) to the one
    :func:`compose_sequence` would produce for the underlying sequence; the
    unit tests assert this equivalence.
    """

    def __init__(self, transactions: Iterable[ResourceTransaction] = ()) -> None:
        self.factors: list[Formula] = []
        self.accumulated_updates: list[Atom] = []
        self._formula: Formula | None = None
        for transaction in transactions:
            self.append(transaction)

    def preview_factor(self, transaction: ResourceTransaction) -> Formula:
        """The factor ``transaction`` would contribute, without appending it.

        This is the transaction's hard body rewritten against the updates
        accumulated so far — exactly what admission needs for its
        extend-or-solve check before committing to the append.
        """
        return rewrite_body_against_updates(
            transaction.hard_body, self.accumulated_updates
        )

    def append(
        self, transaction: ResourceTransaction, factor: Formula | None = None
    ) -> Formula:
        """Append a transaction, reusing ``factor`` if already computed.

        Args:
            transaction: the next transaction in serialization order (already
                variable-renamed by the caller, like everywhere else in the
                quantum state).
            factor: the result of :meth:`preview_factor` for this
                transaction, when the caller already computed it.

        Returns:
            The factor contributed by ``transaction``.
        """
        if factor is None:
            factor = self.preview_factor(transaction)
        self.factors.append(factor)
        self.accumulated_updates.extend(transaction.updates)
        self._formula = None
        return factor

    def formula(self) -> Formula:
        """The composed body of everything appended so far (cached)."""
        if self._formula is None:
            self._formula = conjunction(self.factors) if self.factors else TRUE
        return self._formula

    def __len__(self) -> int:
        return len(self.factors)


@dataclass
class CompositionReport:
    """Diagnostic view of a composition, used by tests and the examples.

    Attributes:
        formula: the composed body.
        atom_count: number of relational atoms in the composed body (the
            analogue of the join count the paper bounds by MySQL's limit).
        transaction_ids: ids of the composed transactions, in order.
    """

    formula: Formula
    atom_count: int
    transaction_ids: tuple[int, ...] = field(default_factory=tuple)

    @classmethod
    def build(
        cls,
        transactions: Sequence[ResourceTransaction],
        *,
        include_optional: bool = False,
    ) -> "CompositionReport":
        """Compose ``transactions`` and report the resulting body size."""
        formula = compose_sequence(transactions, include_optional=include_optional)
        return cls(
            formula=formula,
            atom_count=len(formula.atoms()),
            transaction_ids=tuple(t.transaction_id for t in transactions),
        )
