"""Per-shape fast paths dispatched before the general admission search.

Most factors the admission path searches are *simple*: a freshly renamed
transaction body is a flat conjunction of relational atoms (plus the
equality constraints composition introduced), and the witness-extension
step searches exactly that shape against an already-ground base.  The
general search pays its full machinery — the part-type ladder, the
deferred-negation protocol, choice bookkeeping — on every recursion even
though none of it can trigger.  Following pracmln's ``fastconj`` /
``fastexistential`` specializations, this module recognizes two shapes on
the *simplified* formula and runs a tight trail-based join instead:

* **conjunctive** — ``TRUE``, a single atom/equality, or a flat
  conjunction of atoms and equalities (no negations, no disjunctions,
  no nesting);
* **existential** — a disjunction whose branches are each conjunctive
  (the "some branch has a grounding" probe).

The join replicates the general search's operation order on these shapes
— equalities first in index order, then atoms most-bound-first with the
original tie-break, identical row enumeration — so the first solution is
bit-identical and dispatching a fast path can never change a decision.
Shapes outside the two classes return ``None`` and fall through to the
configured general strategy.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import FormulaError
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Formula,
    TRUE,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.relational.database import Database
from repro.solver.grounding import (
    GroundingResult,
    GroundingSearch,
    GroundingStatistics,
)
from repro.solver.undo import TrailBindings


def conjunctive_parts(formula: Formula) -> list[Formula] | None:
    """The flat atom/equality parts of a conjunctive shape, else ``None``."""
    if formula is TRUE:
        return []
    if isinstance(formula, (AtomFormula, Equality)):
        return [formula]
    if isinstance(formula, Conjunction):
        parts = list(formula.parts)
        if all(isinstance(part, (AtomFormula, Equality)) for part in parts):
            return parts
    return None


def existential_branches(formula: Formula) -> list[list[Formula]] | None:
    """Conjunctive part lists of a disjunction's branches, else ``None``."""
    if not isinstance(formula, Disjunction):
        return None
    branches: list[list[Formula]] = []
    for branch in formula.parts:
        parts = conjunctive_parts(branch)
        if parts is None:
            return None
        branches.append(parts)
    return branches


class _FastJoin:
    """Tight trail-based join over flat atom/equality part lists."""

    def __init__(
        self,
        database: Database,
        bindings: TrailBindings,
        stats: GroundingStatistics,
        node_budget: int | None,
    ) -> None:
        self.database = database
        self.bindings = bindings
        self.stats = stats
        self.node_budget = node_budget
        self.exhausted = False

    def _charge_node(self) -> bool:
        self.stats.nodes += 1
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            self.stats.exhausted_budget = True
            self.exhausted = True
            return False
        return True

    def join(self, parts: list[Formula]) -> Iterator[Substitution]:
        """Solve one conjunctive part list from the current bindings.

        Equalities are deterministic and unified up front in index order
        (exactly where the general search's part selection takes them);
        the atoms then join most-bound-first.  All bindings this call
        makes are rewound on exit.
        """
        bindings = self.bindings
        mark = bindings.trail.mark()
        try:
            atoms: list[AtomFormula] = []
            for part in parts:
                if isinstance(part, Equality):
                    if not bindings.unify(part.left, part.right):
                        self.stats.backtracks += 1
                        return
                else:
                    atoms.append(part)
            yield from self._join_atoms(atoms)
        finally:
            bindings.trail.undo_to(mark)

    def _join_atoms(self, atoms: list[AtomFormula]) -> Iterator[Substitution]:
        bindings = self.bindings
        stats = self.stats
        if self.exhausted:
            return
        if not atoms:
            yield bindings.snapshot()
            return
        walk = bindings.walk
        best_index = 0
        best_score: tuple[int, int] | None = None
        for index, part in enumerate(atoms):
            bound = sum(
                1 for term in part.atom.terms if isinstance(walk(term), Constant)
            )
            score = (bound, -index)
            if best_score is None or score > best_score:
                best_score = score
                best_index = index
        atom = atoms[best_index].atom
        rest = atoms[:best_index] + atoms[best_index + 1 :]
        stats.choice_points += 1
        if not self.database.has_table(atom.relation):
            return
        table = self.database.table(atom.relation)
        schema = table.schema
        resolved = [walk(t) for t in atom.terms]
        if len(resolved) != schema.arity:
            raise FormulaError(
                f"atom {atom!r} has arity {len(resolved)}, table "
                f"{schema.name!r} has arity {schema.arity}"
            )
        columns: list[str] = []
        values: list[Any] = []
        for position, term in enumerate(resolved):
            if isinstance(term, Constant):
                columns.append(schema.columns[position].name)
                values.append(term.value)
        rows = table.lookup(columns, values) if columns else table.scan()
        for row in rows:
            stats.rows_examined += 1
            mark = bindings.trail.mark()
            matched = True
            for term, value in zip(resolved, row.values):
                if not bindings.unify(term, Constant(value)):
                    matched = False
                    break
            if not matched:
                bindings.trail.undo_to(mark)
                continue
            if not self._charge_node():
                bindings.trail.undo_to(mark)
                return
            yield from self._join_atoms(rest)
            bindings.trail.undo_to(mark)
            if self.exhausted:
                return


def find_one_fastpath(
    search: GroundingSearch,
    formula: Formula,
    *,
    required: frozenset[Variable] | None = None,
    initial: Substitution | None = None,
    node_budget: int | None = None,
) -> GroundingResult | None:
    """Answer a find-one through a shape fast path, or ``None`` to decline.

    When the (simplified) formula matches a supported shape the result is
    a complete :class:`GroundingResult` — satisfiable or not — identical
    to what the general search would return, with the work folded into
    ``search``'s totals (plus one ``fastpath_hits``).
    """
    simplified = formula.simplify()
    if simplified is FALSE:
        return GroundingResult(Substitution.empty(), False, GroundingStatistics())
    branches = conjunctive_parts(simplified)
    if branches is not None:
        branch_lists = [branches]
    else:
        maybe = existential_branches(simplified)
        if maybe is None:
            return None
        branch_lists = maybe
    required_vars = (
        frozenset(required) if required is not None else simplified.free_variables()
    )
    stats = GroundingStatistics(fastpath_hits=1)
    bindings = TrailBindings(initial)
    joiner = _FastJoin(search.database, bindings, stats, node_budget)
    if len(branch_lists) > 1:
        # The disjunction itself is one choice point, like the general
        # search's Disjunction case (each branch descent charges a node).
        stats.choice_points += 1

    def solutions() -> Iterator[Substitution]:
        for parts in branch_lists:
            if len(branch_lists) > 1 and not joiner._charge_node():
                return
            yield from joiner.join(parts)
            if joiner.exhausted:
                return

    found: GroundingResult | None = None
    iterator = solutions()
    try:
        for snapshot in iterator:
            grounded = search._close(snapshot, required_vars)
            if grounded is None:
                continue
            found = GroundingResult(grounded, True, stats)
            break
    finally:
        iterator.close()
        stats.undo_depth = max(stats.undo_depth, bindings.trail.max_depth)
        search.absorb_statistics(stats, formula=simplified, count_search=True)
    if found is not None:
        return found
    return GroundingResult(Substitution.empty(), False, stats)
