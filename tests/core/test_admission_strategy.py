"""End-to-end tests for the redesigned admission-search API.

Pins the whole provenance path of an admission decision: the strategy
selected through ``QuantumConfig(search=AdmissionSearchConfig(...))``
drives the pure ``compute_admission`` dispatch, the probe's
``method``/``exact``/``exhausted_budget`` land on the thread-local cache
state, the typed :class:`AdmissionSearchExhausted` outcome fires on
budget exhaustion, and the wire-visible :class:`CommitResult` carries the
provenance out — including over the framed TCP protocol's codec.
"""

from __future__ import annotations

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.errors import AdmissionSearchExhausted, TransactionRejected
from repro.server.client import RemoteCommitResult
from repro.server.protocol import commit_value
from repro.solver.strategy import AdmissionSearchConfig, SamplingConfig

BOOK = "-Available(?f, ?s), +Bookings('{p}', ?f, ?s) :-1 Available(?f, ?s)"


def make_qdb(search: AdmissionSearchConfig | None = None, seats: int = 2):
    config = QuantumConfig(search=search) if search is not None else QuantumConfig()
    qdb = QuantumDatabase(config=config)
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows("Available", [("f1", f"1{chr(ord('A') + i)}") for i in range(seats)])
    return qdb


class TestMethodSurfacing:
    def test_default_config_reports_backtracking(self):
        qdb = make_qdb()
        result = qdb.execute(BOOK.format(p="Mickey"))
        assert result.committed
        assert result.method == "backtracking"
        assert result.exact is True

    def test_bnb_reports_fastpath_then_witness(self):
        qdb = make_qdb(AdmissionSearchConfig(strategy="bnb"))
        first = qdb.execute(BOOK.format(p="Mickey"))
        assert first.committed and first.method == "fastpath" and first.exact
        second = qdb.execute(BOOK.format(p="Donald"))
        assert second.committed and second.method == "witness"

    def test_rejection_reports_deciding_method(self):
        qdb = make_qdb(AdmissionSearchConfig(strategy="bnb"), seats=1)
        assert qdb.execute(BOOK.format(p="Mickey")).committed
        rejected = qdb.execute(BOOK.format(p="Donald"))
        assert not rejected.committed
        assert rejected.method == "bnb"
        assert rejected.exact is True

    def test_statistics_report_exposes_search_counters(self):
        qdb = make_qdb(AdmissionSearchConfig(strategy="bnb"))
        qdb.execute(BOOK.format(p="Mickey"))
        report = qdb.statistics_report()
        for key in (
            "search.prunes",
            "search.fastpath_hits",
            "search.samples",
            "search.undo_depth",
            "cache.sampled_admissions",
        ):
            assert key in report
        assert report["search.fastpath_hits"] >= 1


class TestSampledAdmission:
    def sampling_config(self):
        return AdmissionSearchConfig(
            strategy="bnb",
            sampling=SamplingConfig(threshold=1, samples=16, seed=7),
        )

    def test_sampled_accept_is_approximate_end_to_end(self):
        qdb = make_qdb(self.sampling_config())
        result = qdb.execute(BOOK.format(p="Mickey"))
        # probe → CommitResult
        assert result.committed
        assert result.method == "sampled"
        assert result.exact is False
        # probe → cache statistics
        assert qdb.statistics_report()["cache.sampled_admissions"] >= 1
        assert qdb.statistics_report()["search.samples"] >= 1
        # CommitResult → wire codec → remote client view
        remote = RemoteCommitResult.from_value(commit_value(result))
        assert remote.method == "sampled"
        assert remote.exact is False

    def test_sampled_accept_still_grounds(self):
        # An approximate accept carries a genuine witness: grounding the
        # transaction must succeed and book a real seat.
        qdb = make_qdb(self.sampling_config())
        result = qdb.execute(BOOK.format(p="Mickey"))
        record = qdb.check_in(result.transaction_id)
        assert record is not None
        assert len(qdb.table("Bookings").rows()) == 1

    def test_sampling_never_engages_without_opt_in(self):
        qdb = make_qdb(AdmissionSearchConfig(strategy="bnb"))
        qdb.execute(BOOK.format(p="Mickey"))
        report = qdb.statistics_report()
        assert report["search.samples"] == 0
        assert report["cache.sampled_admissions"] == 0

    def test_below_threshold_searches_exactly(self):
        config = AdmissionSearchConfig(
            strategy="bnb",
            sampling=SamplingConfig(threshold=50, samples=4, seed=0),
        )
        qdb = make_qdb(config)
        result = qdb.execute(BOOK.format(p="Mickey"))
        assert result.committed
        assert result.method != "sampled"
        assert result.exact is True


#: A body needing at least two search nodes (a join through Adjacent), so
#: a one-node budget must exhaust before deciding satisfiability.
PAIR = (
    "+Bookings('{p}', ?f, ?s) :-1 "
    "Available(?f, ?s), Adjacent(?f, ?s, ?s2), Available(?f, ?s2)"
)


def make_adjacency_qdb(search: AdmissionSearchConfig):
    qdb = make_qdb(search, seats=3)
    qdb.create_table(
        "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
    )
    qdb.load_rows("Adjacent", [("f1", "1A", "1B"), ("f1", "1B", "1C")])
    return qdb


class TestBudgetOutcome:
    def test_exhausted_budget_raises_typed_rejection(self):
        config = AdmissionSearchConfig(strategy="bnb", node_budget=1)
        qdb = make_adjacency_qdb(config)
        with pytest.raises(AdmissionSearchExhausted):
            qdb.state.admit(_parse(PAIR.format(p="Mickey")))

    def test_generous_budget_admits_the_same_transaction(self):
        config = AdmissionSearchConfig(strategy="bnb", node_budget=10_000)
        qdb = make_adjacency_qdb(config)
        result = qdb.execute(PAIR.format(p="Mickey"))
        assert result.committed and result.exact

    def test_typed_outcome_is_a_transaction_rejected(self):
        assert issubclass(AdmissionSearchExhausted, TransactionRejected)

    def test_execute_reports_rejection_not_crash(self):
        config = AdmissionSearchConfig(strategy="bnb", node_budget=1)
        qdb = make_adjacency_qdb(config)
        result = qdb.execute(PAIR.format(p="Mickey"))
        assert not result.committed
        assert "budget" in (result.rejection_reason or "")


def _parse(text: str):
    from repro.core.parser import parse_transaction

    return parse_transaction(text)
