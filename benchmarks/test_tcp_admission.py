"""Network admission — the Figure 7 workload over real TCP sockets.

Drives the closed-loop load harness (``scripts/load_client.py``) against an
in-process :class:`~repro.server.net.NetworkServer` at increasing client
counts: every simulated client is one user of the seeded entangled
workload, opening its own loopback connection and submitting one booking.
Records commit-latency percentiles (p50/p95/p99) and end-to-end throughput
per client count, and merges them into ``BENCH_admission.json`` under the
``"network"`` key — new gated points: ``scripts/bench_gate.py`` fails the
build when a shared point's decisions diverge, its throughput regresses
beyond the standard tolerance, or its p95 commit latency (normalized by
the run's anchor throughput, a machine-speed proxy) grows by more than
50%.

The full-scale sweep reaches 1000 concurrent TCP clients — the smoke
subset stays at (64, 256) to fit the ``make check`` budget; run the
harness directly for the thousand-client point::

    PYTHONPATH=src python scripts/load_client.py --clients 1000

This file is named ``test_tcp_admission`` (not ``test_network_...``) so
it sorts — and therefore runs — *after* ``test_sharded_admission``:
driving thousands of socket round trips immediately before the sharded
benchmark's timed regions measurably depresses its lane-scaling ratio
on small boxes, and pytest's collection order is the one deterministic
lever.
"""

from __future__ import annotations

import asyncio
import gc
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.report import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_admission.json"

_SPEC = importlib.util.spec_from_file_location(
    "load_client", REPO_ROOT / "scripts" / "load_client.py"
)
load_client = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("load_client", load_client)
_SPEC.loader.exec_module(load_client)


def _clients_sweep(smoke: bool) -> tuple[int, ...]:
    if BENCH_SCALE == "paper":
        return (256, 1000)
    if smoke:
        return (64, 256)
    return (256, 1000)


def _emit_network_json(sweep_results: list[dict], *, smoke: bool) -> None:
    """Merge the network section into ``BENCH_admission.json``.

    Read-modify-write: the sharded-admission benchmark owns the rest of the
    file (and preserves this section symmetrically), so the two emitters
    can run in either order within one pytest session.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    scale = "smoke" if smoke and BENCH_SCALE != "paper" else BENCH_SCALE
    payload["network"] = {
        "scale": scale,
        "results": sweep_results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.smoke
def test_network_admission(benchmark, smoke_run):
    sweep = _clients_sweep(smoke_run)
    results: list[dict] = []

    def run_sweep():
        for clients in sweep:
            results.append(
                asyncio.run(load_client.run_load(clients, seed=0))
            )
            # Each run retires thousands of client/future reference cycles;
            # collect them here so the garbage is not swept inside another
            # benchmark's timed region later in the same pytest session.
            gc.collect()

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for result in results:
        # The harness itself vouches for completeness: every simulated
        # client connected, committed, and heard the decision.
        assert result["errors"] == 0, result
        assert result["completed"] == result["transactions"] == result["clients"]
        assert result["admitted"] + result["rejected"] == result["transactions"]
        # The workload guarantees full coordination is achievable, and the
        # network path must not manufacture rejections.
        assert result["admitted"] == result["transactions"], result
        # Percentiles are well-formed (monotone, positive).
        assert 0 < result["p50_ms"] <= result["p95_ms"] <= result["p99_ms"]
        rows.append(
            [
                result["clients"],
                result["transactions"],
                result["throughput_txn_per_s"],
                result["p50_ms"],
                result["p95_ms"],
                result["p99_ms"],
            ]
        )
    report(
        "Network admission (Figure 7 workload over TCP)",
        format_table(
            ["clients", "#txns", "txn/s", "p50 ms", "p95 ms", "p99 ms"],
            rows,
        ),
    )
    _emit_network_json(
        [
            {
                key: result[key]
                for key in (
                    "clients",
                    "transactions",
                    "admitted",
                    "rejected",
                    "throughput_txn_per_s",
                    "p50_ms",
                    "p95_ms",
                    "p99_ms",
                    "workload",
                )
            }
            for result in results
        ],
        smoke=smoke_run,
    )
