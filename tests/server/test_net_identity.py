"""Network-vs-in-process decision identity.

The network layer's core claim: putting the server on a socket changes
*transport*, never *semantics*.  A seeded Figure 7 entangled workload
driven through real TCP connections must produce — replayed in the
writer's admission order through the plain synchronous API — the exact
same accept/reject decisions, the same final store state, and the same
deterministic statistics counters.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    NetClient,
    NetworkServer,
    QuantumConfig,
    QuantumDatabase,
    format_transaction,
)
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=6, rows_per_flight=4)

#: Statistics sections that must be invariant under transport.  (The
#: ``admission.``/``server.`` sections legitimately differ: group-commit
#: batch sizes depend on arrival timing, which sockets change.)
DETERMINISTIC_PREFIXES = ("state.", "cache.", "partitions.")

#: Batching counters measure *how* arrivals were grouped, not what was
#: decided — the server admits through ``commit_batch`` while the replay
#: calls ``execute`` one by one, so these two differ by construction.
TRANSPORT_SHAPED = {"state.batches", "state.batch_transactions"}


def make_qdb(k: int = 8) -> QuantumDatabase:
    return QuantumDatabase(build_flight_database(SPEC), QuantumConfig(k=k))


def record_admission_order(qdb: QuantumDatabase) -> list:
    """Wrap ``commit_batch`` so the test sees the writer's admission order."""
    admitted: list = []
    original = qdb.commit_batch

    def recording(transactions, **kwargs):
        admitted.extend(transactions)
        return original(transactions, **kwargs)

    qdb.commit_batch = recording  # type: ignore[method-assign]
    return admitted


def deterministic_stats(report: dict) -> dict:
    return {
        key: value
        for key, value in report.items()
        if key.startswith(DETERMINISTIC_PREFIXES) and key not in TRANSPORT_SHAPED
    }


async def drive_over_tcp(workload, *, connections: int, seed_note: str):
    """Run the workload through real sockets; return the evidence bundle."""
    qdb = make_qdb()
    admitted = record_admission_order(qdb)
    decisions_by_client: dict[str, bool] = {}
    async with NetworkServer(qdb) as net:
        clients = [
            await NetClient.connect("127.0.0.1", net.port, client=f"conn{i}")
            for i in range(connections)
        ]

        async def drive(client, stream):
            for transaction in stream:
                result = await client.commit(
                    format_transaction(transaction),
                    client=transaction.client,
                    partner=transaction.partner,
                )
                decisions_by_client[transaction.client] = result.committed

        streams = [
            list(workload.transactions)[i::connections]
            for i in range(connections)
        ]
        await asyncio.gather(
            *(drive(client, stream) for client, stream in zip(clients, streams))
        )
        grounded = await net.server.ground_all()
        for client in clients:
            await client.close()
    # Decisions in the exact order the single writer admitted them.
    decisions = [decisions_by_client[t.client] for t in admitted]
    snapshot = qdb.database.snapshot()
    stats = deterministic_stats(qdb.statistics_report())
    qdb.close()
    assert len(admitted) == len(workload.transactions), seed_note
    return admitted, decisions, len(grounded), snapshot, stats


def replay_in_process(admitted):
    """Feed the recorded admission order through the synchronous API."""
    qdb = make_qdb()
    decisions = []
    for transaction in admitted:
        result = qdb.execute(
            format_transaction(transaction),
            client=transaction.client,
            partner=transaction.partner,
        )
        decisions.append(result.committed)
    grounded = qdb.ground_all()
    snapshot = qdb.database.snapshot()
    stats = deterministic_stats(qdb.statistics_report())
    qdb.close()
    return decisions, len(grounded), snapshot, stats


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("connections", [1, 8])
def test_tcp_decisions_identical_to_in_process_replay(seed, connections):
    workload = generate_workload(SPEC, ArrivalOrder.RANDOM, seed=seed)

    async def main():
        return await drive_over_tcp(
            workload,
            connections=connections,
            seed_note=f"seed={seed} connections={connections}",
        )

    admitted, net_decisions, net_grounded, net_snapshot, net_stats = (
        asyncio.run(asyncio.wait_for(main(), timeout=120))
    )
    sync_decisions, sync_grounded, sync_snapshot, sync_stats = (
        replay_in_process(admitted)
    )
    # Bit-identical decisions in admission order ...
    assert net_decisions == sync_decisions
    # ... the same grounding outcome ...
    assert net_grounded == sync_grounded
    # ... the same final extensional store, row for row ...
    assert net_snapshot == sync_snapshot
    # ... and the same deterministic statistics counters.
    assert net_stats == sync_stats
    # The comparison is not vacuous: the workload really ran, bookings
    # really landed, and entangled pairs really coordinated.
    assert any(net_decisions)
    assert net_snapshot["Bookings"], "no booking reached the store"
    assert net_stats.get("state.admitted", 0) > 0


def test_wire_marshalling_round_trips_entanglement():
    """``format_transaction`` + client/partner kwargs (what the TCP client
    sends) reconstruct a transaction the entanglement registry treats
    exactly like the original object."""
    from repro.core.parser import parse_transaction

    workload = generate_workload(SPEC, ArrivalOrder.IN_ORDER, seed=0)
    for transaction in workload.transactions:
        rebuilt = parse_transaction(
            format_transaction(transaction),
            client=transaction.client,
            partner=transaction.partner,
        )
        assert rebuilt.client == transaction.client
        assert rebuilt.partner == transaction.partner
        assert format_transaction(rebuilt) == format_transaction(transaction)
