"""Terms: variables and constants.

The Datalog-like notation of the paper writes transactions such as::

    -A(f1, s1), +B(M, f1, s1) :-1  A(f1, s1), B(G, f1, s2), Adj(s1, s2)

``f1``, ``s1``, ``s2`` are :class:`Variable` terms; ``M`` and ``G`` (once
resolved to ``'Mickey'`` / ``'Goofy'``) are :class:`Constant` terms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Union

from repro.errors import LogicError

#: Monotone counter backing :func:`fresh_variable`.
_fresh_counter = itertools.count(1)


@dataclass(frozen=True)
class Variable:
    """A named logical variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise LogicError("variable name must be non-empty")

    def __repr__(self) -> str:
        return self.name

    def rename(self, suffix: str) -> "Variable":
        """Return a variable with ``suffix`` appended to the name."""
        return Variable(f"{self.name}{suffix}")


@dataclass(frozen=True)
class Constant:
    """A constant data value (int, float, str, bool or None)."""

    value: Any

    def __post_init__(self) -> None:
        if isinstance(self.value, (Variable, Constant)):
            raise LogicError("constants must wrap plain data values")

    def __repr__(self) -> str:
        return repr(self.value)


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


def fresh_variable(prefix: str = "v") -> Variable:
    """Return a variable guaranteed not to clash with user-written names.

    Fresh variables carry a ``#`` in their name, which the transaction
    parsers never produce, so collisions with parsed transactions are
    impossible.
    """
    return Variable(f"{prefix}#{next(_fresh_counter)}")


def as_term(value: Any) -> Term:
    """Coerce a plain Python value (or an existing term) into a term."""
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def is_ground(term: Term) -> bool:
    """True if the term is a constant."""
    return isinstance(term, Constant)
