"""Unit tests for the sharded partition manager.

Ownership must stay disjoint, routing must follow the signature index,
cross-shard merges must reassign ownership (serialized path), and the
shared pending table must track every structural change.
"""

from __future__ import annotations

import pytest

from repro import QuantumConfig, QuantumDatabase
from repro.errors import QuantumError
from repro.sharding import ShardedPartitionManager

FLIGHTS = range(1, 7)


def make_qdb(shards, *, k=8, seats=4):
    qdb = QuantumDatabase(config=QuantumConfig(k=k, shards=shards))
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available", [(f, f"s{i}") for f in FLIGHTS for i in range(seats)]
    )
    return qdb


def pinned(user, flight):
    return (
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def broad(user):
    return "-Available(?f, ?s), +Bookings('%s', ?f, ?s) :-1 Available(?f, ?s)" % user


class TestConfig:
    def test_default_is_unsharded(self):
        qdb = QuantumDatabase()
        assert not qdb.sharded
        assert not isinstance(qdb.state.partitions, ShardedPartitionManager)

    def test_sharded_config_builds_sharded_manager(self):
        qdb = make_qdb(3)
        assert qdb.sharded
        manager = qdb.state.partitions
        assert isinstance(manager, ShardedPartitionManager)
        assert manager.shard_count == 3
        qdb.close()

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(QuantumError):
            QuantumConfig(shards=0)
        with pytest.raises(QuantumError):
            QuantumConfig(shard_workers=0)
        with pytest.raises(QuantumError):
            ShardedPartitionManager(0)


class TestOwnership:
    def test_partitions_disjoint_across_shards(self):
        qdb = make_qdb(3)
        for flight in FLIGHTS:
            qdb.execute(pinned(f"u{flight}", flight))
        manager = qdb.state.partitions
        owned = [pid for shard in manager.shards for pid in shard.partitions]
        assert len(owned) == len(set(owned)) == len(manager.partitions)
        for partition in manager.partitions:
            shard = manager.shard_for(partition.partition_id)
            assert shard is not None and shard.owns(partition.partition_id)
        # Least-loaded assignment spreads six flights over three shards.
        assert all(len(shard) == 2 for shard in manager.shards)
        qdb.close()

    def test_routing_targets_owning_shard(self):
        qdb = make_qdb(2)
        qdb.execute(pinned("alice", 1))
        qdb.execute(pinned("bob", 2))
        manager = qdb.state.partitions
        for flight, user in ((1, "carol"), (2, "dave")):
            atoms = qdb.state.partitions.partitions[flight - 1].atoms()
            shard, candidates = manager.route(atoms)
            assert shard is manager.shard_for(
                manager.partitions[flight - 1].partition_id
            )
            assert candidates == {manager.partitions[flight - 1].partition_id}
        qdb.close()

    def test_drop_if_empty_releases_everything(self):
        qdb = make_qdb(2)
        result = qdb.execute(pinned("alice", 1))
        manager = qdb.state.partitions
        partition = manager.partitions[0]
        pid = partition.partition_id
        qdb.check_in(result.transaction_id)
        assert partition not in manager.partitions
        assert manager.shard_for(pid) is None
        assert pid not in manager.index
        assert manager.pending_table.total() == 0
        qdb.close()


class TestCrossShardMerge:
    def test_broad_arrival_merges_across_shards(self):
        qdb = make_qdb(2)
        qdb.execute(pinned("alice", 1))
        qdb.execute(pinned("bob", 2))
        manager = qdb.state.partitions
        before = {p.partition_id for p in manager.partitions}
        assert len(before) == 2
        owners = {
            manager.shard_for(pid).shard_id for pid in before
        }
        assert len(owners) == 2  # one partition per shard
        # A wildcard booking unifies with both partitions: cross-shard merge.
        qdb.execute(broad("carol"))
        assert len(manager.partitions) == 1
        merged = manager.partitions[0]
        assert len(merged) == 3
        assert manager.statistics.merges == 1
        assert manager.statistics.cross_shard_merges == 1
        # The surviving partition has exactly one owner; the absorbed
        # partition was disowned everywhere.
        owned = [pid for shard in manager.shards for pid in shard.partitions]
        assert owned == [merged.partition_id]
        assert manager.pending_table.total() == 3
        rows = manager.pending_table.rows()
        assert {ref.partition_id for ref in rows.values()} == {
            merged.partition_id
        }
        qdb.close()

    def test_same_shard_merge_not_counted_cross_shard(self):
        # A single-shard sharded manager: merges happen, but never across
        # shards.  (``QuantumConfig(shards=1)`` deliberately keeps the plain
        # manager, so inject the sharded one directly.)
        qdb = make_qdb(2)
        qdb.state.partitions = ShardedPartitionManager(1)
        qdb.execute(pinned("alice", 1))
        qdb.execute(pinned("bob", 2))
        qdb.execute(broad("carol"))
        manager = qdb.state.partitions
        assert manager.statistics.merges == 1
        assert manager.statistics.cross_shard_merges == 0
        qdb.close()


class TestPendingTable:
    def test_tracks_admissions_and_groundings(self):
        qdb = make_qdb(2)
        results = [qdb.execute(pinned(f"u{f}", f)) for f in (1, 2, 3)]
        manager = qdb.state.partitions
        table = manager.pending_table
        assert table.total() == 3 == qdb.pending_count
        ref = table.get(results[0].transaction_id)
        assert ref is not None
        assert ref.sequence == 1
        assert manager.shard_for(ref.partition_id).shard_id == ref.shard_id
        by_shard = table.by_shard()
        assert sum(by_shard.values()) == 3
        qdb.check_in(results[1].transaction_id)
        assert table.total() == 2
        assert table.get(results[1].transaction_id) is None
        qdb.close()

    def test_find_uses_table(self):
        qdb = make_qdb(2)
        result = qdb.execute(pinned("alice", 1))
        manager = qdb.state.partitions
        located = manager.find(result.transaction_id)
        assert located is not None
        partition, entry = located
        assert entry.transaction_id == result.transaction_id
        assert manager.find(99_999_999) is None
        qdb.close()


class TestShardPlanFanout:
    def test_ground_all_plans_on_shard_executors(self):
        qdb = make_qdb(3)
        for flight in FLIGHTS:
            qdb.execute(pinned(f"u{flight}", flight))
        manager = qdb.state.partitions
        assert not any(shard.started for shard in manager.shards)
        grounded = qdb.ground_all()
        assert len(grounded) == len(FLIGHTS)
        assert any(shard.started for shard in manager.shards)
        qdb.close()
        assert not any(shard.started for shard in manager.shards)

    def test_close_is_idempotent(self):
        qdb = make_qdb(2)
        qdb.close()
        qdb.close()


class TestStatisticsReport:
    def test_report_exposes_routing_section(self):
        qdb = make_qdb(2)
        qdb.execute(pinned("alice", 1))
        report = qdb.statistics_report()
        assert report["routing.shards"] == 2
        assert report["routing.probes"] >= 1
        assert "partitions.index_filtered" in report
        assert "partitions.cross_shard_merges" in report
        qdb.close()
