"""Term, atom, unification and formula layer.

This subpackage implements the logical machinery of Section 3 of the paper:

* :mod:`.terms` — variables and constants;
* :mod:`.atoms` — relational atoms with polarity (insert/delete/plain) and
  the OPTIONAL flag;
* :mod:`.substitution` — substitutions, application, composition;
* :mod:`.unification` — most general unifiers (Definition 3.2) and
  unification predicates (Definition 3.3);
* :mod:`.formula` — the formula AST used for composed transaction bodies
  (conjunction, disjunction, negation, equality), with evaluation under a
  valuation, simplification and free-variable computation.
"""

from repro.logic.atoms import Atom, AtomKind
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Formula,
    Negation,
    TRUE,
    conjunction,
    disjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Term, Variable, fresh_variable
from repro.logic.unification import most_general_unifier, unification_predicate

__all__ = [
    "Atom",
    "AtomFormula",
    "AtomKind",
    "Conjunction",
    "Constant",
    "Disjunction",
    "Equality",
    "FALSE",
    "Formula",
    "Negation",
    "Substitution",
    "TRUE",
    "Term",
    "Variable",
    "conjunction",
    "disjunction",
    "fresh_variable",
    "most_general_unifier",
    "unification_predicate",
]
