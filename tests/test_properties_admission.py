"""Property-based tests for the incremental admission fast path.

A deterministic, seeded workload generator produces mixed streams of
resource transactions (flexible, flight-pinned and seat-pinned bookings),
blind writes (inserts and deletes on ``Available``), collapsing reads and
explicit check-ins.  Two properties are asserted over many seeds:

* **consistency** — after admitting a stream and grounding everything,
  the extensional database is consistent: every committed booking holds
  exactly one seat, no booked seat is still available, physical capacity
  is respected, and the pending-transactions table is empty;
* **fast path ≡ slow path** — the witness cache is a pure fast path: with
  it enabled and disabled the same stream produces identical accept/reject
  decisions (for transactions *and* blind writes) and an identical final
  extensional state.

The generator uses ``random.Random(seed)`` only — no global RNG state — so
every failure reproduces from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.errors import ReproError
from repro.relational.database import Database

FLIGHTS = (1, 2)


@dataclass(frozen=True)
class Op:
    """One step of a generated workload stream."""

    kind: str  # "book" | "insert" | "delete" | "read" | "check_in"
    client: str | None = None
    flight: Any = None
    seat: Any = None
    #: For "check_in": index (into the stream so far) of the booking to fix.
    target: int | None = None


def generate_stream(seed: int, *, length: int = 18) -> tuple[int, list[Op]]:
    """A deterministic mixed stream; returns ``(seats_per_flight, ops)``."""
    rng = random.Random(seed)
    seats_per_flight = rng.randint(2, 4)
    seats = [f"S{i}" for i in range(seats_per_flight)]
    ops: list[Op] = []
    bookings = 0
    for index in range(length):
        roll = rng.random()
        if roll < 0.55:
            client = f"u{bookings}"
            bookings += 1
            mode = rng.random()
            if mode < 0.4:  # any seat on any flight
                ops.append(Op("book", client=client))
            elif mode < 0.8:  # any seat on a specific flight
                ops.append(Op("book", client=client, flight=rng.choice(FLIGHTS)))
            else:  # a specific seat
                ops.append(
                    Op(
                        "book",
                        client=client,
                        flight=rng.choice(FLIGHTS),
                        seat=rng.choice(seats),
                    )
                )
        elif roll < 0.7:
            ops.append(
                Op("delete", flight=rng.choice(FLIGHTS), seat=rng.choice(seats))
            )
        elif roll < 0.8:
            # Always a brand-new seat: re-inserting an existing label could
            # re-open a seat that is already booked, which no consistent
            # seat-map workload would do (and which the key constraint on
            # Bookings would later reject).
            ops.append(Op("insert", flight=rng.choice(FLIGHTS), seat=f"X{index}"))
        elif roll < 0.9:
            ops.append(Op("read", flight=rng.choice(FLIGHTS)))
        else:
            ops.append(Op("check_in", target=rng.randrange(max(bookings, 1))))
    return seats_per_flight, ops


def seat_database(seats_per_flight: int) -> Database:
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    for flight in FLIGHTS:
        for index in range(seats_per_flight):
            database.insert("Available", (flight, f"S{index}"))
    return database


def booking_text(op: Op) -> str:
    flight = op.flight if op.flight is not None else "?f"
    seat = f"'{op.seat}'" if op.seat is not None else "?s"
    return (
        f"-Available({flight}, {seat}), "
        f"+Bookings('{op.client}', {flight}, {seat}) "
        f":-1 Available({flight}, {seat})"
    )


def run_stream(
    seed: int, *, witness: bool
) -> tuple[list[tuple[str, str]], QuantumDatabase, list[str]]:
    """Drive one stream; returns (decisions, qdb, committed clients)."""
    seats_per_flight, ops = generate_stream(seed)
    qdb = QuantumDatabase(
        seat_database(seats_per_flight), QuantumConfig(witness_cache=witness)
    )
    decisions: list[tuple[str, str]] = []
    committed: list[str] = []
    booking_ids: list[int] = []
    for op in ops:
        if op.kind == "book":
            result = qdb.execute(booking_text(op))
            if result.committed:
                committed.append(op.client)
                booking_ids.append(result.transaction_id)
            decisions.append(("book", "commit" if result.committed else "reject"))
        elif op.kind in ("insert", "delete"):
            try:
                if op.kind == "insert":
                    qdb.insert("Available", (op.flight, op.seat))
                else:
                    qdb.delete("Available", (op.flight, op.seat))
                decisions.append((op.kind, "ok"))
            except ReproError as exc:
                decisions.append((op.kind, type(exc).__name__))
        elif op.kind == "read":
            rows = qdb.read("Bookings", [None, op.flight, None])
            decisions.append(("read", str(len(rows))))
        else:  # check_in
            if booking_ids:
                target = booking_ids[op.target % len(booking_ids)]
                record = qdb.check_in(target)
                decisions.append(
                    ("check_in", "none" if record is None else "grounded")
                )
            else:
                decisions.append(("check_in", "skipped"))
    return decisions, qdb, committed


def snapshot(qdb: QuantumDatabase) -> dict[str, set]:
    return {
        "Available": set(qdb.table("Available").snapshot()),
        "Bookings": set(qdb.table("Bookings").snapshot()),
    }


SEEDS = range(25)


class TestAdmissionConsistency:
    """Property (a): admit-then-ground-all yields a consistent store."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ground_all_consistent(self, seed):
        decisions, qdb, committed = run_stream(seed, witness=True)
        qdb.ground_all()
        assert qdb.pending_count == 0
        assert len(qdb.pending_store) == 0

        bookings = qdb.table("Bookings").snapshot()
        available = set(qdb.table("Available").snapshot())
        # Every committed transaction got exactly the one seat it was
        # guaranteed at commit time.
        booked_clients = [passenger for passenger, _f, _s in bookings]
        assert sorted(booked_clients) == sorted(committed)
        assert len(booked_clients) == len(set(booked_clients))
        # A booked seat is no longer available (the delete executed).
        for _passenger, flight, seat in bookings:
            assert (flight, seat) not in available
        # The per-key uniqueness of (flight, seat) is enforced physically.
        seats = [(flight, seat) for _p, flight, seat in bookings]
        assert len(seats) == len(set(seats))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_committed_guarantees_survive_writes(self, seed):
        """No accepted write may strand a committed transaction."""
        _decisions, qdb, committed = run_stream(seed, witness=True)
        records = qdb.ground_all()
        for record in records:
            # Every executed statement really landed (a fully pinned
            # transaction has an empty valuation, so check effects instead).
            if record.transaction.variables():
                assert record.valuation, record
        booked = {p for p, _f, _s in qdb.table("Bookings").snapshot()}
        assert set(committed) <= booked


class TestFastPathEquivalence:
    """Property (b): the witness cache never changes any decision."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_decisions_and_state(self, seed):
        fast_decisions, fast_qdb, fast_committed = run_stream(seed, witness=True)
        slow_decisions, slow_qdb, slow_committed = run_stream(seed, witness=False)
        assert fast_decisions == slow_decisions
        assert fast_committed == slow_committed
        fast_qdb.ground_all()
        slow_qdb.ground_all()
        assert snapshot(fast_qdb) == snapshot(slow_qdb)
        # The fast path must actually be consulted (the equivalence would be
        # vacuous otherwise).  Hits only count *successful* extensions, so a
        # stream of mutually conflicting requests can legitimately have none.
        stats = fast_qdb.cache_statistics
        if len(fast_committed) > 2:
            assert stats.witness_hits + stats.witness_misses > 0
        assert slow_qdb.cache_statistics.witness_hits == 0
        assert (
            stats.composed_body_passes()
            <= slow_qdb.cache_statistics.composed_body_passes()
        )
