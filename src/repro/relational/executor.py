"""Pipelined execution of conjunctive queries.

The executor walks the planner's atom order with an index-nested-loop
strategy: each positive atom contributes candidate rows (via the best
available index given the variables bound so far), extends the variable
binding, and negated atoms reject bindings for which a matching row exists.
Results stream out until the ``LIMIT`` is hit, which is what makes the
``LIMIT 1`` satisfiability probes of the quantum database cheap in the
common, under-constrained case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.relational.planner import Planner, QueryPlan
from repro.relational.query import ConjunctiveQuery, QueryAtom, QueryResult, Var
from repro.relational.row import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.relational.database import Database


class Executor:
    """Evaluates conjunctive queries against a database."""

    def __init__(self, planner: Planner | None = None) -> None:
        self.planner = planner or Planner()

    # -- public API ---------------------------------------------------------

    def execute(self, database: "Database", query: ConjunctiveQuery) -> QueryResult:
        """Evaluate ``query`` and return a :class:`QueryResult`."""
        plan = self.planner.plan(database, query)
        result = QueryResult(plans_considered=plan.plans_considered)
        select = (
            list(query.select)
            if query.select is not None
            else sorted(query.variable_names())
        )
        counter = _RowCounter()
        for binding in self._enumerate(database, plan, query, counter):
            result.bindings.append({name: binding[name] for name in select})
            if query.limit is not None and len(result.bindings) >= query.limit:
                break
        result.rows_examined = counter.count
        return result

    def exists(self, database: "Database", query: ConjunctiveQuery) -> bool:
        """True if the query has at least one answer (a LIMIT 1 probe)."""
        probe = ConjunctiveQuery(
            atoms=list(query.atoms),
            condition=query.condition,
            select=[],
            limit=1,
        )
        return bool(self.execute(database, probe))

    # -- evaluation ---------------------------------------------------------

    def _enumerate(
        self,
        database: "Database",
        plan: QueryPlan,
        query: ConjunctiveQuery,
        counter: "_RowCounter",
    ) -> Iterator[dict[str, Any]]:
        """Yield complete variable bindings satisfying the plan."""
        condition = query.condition

        def check_condition(binding: dict[str, Any]) -> bool:
            if condition is None:
                return True
            if not condition.references() <= binding.keys():
                # Not all referenced variables bound yet; defer the check.
                return True
            return condition.evaluate(binding)

        def recurse(step: int, binding: dict[str, Any]) -> Iterator[dict[str, Any]]:
            if step == len(plan.order):
                if condition is None or condition.evaluate(binding):
                    yield dict(binding)
                return
            atom = plan.order[step]
            if atom.negated:
                if self._matches_exist(database, atom, binding, counter):
                    return
                yield from recurse(step + 1, binding)
                return
            for extended in self._extend(database, atom, binding, counter):
                if check_condition(extended):
                    yield from recurse(step + 1, extended)

        yield from recurse(0, {})

    def _candidate_rows(
        self,
        database: "Database",
        atom: QueryAtom,
        binding: Mapping[str, Any],
        counter: "_RowCounter",
    ) -> Iterator[Row]:
        """Rows of ``atom``'s table compatible with the bound positions."""
        table = database.table(atom.table)
        schema = table.schema
        columns: list[str] = []
        values: list[Any] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Var):
                if term.name in binding:
                    columns.append(schema.columns[position].name)
                    values.append(binding[term.name])
            else:
                columns.append(schema.columns[position].name)
                values.append(term)
        rows = table.lookup(columns, values) if columns else table.scan()
        for row in rows:
            counter.count += 1
            yield row

    def _extend(
        self,
        database: "Database",
        atom: QueryAtom,
        binding: Mapping[str, Any],
        counter: "_RowCounter",
    ) -> Iterator[dict[str, Any]]:
        """Yield extensions of ``binding`` with rows matching ``atom``."""
        for row in self._candidate_rows(database, atom, binding, counter):
            extended = self._unify_row(atom, row, binding)
            if extended is not None:
                yield extended

    def _matches_exist(
        self,
        database: "Database",
        atom: QueryAtom,
        binding: Mapping[str, Any],
        counter: "_RowCounter",
    ) -> bool:
        """True if any row matches ``atom`` under ``binding`` (anti-join)."""
        for row in self._candidate_rows(database, atom, binding, counter):
            if self._unify_row(atom, row, binding) is not None:
                return True
        return False

    @staticmethod
    def _unify_row(
        atom: QueryAtom, row: Row, binding: Mapping[str, Any]
    ) -> dict[str, Any] | None:
        """Match ``row`` against ``atom`` and return the extended binding."""
        extended = dict(binding)
        for term, value in zip(atom.terms, row.values):
            if isinstance(term, Var):
                if term.name in extended:
                    if extended[term.name] != value:
                        return None
                else:
                    extended[term.name] = value
            elif term != value:
                return None
        return extended


class _RowCounter:
    """Mutable counter shared by the recursive evaluation helpers."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0
