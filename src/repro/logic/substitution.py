"""Substitutions: mappings from variables to terms.

"Given a set of relational atoms containing variables and a database D, a
substitution is a mapping from variables to variables or data values from D"
(paper, Section 3.2.1).  We additionally support composition (needed by the
most-general-unifier definition) and application to atoms and formulas.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SubstitutionError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Term, Variable, as_term


class Substitution:
    """An immutable mapping from :class:`Variable` to :class:`Term`.

    Substitutions are *idempotent* in the usual unification sense: applying
    a substitution repeatedly reaches a fixpoint because bindings are chased
    at application time.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term | Any] | None = None) -> None:
        normalized: dict[Variable, Term] = {}
        for var, value in (mapping or {}).items():
            if not isinstance(var, Variable):
                raise SubstitutionError(f"substitution key {var!r} is not a Variable")
            term = as_term(value)
            if term == var:
                continue
            normalized[var] = term
        self._mapping = normalized

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "Substitution":
        """The identity substitution."""
        return cls()

    @classmethod
    def from_valuation(cls, valuation: Mapping[str, Any]) -> "Substitution":
        """Build a ground substitution from a variable-name → value mapping."""
        return cls({Variable(name): Constant(value) for name, value in valuation.items()})

    # -- mapping protocol ---------------------------------------------------

    def __contains__(self, var: Variable) -> bool:
        return var in self._mapping

    def __getitem__(self, var: Variable) -> Term:
        return self._mapping[var]

    def get(self, var: Variable, default: Term | None = None) -> Term | None:
        """Return the binding of ``var`` or ``default``."""
        return self._mapping.get(var, default)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def items(self) -> Iterable[tuple[Variable, Term]]:
        """(variable, term) pairs of the substitution."""
        return self._mapping.items()

    def domain(self) -> frozenset[Variable]:
        """Variables bound by the substitution."""
        return frozenset(self._mapping)

    def is_ground(self) -> bool:
        """True if every binding maps to a constant."""
        return all(isinstance(t, Constant) for t in self._mapping.values())

    def as_valuation(self) -> dict[str, Any]:
        """Return the substitution as a variable-name → value dict.

        Raises:
            SubstitutionError: if any binding is to a variable rather than a
                constant (i.e. the substitution is not ground).
        """
        valuation: dict[str, Any] = {}
        for var, term in self._mapping.items():
            if not isinstance(term, Constant):
                raise SubstitutionError(
                    f"binding {var!r} -> {term!r} is not ground"
                )
            valuation[var.name] = term.value
        return valuation

    # -- application --------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a single term, chasing variable chains."""
        seen: set[Variable] = set()
        current = term
        while isinstance(current, Variable) and current in self._mapping:
            if current in seen:
                raise SubstitutionError(f"cyclic substitution through {current!r}")
            seen.add(current)
            current = self._mapping[current]
        return current

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every term of ``atom``."""
        return Atom(
            atom.relation,
            tuple(self.apply_term(t) for t in atom.terms),
            atom.kind,
            atom.optional,
        )

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Apply the substitution to a collection of atoms."""
        return tuple(self.apply_atom(a) for a in atoms)

    def __call__(self, target: Term | Atom) -> Term | Atom:
        """Convenience: ``theta(x)`` applies to a term or atom."""
        if isinstance(target, Atom):
            return self.apply_atom(target)
        return self.apply_term(target)

    # -- combination --------------------------------------------------------

    def bind(self, var: Variable, value: Term | Any) -> "Substitution":
        """Return a new substitution with ``var`` additionally bound.

        Raises:
            SubstitutionError: if ``var`` is already bound to a conflicting
                term.
        """
        term = as_term(value)
        existing = self._mapping.get(var)
        if existing is not None and existing != term:
            raise SubstitutionError(
                f"variable {var!r} already bound to {existing!r}, cannot rebind "
                f"to {term!r}"
            )
        mapping = dict(self._mapping)
        mapping[var] = term
        return Substitution(mapping)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``other ∘ self``: apply ``self`` first, then ``other``.

        This is the composition used in Definition 3.2's "for each unifier ν
        there exists ν' with ν = ν' ∘ θ".
        """
        mapping: dict[Variable, Term] = {}
        for var, term in self._mapping.items():
            mapping[var] = other.apply_term(term)
        for var, term in other._mapping.items():
            mapping.setdefault(var, term)
        return Substitution(mapping)

    def merge(self, other: "Substitution") -> "Substitution":
        """Union of two substitutions that must agree on shared variables.

        Raises:
            SubstitutionError: if the two bind a shared variable differently.
        """
        merged = self
        for var, term in other.items():
            merged = merged.bind(var, term)
        return merged

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Restrict the domain to ``variables``."""
        keep = set(variables)
        return Substitution(
            {var: term for var, term in self._mapping.items() if var in keep}
        )

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}/{t!r}" for v, t in sorted(
            self._mapping.items(), key=lambda item: item[0].name
        ))
        return f"{{{inner}}}"
