"""Group-fsync commit windows (``DurabilityConfig.fsync_window_s``).

The window defers the per-commit ``os.fsync`` into one timed group sync:
commits append and flush immediately but block — outside the writer lock
— until the covering sync lands, so acknowledgement still implies stable
storage while concurrent commits share one fsync.  ``fsync_window_s=0``
keeps per-commit syncs byte-for-byte.  Also covers the fsync-on-close
regression (a ``SegmentWriter`` built with ``fsync=True`` must sync its
final records at close, not just flush them).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.errors import DurabilityError
from repro.relational.database import Database
from repro.relational.wal import LogRecordType
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover
from repro.storage.segment import SegmentWriter


def make_schema() -> Database:
    database = Database()
    database.create_table("Seats", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Notes", ["id", "note"], key=["id"])
    return database


def make_engine(tmp_path, **overrides) -> tuple[Database, SegmentedWriteAheadLog]:
    directory = str(tmp_path / "segments")
    config = DurabilityConfig(
        mode="segmented",
        directory=directory,
        **{"segment_max_records": 10_000, "fsync": True, **overrides},
    )
    database = make_schema()
    engine = SegmentedWriteAheadLog(directory, config)
    engine.adopt(database.wal)
    database.wal = engine
    return database, engine


class TestWindowConfig:
    def test_negative_window_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync_window_s"):
            DurabilityConfig(
                mode="segmented",
                directory=str(tmp_path),
                fsync=True,
                fsync_window_s=-0.1,
            )

    def test_window_requires_fsync(self, tmp_path):
        with pytest.raises(DurabilityError, match="enable fsync"):
            DurabilityConfig(
                mode="segmented", directory=str(tmp_path), fsync_window_s=0.01
            )

    def test_window_is_segmented_only(self):
        with pytest.raises(DurabilityError, match="segmented"):
            DurabilityConfig(mode="legacy", fsync=True, fsync_window_s=0.01)

    def test_incremental_bases_is_segmented_only(self):
        with pytest.raises(DurabilityError, match="segmented"):
            DurabilityConfig(mode="legacy", incremental_bases=True)


class TestSegmentWriterClose:
    """Regression: close() used to flush without ever fsyncing."""

    @pytest.fixture
    def fsync_spy(self, monkeypatch):
        calls: list[int] = []
        real_fsync = os.fsync

        def spying_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        return calls

    def test_close_syncs_final_records_when_fsync_set(self, tmp_path, fsync_spy):
        writer = SegmentWriter(tmp_path / "seg.walseg", fsync=True)
        writer.append(b"written after the last flush")
        fsync_spy.clear()
        writer.close()
        assert fsync_spy, "close() must fsync the final records"
        assert writer.synced_size == writer.size

    def test_close_without_fsync_never_syncs(self, tmp_path, fsync_spy):
        writer = SegmentWriter(tmp_path / "seg.walseg", fsync=False)
        writer.append(b"page-cache durability only")
        fsync_spy.clear()
        writer.close()
        assert not fsync_spy

    def test_flush_advances_the_synced_watermark(self, tmp_path):
        writer = SegmentWriter(tmp_path / "seg.walseg", fsync=True)
        writer.append(b"record")
        assert writer.synced_size < writer.size
        writer.flush()
        assert writer.synced_size == writer.size
        writer.close()


class TestPerCommitParity:
    def test_window_zero_keeps_per_commit_syncs(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=0.0)
        assert engine._sync_window is None  # no window machinery at all
        before = engine.statistics.fsyncs
        for i in range(5):
            database.insert("Seats", (i, "s"))
        assert engine.statistics.fsyncs == before + 5
        assert engine.statistics.sync_windows == 0
        engine.close()

    def test_sync_scope_is_a_noop_without_a_window(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=0.0)
        with engine.sync_scope():
            database.insert("Seats", (1, "a"))
        assert engine.statistics.sync_windows == 0
        engine.close()


class TestWindowedCommits:
    def test_commit_returns_only_after_covering_sync(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=0.02)
        database.insert("Seats", (1, "a"))
        # The append(COMMIT) return path waited for the window sync: the
        # whole tail is under the synced watermark the moment control is
        # back.
        assert engine._tail.synced_size == engine._tail.size
        assert engine.statistics.sync_windows >= 1
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot()["Seats"] == [(1, "a")]
        recovered.wal.close()

    def test_concurrent_commits_share_windows(self, tmp_path):
        _database, engine = make_engine(tmp_path, fsync_window_s=0.02)
        threads, commits_each = 4, 5

        def committer(base: int) -> None:
            for i in range(commits_each):
                txn = base + i
                engine.append(LogRecordType.BEGIN, txn)
                engine.append(LogRecordType.INSERT, txn, "Seats", (txn, "w"))
                engine.append(LogRecordType.COMMIT, txn)

        workers = [
            threading.Thread(target=committer, args=(1000 * (t + 1),))
            for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        commits = threads * commits_each
        # Concurrent committers stack into shared windows: well under one
        # fsync per commit (per-commit mode would issue exactly 20).
        assert engine.statistics.fsyncs < commits
        assert engine.statistics.sync_windows >= 1
        assert engine._tail.synced_size == engine._tail.size
        engine.close()

    def test_sync_scope_batches_a_drained_run(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=0.05)
        before = engine.statistics.fsyncs
        with engine.sync_scope():
            for i in range(6):
                database.insert("Seats", (i, "s"))
        # One wait at scope exit covered the whole run; without the scope
        # each commit would have paid its own window (6 waits, up to 6
        # syncs).  Timer jitter can split the run across two windows.
        assert engine.statistics.fsyncs - before <= 2
        assert engine._tail.synced_size == engine._tail.size
        engine.close()

    def test_explicit_flush_is_an_immediate_durability_point(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=30.0)
        released = threading.Event()

        def slow_commit():
            database.insert("Seats", (7, "slow"))
            released.set()

        worker = threading.Thread(target=slow_commit, daemon=True)
        worker.start()
        deadline = time.monotonic() + 5.0
        while not engine._sync_window.pending():
            assert time.monotonic() < deadline, "commit never flushed"
            time.sleep(0.001)
        engine.flush()  # must not wait the 30s window out
        assert released.wait(timeout=5.0)
        worker.join(timeout=5.0)
        assert engine._tail.synced_size == engine._tail.size
        engine.close()

    def test_seal_syncs_eagerly_and_releases_waiters(self, tmp_path):
        _database, engine = make_engine(
            tmp_path, fsync_window_s=30.0, segment_max_records=4
        )
        engine.append(LogRecordType.BEGIN, 1)
        engine.append(LogRecordType.INSERT, 1, "Seats", (1, "a"))
        released = threading.Event()

        def committer():
            engine.append(LogRecordType.COMMIT, 1)  # record 3: blocks in window
            released.set()

        worker = threading.Thread(target=committer, daemon=True)
        worker.start()
        deadline = time.monotonic() + 5.0
        while not engine._sync_window.pending():
            assert time.monotonic() < deadline, "commit never flushed"
            time.sleep(0.001)
        # Record 4 fills the tail: the seal syncs the outgoing segment and
        # completes the pending tickets, so the blocked committer never
        # waits the 30s window out.
        engine.append(LogRecordType.BEGIN, 2)
        assert released.wait(timeout=10.0)
        worker.join(timeout=5.0)
        assert engine.statistics.segments_sealed >= 1
        engine.close()

    def test_close_covers_commits_still_in_their_window(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync_window_s=30.0)
        with engine.sync_scope():
            database.insert("Seats", (3, "c"))
            # Leave the scope through close(): the final sync covers the
            # ticket, so the deferred wait returns instantly.
            engine.close()
        recovered = recover(
            tmp_path / "segments",
            make_schema,
            DurabilityConfig(
                mode="segmented", directory=str(tmp_path / "segments")
            ),
        )
        assert recovered.snapshot()["Seats"] == [(3, "c")]
        recovered.wal.close()


class TestClosedEngineGuards:
    """append/checkpoint/checkpoint_delta on a closed engine raise typed errors."""

    def test_append_on_closed_engine(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync=False)
        database.insert("Seats", (1, "a"))
        engine.close()
        with pytest.raises(DurabilityError, match="closed"):
            engine.append(LogRecordType.BEGIN, 99)

    def test_checkpoint_on_closed_engine(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync=False)
        database.insert("Seats", (1, "a"))
        engine.close()
        with pytest.raises(DurabilityError, match="closed"):
            engine.checkpoint(database.snapshot())

    def test_checkpoint_delta_on_closed_engine(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync=False)
        database.insert("Seats", (1, "a"))
        database.checkpoint()  # a base exists, so only the guard can raise
        engine.close()
        with pytest.raises(DurabilityError, match="closed"):
            engine.checkpoint_delta()
