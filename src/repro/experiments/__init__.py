"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run_*`` functions (parameterised, returning structured
results), ``default_parameters()`` (a scaled-down configuration that
finishes in seconds), ``paper_parameters()`` (the sizes reported in the
paper) and a ``main()`` that prints the corresponding table or series.

Run any experiment from the command line, e.g.::

    python -m repro.experiments.figure6
    python -m repro.experiments.table2

The mapping from paper artifact to module is recorded in DESIGN.md
(per-experiment index) and the measured-vs-paper comparison in
EXPERIMENTS.md.
"""

from repro.experiments import (  # noqa: F401 - re-exported for convenience
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
)
from repro.experiments.metrics import RunResult, Timer, coordination_percentage
from repro.experiments.runner import (
    run_is_entangled,
    run_quantum_entangled,
    run_quantum_mixed,
)

__all__ = [
    "RunResult",
    "Timer",
    "coordination_percentage",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "run_is_entangled",
    "run_quantum_entangled",
    "run_quantum_mixed",
    "table1",
    "table2",
]
