"""Drivers that run workloads against the quantum database and the baselines.

Each driver measures per-operation wall-clock time and computes the
coordination achieved in the *final* database state, using the same metric
for every system: a user counts as coordinated when their booked seat is
adjacent to their partner's booked seat on the same flight.
"""

from __future__ import annotations


from repro.baselines.intelligent_social import IntelligentSocialClient
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.serializability import SerializabilityMode
from repro.experiments.metrics import RunResult, Timer, coordination_percentage
from repro.relational.database import Database
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.entangled_workload import EntangledWorkload
from repro.workloads.flights import booked_adjacent_pairs, build_flight_database
from repro.workloads.mixed import MixedWorkload, OperationKind


def coordinated_users_in(
    database: Database, workload: EntangledWorkload
) -> int:
    """Users whose final seat is adjacent to their partner's seat."""
    adjacent_pairs = booked_adjacent_pairs(database)
    count = 0
    for pair in workload.pairs:
        if frozenset(pair.members()) in adjacent_pairs:
            count += 2
    return count


def quantum_config(
    k: int = MYSQL_JOIN_LIMIT,
    serializability: SerializabilityMode = SerializabilityMode.SEMANTIC,
) -> QuantumConfig:
    """A quantum configuration with the experiment-relevant knobs exposed."""
    return QuantumConfig(k=k, serializability=serializability)


def run_quantum_entangled(
    workload: EntangledWorkload,
    *,
    k: int = MYSQL_JOIN_LIMIT,
    serializability: SerializabilityMode = SerializabilityMode.SEMANTIC,
    label: str | None = None,
) -> RunResult:
    """Run an entangled workload through a quantum database.

    Every transaction is submitted in arrival order; entangled pairs are
    grounded when the partner arrives (the Section 5.1 policy); any
    transactions still pending at the end are grounded so that the final
    state is fully concrete before coordination is measured.
    """
    database = build_flight_database(workload.spec)
    qdb = QuantumDatabase(database, quantum_config(k, serializability))
    result = RunResult(label=label or f"QuantumDB(k={k})")
    for transaction in workload.transactions:
        with Timer() as timer:
            commit = qdb.execute(transaction)
        result.op_times.append(timer.elapsed)
        if commit.committed:
            result.admitted += 1
        else:
            result.rejected += 1
    with Timer() as timer:
        qdb.ground_all()
    result.extra["final_grounding_time"] = timer.elapsed
    # Deterministic work counters alongside the wall-clock series: the same
    # workload always searches the same nodes/rows, so tests comparing
    # arrival orders can assert on these instead of timing under load.
    report = qdb.statistics_report()
    result.extra["search_nodes"] = report["search.nodes"]
    result.extra["search_rows_examined"] = report["search.rows_examined"]
    result.max_pending = qdb.statistics.max_pending
    result.coordinated_users = coordinated_users_in(database, workload)
    result.max_possible = workload.max_possible_coordinations
    result.coordination_percentage = coordination_percentage(
        result.coordinated_users, result.max_possible
    )
    return result


def run_is_entangled(
    workload: EntangledWorkload, *, label: str = "Intelligent Social"
) -> RunResult:
    """Run the same workload through the intelligent-social baseline."""
    database = build_flight_database(workload.spec)
    client = IntelligentSocialClient(database)
    flights = {pair.first: pair.flight for pair in workload.pairs}
    flights.update({pair.second: pair.flight for pair in workload.pairs})
    result = RunResult(label=label)
    for transaction in workload.transactions:
        assert transaction.client is not None
        with Timer() as timer:
            client.book(
                transaction.client,
                transaction.partner,
                flight=flights.get(transaction.client),
            )
        result.op_times.append(timer.elapsed)
        result.admitted += 1
    result.coordinated_users = coordinated_users_in(database, workload)
    result.max_possible = workload.max_possible_coordinations
    result.coordination_percentage = coordination_percentage(
        result.coordinated_users, result.max_possible
    )
    return result


def run_quantum_mixed(
    workload: MixedWorkload,
    *,
    k: int = MYSQL_JOIN_LIMIT,
    serializability: SerializabilityMode = SerializabilityMode.SEMANTIC,
    label: str | None = None,
) -> RunResult:
    """Run a mixed read / resource workload through a quantum database.

    The result's ``extra`` dict carries the Figure 8 split: total time spent
    executing resource transactions (``update_time``) and answering reads
    (``read_time``).
    """
    database = build_flight_database(workload.base.spec)
    qdb = QuantumDatabase(database, quantum_config(k, serializability))
    result = RunResult(label=label or f"QuantumDB(k={k})")
    read_time = 0.0
    update_time = 0.0
    for operation in workload.operations:
        if operation.kind is OperationKind.RESOURCE:
            assert operation.transaction is not None
            with Timer() as timer:
                commit = qdb.execute(operation.transaction)
            update_time += timer.elapsed
            result.op_times.append(timer.elapsed)
            if commit.committed:
                result.admitted += 1
            else:
                result.rejected += 1
        else:
            with Timer() as timer:
                qdb.read("Bookings", [operation.read_client, None, None])
            read_time += timer.elapsed
            result.op_times.append(timer.elapsed)
    with Timer() as timer:
        qdb.ground_all()
    result.extra["final_grounding_time"] = timer.elapsed
    result.extra["read_time"] = read_time
    result.extra["update_time"] = update_time
    result.max_pending = qdb.statistics.max_pending
    result.coordinated_users = coordinated_users_in(database, workload.base)
    # Only the pairs whose transactions were actually submitted count toward
    # the maximum (a truncated mixed workload may omit some pairs).
    submitted = {
        op.transaction.client
        for op in workload.operations
        if op.kind is OperationKind.RESOURCE and op.transaction is not None
    }
    complete_pairs = [
        pair
        for pair in workload.base.pairs
        if pair.first in submitted and pair.second in submitted
    ]
    result.max_possible = min(
        2 * len(complete_pairs), workload.base.spec.max_coordinating_users
    )
    result.coordinated_users = sum(
        2
        for pair in complete_pairs
        if frozenset(pair.members()) in booked_adjacent_pairs(database)
    )
    result.coordination_percentage = coordination_percentage(
        result.coordinated_users, result.max_possible
    )
    return result
