"""Figure 6 — percentage of coordination per arrival order.

Same workloads as Figure 5; the reported metric is the percentage of the
maximum possible coordination actually achieved, for the quantum database
and for the intelligent-social baseline.  Expected shape: the quantum
database achieves (near) 100% for every arrival order; IS is comparable only
under Alternate and much lower otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import RunResult
from repro.experiments.report import format_table, print_report
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec


@dataclass
class Figure6Result:
    """Coordination percentages per arrival order and system."""

    quantum: dict[ArrivalOrder, RunResult] = field(default_factory=dict)
    intelligent_social: dict[ArrivalOrder, RunResult] = field(default_factory=dict)

    def rows(self) -> list[tuple[str, float, float]]:
        """(order, quantum %, IS %) rows."""
        result = []
        for order in ArrivalOrder:
            result.append(
                (
                    order.value,
                    self.quantum[order].coordination_percentage,
                    self.intelligent_social[order].coordination_percentage,
                )
            )
        return result


def run_figure6(
    spec: FlightDatabaseSpec | None = None,
    *,
    k: int = MYSQL_JOIN_LIMIT,
    seed: int = 0,
) -> Figure6Result:
    """Run the Figure 6 experiment (both systems, all four orders)."""
    spec = spec or default_parameters()
    result = Figure6Result()
    for order in ArrivalOrder:
        workload = generate_workload(spec, order, seed=seed)
        result.quantum[order] = run_quantum_entangled(workload, k=k, label=order.value)
        result.intelligent_social[order] = run_is_entangled(
            workload, label=f"IS {order.value}"
        )
    return result


def default_parameters() -> FlightDatabaseSpec:
    """Scaled-down default: 1 flight, 10 rows."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=10)


def paper_parameters() -> FlightDatabaseSpec:
    """The paper's sizing: 1 flight, 34 rows."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=34)


def main(spec: FlightDatabaseSpec | None = None, *, k: int = MYSQL_JOIN_LIMIT) -> Figure6Result:
    """Run and print Figure 6's bars."""
    result = run_figure6(spec, k=k)
    body = format_table(
        ["Arrival order", "QuantumDB %", "Intelligent Social %"],
        result.rows(),
        precision=1,
    )
    print_report("Figure 6: percentage of coordination per arrival order", body)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
