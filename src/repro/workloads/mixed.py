"""Mixed read / resource-transaction workloads (Figures 8 and 9).

"Next, we study the behavior of our system under realistic workloads which
are a mix of resource and non-resource transactions.  The non-resource
transactions are read queries by users who had earlier issued a resource
transaction.  Unlike in normal databases, a non-resource read transaction
on a quantum database can induce updates to the database by forcing
grounding of pending resource transactions."

A mixed workload is a sequence of operations, each either the submission of
an entangled resource transaction or a read of some earlier user's booking.
The read percentage controls how many of the total operations are reads.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.entanglement import EntangledResourceTransaction
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import EntangledWorkload, generate_workload
from repro.workloads.flights import FlightDatabaseSpec


class OperationKind(enum.Enum):
    """Kinds of operations in a mixed workload."""

    RESOURCE = "RESOURCE"
    READ = "READ"


@dataclass(frozen=True)
class Operation:
    """One operation of a mixed workload.

    Attributes:
        kind: RESOURCE or READ.
        transaction: the resource transaction (RESOURCE operations only).
        read_client: the user whose booking is read (READ operations only).
    """

    kind: OperationKind
    transaction: EntangledResourceTransaction | None = None
    read_client: str | None = None


@dataclass
class MixedWorkload:
    """A mixed workload plus the entangled workload it was derived from.

    Attributes:
        base: the underlying entangled workload (Random arrival order).
        operations: the full operation sequence.
        read_percentage: fraction of operations that are reads, in percent.
    """

    base: EntangledWorkload
    operations: tuple[Operation, ...]
    read_percentage: float

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @property
    def read_count(self) -> int:
        """Number of read operations."""
        return sum(1 for op in self.operations if op.kind is OperationKind.READ)

    @property
    def resource_count(self) -> int:
        """Number of resource-transaction operations."""
        return sum(1 for op in self.operations if op.kind is OperationKind.RESOURCE)


def generate_mixed_workload(
    spec: FlightDatabaseSpec,
    read_percentage: float,
    *,
    total_operations: int | None = None,
    seed: int = 0,
) -> MixedWorkload:
    """Generate a mixed workload with the given read percentage.

    The resource transactions come from a Random-order entangled workload
    over ``spec``; reads are interleaved uniformly at random after the first
    operation, each targeting a user who has already issued their resource
    transaction (as in the paper).

    Args:
        spec: flight database sizing.  When ``total_operations`` is omitted,
            the resource-transaction count equals the number of seats and
            reads are added on top so that they make up ``read_percentage``
            of the total.
        read_percentage: percentage (0–100) of operations that are reads.
        total_operations: fix the total operation count (the paper fixes
            6000); the resource/read split then follows the percentage and
            the resource transactions are a prefix-sized subset of the
            workload.
        seed: RNG seed.
    """
    if not 0 <= read_percentage < 100:
        raise ValueError("read_percentage must be in [0, 100)")
    rng = random.Random(seed)
    base = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    transactions = list(base.transactions)
    if total_operations is not None:
        num_reads = round(total_operations * read_percentage / 100.0)
        num_resources = total_operations - num_reads
        if num_resources > len(transactions):
            raise ValueError(
                f"workload needs {num_resources} resource transactions but the "
                f"flight database only supports {len(transactions)}"
            )
        transactions = transactions[:num_resources]
    else:
        num_resources = len(transactions)
        num_reads = (
            0
            if read_percentage == 0
            else round(num_resources * read_percentage / (100.0 - read_percentage))
        )

    operations: list[Operation] = [
        Operation(OperationKind.RESOURCE, transaction=t) for t in transactions
    ]
    # Insert each read at a random position strictly after the first
    # operation; the read targets a user whose transaction appears earlier
    # in the final sequence.
    for _ in range(num_reads):
        position = rng.randint(1, len(operations))
        earlier_clients = [
            op.transaction.client
            for op in operations[:position]
            if op.kind is OperationKind.RESOURCE and op.transaction is not None
        ]
        if not earlier_clients:
            earlier_clients = [transactions[0].client]
        client = rng.choice(earlier_clients)
        operations.insert(position, Operation(OperationKind.READ, read_client=client))
    return MixedWorkload(
        base=base,
        operations=tuple(operations),
        read_percentage=read_percentage,
    )
