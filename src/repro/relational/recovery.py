"""Crash recovery for the relational store.

Recovery in the reproduction follows the classic redo-only discipline over
the write-ahead log: starting from an (empty or snapshot) database with the
schemas already declared, replay the insert/delete records of every
*committed* transaction in LSN order; records of transactions without a
COMMIT marker are ignored (their effects were never made durable).

The quantum database builds its own recovery on top of this (see
:mod:`repro.core.recovery`): after the extensional state is restored, the
pending-transactions table is read back and the in-memory quantum state —
composed bodies, partitions and solution cache — is reconstructed.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MissingRowError, RecoveryError
from repro.relational.database import Database
from repro.relational.wal import (
    CHECKPOINT_TYPES,
    SNAPSHOT_CHECKPOINT_TYPES,
    LogRecord,
    LogRecordType,
    WriteAheadLog,
)


def recover_database(
    schema_factory: Callable[[], Database], wal: WriteAheadLog
) -> Database:
    """Rebuild a database from a schema factory and a surviving WAL.

    Args:
        schema_factory: callable returning a fresh :class:`Database` with all
            schemas (tables, keys, indexes) declared but no data.  Schemas
            are metadata that real systems keep in the catalog; keeping the
            factory explicit avoids serialising schemas into the log.
        wal: the write-ahead log that survived the crash.

    Returns:
        A database containing exactly the effects of committed transactions.

    Raises:
        RecoveryError: if replay encounters an impossible operation (which
            indicates log corruption).
    """
    database = schema_factory()
    replay_into(database, wal)
    # The recovered database continues appending to the same log so that a
    # subsequent crash still recovers correctly.
    database.wal = wal
    return database


def replay_into(database: Database, wal: WriteAheadLog) -> None:
    """Replay committed WAL records into ``database`` (redo pass).

    A CHECKPOINT or CHECKPOINT_BASE record restores the snapshot it
    carries (replacing all table contents accumulated so far) and replay
    continues with the records that follow it; a CHECKPOINT_DELTA record
    applies only the per-table net row changes accumulated since the
    previous checkpoint in the lineage (deletes before inserts, matching
    how the dirty set was folded).  :meth:`WriteAheadLog.checkpoint`
    guarantees at most one snapshot record, at the front of the log, so
    recovery work is bounded by the snapshot size plus the
    post-checkpoint tail; the segmented engine extends the same
    invariant to a base → delta-chain → tail ordering.
    """
    committed = wal.committed_transaction_ids()
    for record in wal.records():
        if record.record_type in CHECKPOINT_TYPES:
            apply_checkpoint_record(database, record)
            continue
        if record.transaction_id not in committed:
            continue
        if record.record_type is LogRecordType.INSERT:
            _redo_insert(database, record.table, record.values)
        elif record.record_type is LogRecordType.DELETE:
            _redo_delete(database, record.table, record.values)


def apply_checkpoint_record(database: Database, record: LogRecord) -> None:
    """Apply one checkpoint-lineage record to ``database``.

    Shared between the monolithic replay above and the segmented engine's
    :func:`repro.storage.recover` (which replays the lineage it selected
    from the manifest before redoing the tail).
    """
    if record.record_type in SNAPSHOT_CHECKPOINT_TYPES:
        if record.snapshot is None:
            raise RecoveryError(
                f"{record.record_type.value} log record missing its snapshot"
            )
        database.restore(record.snapshot)
        return
    if record.record_type is not LogRecordType.CHECKPOINT_DELTA:
        raise RecoveryError(
            f"{record.record_type.value} is not a checkpoint-lineage record"
        )
    if record.delta is None:
        raise RecoveryError("CHECKPOINT_DELTA log record missing its delta")
    for table_name, changes in record.delta.items():
        for values in changes.get("delete", ()):
            _redo_delete(database, table_name, values)
        for values in changes.get("insert", ()):
            _redo_insert(database, table_name, values)


def _redo_insert(database: Database, table_name: str | None, values) -> None:
    if table_name is None or values is None:
        raise RecoveryError("INSERT log record missing table or values")
    database.table(table_name).insert(values)


def _redo_delete(database: Database, table_name: str | None, values) -> None:
    if table_name is None or values is None:
        raise RecoveryError("DELETE log record missing table or values")
    try:
        database.table(table_name).delete(values)
    except MissingRowError as exc:
        raise RecoveryError(
            f"log replay deleted a non-existent row from {table_name!r}"
        ) from exc
