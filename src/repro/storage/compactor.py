"""The background compactor: reclaims sealed segments, never blocks writes.

Same lifecycle discipline as the admission lanes
(:class:`repro.sharding.admission_lane.AdmissionLane`): one daemon worker
thread, started eagerly, stopped by an explicit ``close()`` that joins
the thread.  The worker sleeps on an event that the engine sets whenever
a segment is sealed or a checkpoint lands (plus a periodic wake-up as a
backstop), then runs :meth:`SegmentedWriteAheadLog.compact_once` until no
sealed segment is eligible.  All file rewriting happens off the writer's
lock — the single point of contact is the atomic manifest swap.

The same thread also performs off-writer base synthesis
(``DurabilityConfig(incremental_bases=True)``): when the delta chain
reaches ``base_interval`` the engine arms a fold and the next compaction
pass merges the previous base with the sealed deltas into a synthesized
``CHECKPOINT_BASE``, so the writer never builds another full snapshot.

A segment whose compaction keeps failing (a corrupt sealed file, say) is
quarantined by the engine after a bounded number of attempts
(``compaction_errors`` / ``last_compaction_error`` in
``durability_statistics()``) — the worker records the error and moves on
rather than re-reading the same damaged file in a hot loop.
"""

from __future__ import annotations

import threading


class Compactor:
    """Worker thread driving an engine's sealed-segment compaction.

    Args:
        engine: the :class:`~repro.storage.engine.SegmentedWriteAheadLog`
            to compact (the compactor registers itself as the engine's
            trigger target).
        interval_s: idle wake-up period; explicit triggers (seal,
            checkpoint) wake the worker immediately.
    """

    def __init__(self, engine, *, interval_s: float = 0.05) -> None:
        self._engine = engine
        self._interval_s = interval_s
        self._wake = threading.Event()
        self._stop = threading.Event()
        #: Last unexpected exception from a compaction pass (the thread
        #: survives it; surfaced for tests and debugging).
        self.last_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run,
            name="repro-wal-compactor",
            daemon=True,
        )
        self._thread.start()

    def trigger(self) -> None:
        """Wake the worker now (called at seals and checkpoints)."""
        self._wake.set()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self._interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                while self._engine.compact_once():
                    pass
            except Exception as exc:  # noqa: BLE001 - must not kill the thread
                # Compaction is an optimization: a failed pass leaves the
                # (larger but consistent) log in place, so record and retry
                # at the next wake-up rather than crash the server.  The
                # engine bounds the retries per segment — a persistently
                # failing segment is quarantined out of the candidate set,
                # so this never becomes a hot loop on the same file.
                self.last_error = exc

    def close(self) -> None:
        """Stop the worker after its current pass (idempotent)."""
        if not self._thread.is_alive():
            return
        self._stop.set()
        self._wake.set()
        self._thread.join()
