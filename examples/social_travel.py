"""Social travel: entangled coordination at scale, vs. the IS baseline.

Reproduces the paper's evaluation scenario in miniature: a flight database,
a workload of entangled seat requests where each user wants to sit next to
a friend who books separately, and a comparison between the quantum
database (deferred assignment, ground-on-partner-arrival) and the
"intelligent social" client-side strategy.

Run with::

    python examples/social_travel.py [arrival_order]

where ``arrival_order`` is one of ``alternate``, ``random`` (default),
``in_order``, ``reverse_order``.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec

#: Command-line names for the arrival orders.
ORDER_NAMES = {
    "alternate": ArrivalOrder.ALTERNATE,
    "random": ArrivalOrder.RANDOM,
    "in_order": ArrivalOrder.IN_ORDER,
    "reverse_order": ArrivalOrder.REVERSE_ORDER,
}


def main(order_name: str = "random") -> None:
    order = ORDER_NAMES[order_name]
    spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=8)
    workload = generate_workload(spec, order, seed=7)
    print(
        f"flight database: {spec.num_flights} flights x {spec.seats_per_flight} seats; "
        f"{len(workload)} entangled transactions in {order.value} order\n"
    )

    quantum = run_quantum_entangled(workload, k=10)
    print(
        f"QuantumDB      : total {quantum.total_time * 1000:.1f} ms, "
        f"max pending {quantum.max_pending}, "
        f"coordination {quantum.coordination_percentage:.1f}% "
        f"({quantum.coordinated_users}/{quantum.max_possible} users)"
    )

    baseline = run_is_entangled(workload)
    print(
        f"IntelligentSoc.: total {baseline.total_time * 1000:.1f} ms, "
        f"coordination {baseline.coordination_percentage:.1f}% "
        f"({baseline.coordinated_users}/{baseline.max_possible} users)"
    )

    factor = (
        quantum.coordination_percentage / baseline.coordination_percentage
        if baseline.coordination_percentage
        else float("inf")
    )
    print(f"\ncoordination improvement over IS: {factor:.2f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "random")
