"""Tests for table schemas and rows (keys, validation, projections)."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.datatypes import DataType
from repro.relational.row import Row
from repro.relational.schema import Column, TableSchema


@pytest.fixture
def bookings_schema() -> TableSchema:
    return TableSchema(
        "Bookings",
        [
            Column("passenger", DataType.TEXT),
            Column("flight", DataType.INTEGER),
            Column("seat", DataType.TEXT),
        ],
        key=["flight", "seat"],
    )


class TestTableSchema:
    def test_column_shorthand(self):
        schema = TableSchema("T", ["a", "b"])
        assert schema.column_names == ("a", "b")
        assert all(c.datatype is DataType.ANY for c in schema.columns)

    def test_whole_row_key_by_default(self):
        schema = TableSchema("T", ["a", "b"])
        assert schema.key == ("a", "b")

    def test_explicit_key(self, bookings_schema):
        assert bookings_schema.key == ("flight", "seat")
        assert bookings_schema.key_positions == (1, 2)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", ["a", "a"])

    def test_unknown_key_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", ["a"], key=["b"])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [])

    def test_position_and_has_column(self, bookings_schema):
        assert bookings_schema.position("seat") == 2
        assert bookings_schema.has_column("flight")
        assert not bookings_schema.has_column("price")
        with pytest.raises(UnknownColumnError):
            bookings_schema.position("price")

    def test_validate_values_arity(self, bookings_schema):
        with pytest.raises(SchemaError):
            bookings_schema.validate_values(("Mickey", 1))

    def test_values_from_mapping(self, bookings_schema):
        values = bookings_schema.values_from_mapping(
            {"seat": "5A", "passenger": "Mickey", "flight": 12}
        )
        assert values == ("Mickey", 12, "5A")

    def test_values_from_mapping_unknown_column(self, bookings_schema):
        with pytest.raises(UnknownColumnError):
            bookings_schema.values_from_mapping({"price": 10})

    def test_key_of(self, bookings_schema):
        assert bookings_schema.key_of(("Mickey", 12, "5A")) == (12, "5A")

    def test_equality_and_hash(self, bookings_schema):
        clone = TableSchema(
            "Bookings",
            [
                Column("passenger", DataType.TEXT),
                Column("flight", DataType.INTEGER),
                Column("seat", DataType.TEXT),
            ],
            key=["flight", "seat"],
        )
        assert clone == bookings_schema
        assert hash(clone) == hash(bookings_schema)


class TestColumn:
    def test_not_nullable(self):
        column = Column("flight", DataType.INTEGER, nullable=False)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("")


class TestRow:
    def test_access_by_name_and_position(self, bookings_schema):
        row = Row(bookings_schema, ("Mickey", 12, "5A"))
        assert row["passenger"] == "Mickey"
        assert row[1] == 12
        assert row.get("seat") == "5A"
        assert row.get("missing", "x") == "x"

    def test_key_and_table_name(self, bookings_schema):
        row = Row(bookings_schema, ("Mickey", 12, "5A"))
        assert row.key == (12, "5A")
        assert row.table_name == "Bookings"

    def test_as_dict_and_iteration(self, bookings_schema):
        row = Row(bookings_schema, ("Mickey", 12, "5A"))
        assert row.as_dict() == {"passenger": "Mickey", "flight": 12, "seat": "5A"}
        assert list(row) == ["Mickey", 12, "5A"]
        assert len(row) == 3

    def test_replace(self, bookings_schema):
        row = Row(bookings_schema, ("Mickey", 12, "5A"))
        other = row.replace(seat="5B")
        assert other["seat"] == "5B"
        assert row["seat"] == "5A"

    def test_equality_hash(self, bookings_schema):
        row_a = Row(bookings_schema, ("Mickey", 12, "5A"))
        row_b = Row(bookings_schema, ("Mickey", 12, "5A"))
        row_c = Row(bookings_schema, ("Mickey", 12, "5B"))
        assert row_a == row_b
        assert hash(row_a) == hash(row_b)
        assert row_a != row_c

    def test_type_validation_applies(self, bookings_schema):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            Row(bookings_schema, ("Mickey", "not-a-flight", "5A"))
