"""Asyncio session layer: concurrent clients over one quantum database.

The paper's admission model holds transactions in superposition and grounds
them lazily — the expensive work (composition + grounding search) is
naturally deferrable, and the PR-1 witness cache keeps the admission
critical section short.  This package turns that into a serving layer:

* :class:`QuantumServer` — owns the single-writer admission queue (every
  mutation of the shared database flows through one audited entry point),
  a group-commit drain (concurrent clients' commits share one durability
  write), a thread-pool executor on which multi-partition grounding plans
  run concurrently, and graceful shutdown (drain, WAL flush, snapshot
  checkpoint).
* :class:`Session` — one client's transaction stream: ``await
  session.commit(tx)`` for the admission guarantee, ``commit_batch`` to
  pipeline, ``read`` with isolated results, and ``on_grounding`` futures
  that resolve when value assignments are finally fixed.

Because the writer admits strictly in queue order through the ordinary
synchronous path, accept/reject decisions are identical to calling
:meth:`~repro.core.quantum_database.QuantumDatabase.execute` in the same
arrival order — concurrency never changes semantics, only interleaving.
See ``docs/architecture.md`` for the full design and
``benchmarks/test_concurrent_sessions.py`` for the throughput experiment.

Quickstart::

    import asyncio
    from repro import QuantumDatabase, QuantumServer

    async def main():
        qdb = QuantumDatabase()
        qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
        qdb.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
        qdb.load_rows("Available", [(123, "5A"), (123, "5B")])
        async with QuantumServer(qdb) as server:
            async with server.session(client="Mickey") as session:
                result = await session.commit(
                    "-Available(?f, ?s), +Bookings('Mickey', ?f, ?s)"
                    " :-1 Available(?f, ?s)"
                )
                assert result.committed and result.pending
                seat = session.on_grounding(result.transaction_id)
                await session.check_in(result.transaction_id)
                print((await seat).valuation)

    asyncio.run(main())
"""

from repro.server.client import ConnectionClosed, NetClient, RemoteCommitResult
from repro.server.net import NetConfig, NetStatistics, NetworkServer, serve
from repro.server.protocol import FrameDecoder, Opcode, encode_frame
from repro.server.service import (
    CheckpointPolicy,
    QuantumServer,
    ServerConfig,
    ServerStatistics,
    WorkItem,
    WorkKind,
)
from repro.server.session import (
    AdmissionResult,
    GroundingTarget,
    Session,
    SessionStatistics,
)

__all__ = [
    "AdmissionResult",
    "CheckpointPolicy",
    "ConnectionClosed",
    "FrameDecoder",
    "GroundingTarget",
    "NetClient",
    "NetConfig",
    "NetStatistics",
    "NetworkServer",
    "Opcode",
    "QuantumServer",
    "RemoteCommitResult",
    "ServerConfig",
    "ServerStatistics",
    "Session",
    "SessionStatistics",
    "WorkItem",
    "WorkKind",
    "encode_frame",
    "serve",
]
