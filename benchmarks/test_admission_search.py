"""Admission-search strategies — branch-and-bound vs. the seed searcher.

Runs the Figure 7 scalability workload (Random arrival order, entangled
pairs, per-flight partitioning) through the unsharded quantum database
twice — once under the seed backtracking searcher, once under
``AdmissionSearchConfig(strategy="bnb")`` (per-shape fast paths, cost
bounds from the partition structure, trail-based undo) — and once more
with the opt-in sampling estimator engaged on oversized partitions.

The acceptance criteria asserted here:

* accept/reject decisions under ``bnb`` are **bit-identical** to the
  backtracking run on the same stream (strategy changes cost, never
  outcome);
* the bnb run expands **at most half** the admission-search nodes the
  backtracking run does on this workload (``nodes_ratio <= 0.5``), with
  the per-shape fast paths answering a healthy share of dispatched
  searches outright.  The comparison reads ``cache.admission_nodes`` —
  the nodes spent *deciding admissions* (summed from every admission
  probe) — rather than the global ``search.nodes``, which the grounding
  and serializability searches dominate and the strategy never touches
  (decisions being identical, that work is identical by construction);
* sampled admissions actually happen on the oversized-partition workload,
  their approximation is surfaced end-to-end (``method == "sampled"``,
  ``exact is False`` on the :class:`CommitResult`), and their per-admission
  latency is recorded.

Results land in the ``"search"`` section of ``BENCH_admission.json``
(read-modify-write, like the ``"network"`` and ``"durability"``
sections) where ``scripts/bench_gate.py`` gates them: decisions and the
node-ratio bound are structural (any violation fails), the fast-path hit
rate must not collapse, and the sampled-admission latency — normalized by
the run's anchor admission throughput — must not grow beyond tolerance.
Run via ``make searchbench`` (part of ``make check``); not smoke-marked,
so ``make smoke`` keeps its budget.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.experiments.report import format_table
from repro.solver.strategy import AdmissionSearchConfig, SamplingConfig
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_admission.json"

#: Acceptance bound — bnb must expand at most this fraction of the
#: backtracking run's search nodes on the Figure 7 workload.
NODES_RATIO_BOUND = 0.5

#: Oversized-partition workload for the sampling point: one flight, many
#: seats, ``k`` high enough that the composed body keeps growing, plus a
#: tail of over-capacity arrivals whose failed extensions force full
#: solves of the big composed body — the regime the estimator exists
#: for.  (seats, overbook tail, k, sampling threshold).
SAMPLING_PARAMS = {
    "default": (10, 4, 16, 4),
    "paper": (24, 8, 34, 6),
}


def _spec() -> FlightDatabaseSpec:
    if BENCH_SCALE == "paper":
        return FlightDatabaseSpec(num_flights=50, rows_per_flight=10)
    return FlightDatabaseSpec(num_flights=16, rows_per_flight=4)


def _run_strategy(
    spec: FlightDatabaseSpec, search: AdmissionSearchConfig | None, *, seed: int = 0
):
    """One full admission pass; returns (decisions, statistics, admit_s)."""
    workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    config = (
        QuantumConfig(k=4, search=search) if search is not None else QuantumConfig(k=4)
    )
    qdb = QuantumDatabase(build_flight_database(spec), config)
    start = time.perf_counter()
    decisions = [qdb.execute(t).committed for t in workload.transactions]
    admit_s = time.perf_counter() - start
    statistics = qdb.statistics_report()
    qdb.close()
    return decisions, statistics, admit_s


def _run_sampling(seats: int, overbook: int, k: int, threshold: int):
    """Pinned bookings piling onto one flight until the estimator engages.

    The first ``seats`` arrivals fill the partition (witness extensions
    are off, but the cached solution keeps extending); the ``overbook``
    tail can no longer extend it, so each of those admissions solves the
    full ``seats``-plus-atom composed body — above ``threshold``, which
    hands the decision to the sampling estimator.  Returns (results,
    statistics, per-admission latencies in ms).
    """
    search = AdmissionSearchConfig(
        strategy="bnb",
        sampling=SamplingConfig(threshold=threshold, samples=16, seed=7),
    )
    # Witness cache off: every admission re-solves the growing composed
    # body, so the partition crosses the sampling threshold — the huge-
    # partition / no-valid-witness regime the estimator exists for.
    qdb = QuantumDatabase(
        config=QuantumConfig(k=k, search=search, witness_cache=False)
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows("Available", [("f1", f"s{i}") for i in range(seats)])
    results, latencies_ms = [], []
    for i in range(seats + overbook):
        text = (
            f"-Available('f1', ?s), +Bookings('u{i}', 'f1', ?s)"
            " :-1 Available('f1', ?s)"
        )
        start = time.perf_counter()
        results.append(qdb.execute(text))
        latencies_ms.append((time.perf_counter() - start) * 1000.0)
    statistics = qdb.statistics_report()
    qdb.close()
    return results, statistics, latencies_ms


def _emit_search_json(result: dict) -> None:
    """Merge the search section into ``BENCH_admission.json``.

    Read-modify-write, mirroring the ``"network"`` and ``"durability"``
    emitters: the sharded admission benchmark owns the rest of the file
    and preserves this section symmetrically.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["search"] = {"scale": BENCH_SCALE, "results": [result]}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.search
def test_admission_search_strategies():
    spec = _spec()

    bt_decisions, bt_stats, bt_admit_s = _run_strategy(spec, None)
    bnb_decisions, bnb_stats, bnb_admit_s = _run_strategy(
        spec, AdmissionSearchConfig(strategy="bnb")
    )

    # Bit-identical decisions: the strategy selector changes how fast an
    # admission decision is reached, never what is decided.
    assert bnb_decisions == bt_decisions

    bt_nodes = bt_stats["cache.admission_nodes"]
    bnb_nodes = bnb_stats["cache.admission_nodes"]
    nodes_ratio = bnb_nodes / max(1, bt_nodes)
    # The headline criterion: cost bounds + per-shape fast paths halve the
    # admission-search node count on the Figure 7 workload (or better).
    assert nodes_ratio <= NODES_RATIO_BOUND, (bnb_nodes, bt_nodes)
    assert bnb_stats["search.fastpath_hits"] > 0
    # Hit rate over the searches the admission dispatcher actually ran
    # (witness/cached-solution extensions plus full solves), not the
    # global search counter the grounding machinery dominates.
    dispatched = (
        bnb_stats["cache.extension_hits"]
        + bnb_stats["cache.extension_misses"]
        + bnb_stats["cache.full_solves"]
    )
    fastpath_rate = bnb_stats["search.fastpath_hits"] / max(1, dispatched)
    # The seed searcher must never sample; neither does bnb without opt-in.
    assert bt_stats["search.samples"] == 0
    assert bnb_stats["search.samples"] == 0

    seats, overbook, k, threshold = SAMPLING_PARAMS[
        "paper" if BENCH_SCALE == "paper" else "default"
    ]
    sampled_results, sampled_stats, latencies_ms = _run_sampling(
        seats, overbook, k, threshold
    )
    sampled_ms_points = [
        ms
        for r, ms in zip(sampled_results, latencies_ms)
        if r.method == "sampled"
    ]
    sampled = [r for r in sampled_results if r.method == "sampled"]
    # The estimator genuinely engaged (once per over-capacity arrival) and
    # its approximation is surfaced end-to-end on the commit results.
    assert len(sampled) == overbook, [r.method for r in sampled_results]
    assert all(not r.exact for r in sampled)
    assert all(r.exact for r in sampled_results if r.method != "sampled")
    assert sampled_stats["cache.sampled_admissions"] == len(sampled)
    sampled_ms = sum(sampled_ms_points) / len(sampled_ms_points)

    result = {
        "num_flights": spec.num_flights,
        "rows_per_flight": spec.rows_per_flight,
        "transactions": len(bt_decisions),
        "admitted": bnb_stats["state.admitted"],
        "rejected": bnb_stats["state.rejected"],
        "decisions_match": bnb_decisions == bt_decisions,
        "backtracking_nodes": bt_nodes,
        "bnb_nodes": bnb_nodes,
        "nodes_ratio": round(nodes_ratio, 3),
        "fastpath_hits": bnb_stats["search.fastpath_hits"],
        "fastpath_hit_rate": round(fastpath_rate, 3),
        "backtracking_admit_s": round(bt_admit_s, 4),
        "bnb_admit_s": round(bnb_admit_s, 4),
        "sampled_admissions": len(sampled),
        "sampled_admission_ms": round(sampled_ms, 3),
    }
    report(
        "Admission search strategies (Figure 7 workload)",
        format_table(
            [
                "strategy",
                "#txns",
                "nodes",
                "ratio",
                "fastpath",
                "admit (s)",
            ],
            [
                ["backtracking", len(bt_decisions), bt_nodes, "", 0, round(bt_admit_s, 3)],
                [
                    "bnb",
                    len(bnb_decisions),
                    bnb_nodes,
                    round(nodes_ratio, 3),
                    bnb_stats["search.fastpath_hits"],
                    round(bnb_admit_s, 3),
                ],
            ],
        ),
    )
    _emit_search_json(result)
