"""Figure 5 — cumulative execution time per arrival order.

Regenerates the Figure 5 series: one quantum-database run per arrival order
plus the intelligent-social baseline under the Random order.  The
pytest-benchmark numbers measure the end-to-end workload execution for each
arrival order; the printed series is the cumulative-time data the paper
plots.  Expected shape: Alternate ≈ IS, Random slightly above IS, In Order
and Reverse Order substantially slower.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure5 import default_parameters, paper_parameters
from repro.experiments.report import downsample, format_series
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload

SPEC = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


@pytest.mark.parametrize("order", list(ArrivalOrder), ids=lambda o: o.value)
def test_quantum_arrival_order(benchmark, order):
    workload = generate_workload(SPEC, order, seed=0)

    def run():
        return run_quantum_entangled(workload, k=MYSQL_JOIN_LIMIT, label=order.value)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    series = downsample(result.cumulative_times(), points=10)
    report(
        f"Figure 5 [{order.value}]",
        format_series(
            f"{len(workload)} txns, total {result.total_time * 1000:.1f} ms, "
            f"max pending {result.max_pending}",
            [(i, v * 1000.0) for i, v in series],
            precision=1,
        ),
    )
    assert result.admitted == len(workload)


def test_intelligent_social_random(benchmark):
    workload = generate_workload(SPEC, ArrivalOrder.RANDOM, seed=0)

    def run():
        return run_is_entangled(workload, label="Random IS")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Figure 5 [Random IS]",
        f"{len(workload)} txns, total {result.total_time * 1000:.1f} ms",
    )
    assert result.admitted == len(workload)
