"""Ablation — the satisfiability phase transition (Section 6 discussion).

The paper argues that resource-allocation satisfiability is easy while
under-constrained, easy again when hopelessly over-constrained, and hard
only near the critical constraints-to-variables ratio — and that a quantum
database could detect the hard region and switch to aggressive grounding.
This benchmark sweeps random 3-SAT through the critical ratio (≈ 4.27) and
records DPLL effort and the satisfiable fraction, reproducing the
easy-hard-easy pattern.
"""

from __future__ import annotations

import random

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.report import format_table
from repro.solver.randomsat import CRITICAL_RATIO_3SAT, random_ksat
from repro.solver.sat import DPLLSolver

NUM_VARIABLES = 30 if BENCH_SCALE == "paper" else 18
INSTANCES_PER_RATIO = 20 if BENCH_SCALE == "paper" else 8
RATIOS = (1.0, 2.0, 3.0, CRITICAL_RATIO_3SAT, 5.5, 7.0)


def sweep():
    rng = random.Random(42)
    rows = []
    for ratio in RATIOS:
        decisions = []
        satisfiable = 0
        for _ in range(INSTANCES_PER_RATIO):
            cnf = random_ksat(NUM_VARIABLES, round(ratio * NUM_VARIABLES), rng=rng)
            solver = DPLLSolver()
            if solver.solve(cnf) is not None:
                satisfiable += 1
            decisions.append(solver.statistics.decisions)
        rows.append(
            (
                ratio,
                satisfiable / INSTANCES_PER_RATIO,
                sum(decisions) / len(decisions),
            )
        )
    return rows


def test_phase_transition(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: SAT phase transition",
        format_table(["clause/var ratio", "SAT fraction", "mean DPLL decisions"], rows),
    )
    by_ratio = {round(ratio, 2): (sat, effort) for ratio, sat, effort in rows}
    # Under-constrained instances are almost all satisfiable; heavily
    # over-constrained ones almost never are.
    assert by_ratio[1.0][0] >= 0.9
    assert by_ratio[7.0][0] <= 0.2
    # Search effort peaks around the critical ratio (easy-hard-easy).
    critical_effort = by_ratio[round(CRITICAL_RATIO_3SAT, 2)][1]
    assert critical_effort >= by_ratio[1.0][1]
    assert critical_effort >= by_ratio[7.0][1] * 0.5
