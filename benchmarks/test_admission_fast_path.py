"""Admission fast path — witness caching vs. from-scratch re-verification.

Runs the Figure 7 scalability workload (Random arrival order, entangled
pairs, per-flight partitioning) twice through the quantum database: once
with the per-partition witness cache enabled (the incremental admission
fast path) and once with it disabled (the seed behaviour: every admission
re-verifies the partition's composed body).  The two runs must make
identical accept/reject decisions — the fast path only changes *how much*
re-search admission costs, which the solution-cache counters report:

* ``composed_body_passes`` (verifications + full solves) must drop by at
  least 2x with the cache enabled;
* nearly every admission should be served from a witness (hits), with
  fallback searches only on partition-opening admissions and genuine
  invalidations.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.experiments.figure7 import default_parameters, paper_parameters
from repro.experiments.report import format_table
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database


def _parameters(smoke: bool):
    if BENCH_SCALE == "paper":
        return paper_parameters()
    parameters = default_parameters()
    if smoke:
        # Trim the sweep so the whole smoke selection stays within the
        # ~10 second `make check` budget.
        return type(parameters)(
            flight_counts=parameters.flight_counts[:2],
            rows_per_flight=parameters.rows_per_flight,
            ks=parameters.ks[:1],
            seed=parameters.seed,
        )
    return parameters


def _run(spec: FlightDatabaseSpec, *, k: int, seed: int, witness: bool, batch: bool):
    """One Figure 7 sweep point; returns (decisions, statistics, seconds)."""
    workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    qdb = QuantumDatabase(
        build_flight_database(spec),
        QuantumConfig(k=k, witness_cache=witness),
    )
    start = time.perf_counter()
    if batch:
        results = qdb.commit_batch(list(workload.transactions))
        decisions = [result.committed for result in results]
    else:
        decisions = [qdb.execute(t).committed for t in workload.transactions]
    qdb.ground_all()
    elapsed = time.perf_counter() - start
    return decisions, qdb.statistics_report(), elapsed


@pytest.mark.smoke
def test_admission_fast_path(benchmark, smoke_run):
    parameters = _parameters(smoke_run)
    rows = []
    total_on = total_off = 0

    def sweep():
        nonlocal total_on, total_off
        for num_flights in parameters.flight_counts:
            spec = FlightDatabaseSpec(
                num_flights=num_flights, rows_per_flight=parameters.rows_per_flight
            )
            for k in parameters.ks:
                cached, stats_on, time_on = _run(
                    spec, k=k, seed=parameters.seed, witness=True, batch=False
                )
                seeded, stats_off, time_off = _run(
                    spec, k=k, seed=parameters.seed, witness=False, batch=False
                )
                batched, stats_batch, time_batch = _run(
                    spec, k=k, seed=parameters.seed, witness=True, batch=True
                )
                # Identical accept/reject decisions on the same stream: the
                # witness cache is a pure fast path, and commit_batch is a
                # pure batching of the same admissions.
                assert cached == seeded == batched
                passes_on = stats_on["cache.composed_body_passes"]
                passes_off = stats_off["cache.composed_body_passes"]
                rows.append(
                    [
                        num_flights,
                        k,
                        len(cached),
                        passes_off,
                        passes_on,
                        stats_on["cache.witness_hits"],
                        stats_on["cache.witness_invalidations"],
                        time_off,
                        time_on,
                        time_batch,
                    ]
                )
                total_on += passes_on
                total_off += passes_off

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Admission fast path (Figure 7 workload)",
        format_table(
            [
                "#flights",
                "k",
                "#txns",
                "passes off",
                "passes on",
                "hits",
                "invalidations",
                "off (s)",
                "on (s)",
                "batch (s)",
            ],
            rows,
        ),
    )
    # The headline acceptance criterion: the witness cache performs at least
    # 2x fewer full composed-body passes than the seed path.
    assert total_on * 2 <= total_off, (total_on, total_off)
