"""The asyncio quantum-database server: sessions, queue, writer, executor.

This module is the concurrency boundary of the reproduction: every mutation
of the shared :class:`~repro.core.quantum_database.QuantumDatabase` flows
through **one** audited entry point — the single-writer admission loop —
while any number of client sessions submit work concurrently.  The design
follows directly from the paper's model (see ``docs/architecture.md``):

* **Single-writer admission queue.**  Sessions enqueue work items; one
  writer task dequeues them and runs the ordinary synchronous admission
  path, so accept/reject decisions are *identical* to calling
  :meth:`QuantumDatabase.execute` in the same arrival order — concurrency
  changes only the arrival interleaving, never the semantics.  The PR-1
  witness cache is what makes this single writer viable: the admission
  critical section is a witness-extension search, not a recomposition.

* **Group commit.**  When several commits are queued (concurrent clients),
  the writer drains them together and admits them via
  :meth:`QuantumDatabase.commit_batch` — one durability write (and one WAL
  group-commit flush) for the whole run instead of one per transaction.
  With a segmented engine running a group-fsync window
  (``DurabilityConfig(fsync=True, fsync_window_s=...)``) the whole drain
  additionally shares one *deferred* ``os.fsync``: the run's commits are
  appended and flushed inside the engine's ``sync_scope()`` and the
  writer blocks once, at scope exit, until the covering sync lands —
  only then are the submitters' futures resolved, so a client never sees
  an acknowledgement for a commit that is not yet on stable storage.

* **Concurrent grounding.**  Explicit grounding requests that span several
  partitions run their read-only *plan* phase (the grounding search) on the
  server's executor; partition independence (disjoint unifiable atoms ⇒
  disjoint row footprints) makes the plans commute, so the mutating apply
  phase can stay serial.  On a free-threaded build the searches truly run
  in parallel; under the GIL they interleave — the architecture boundary is
  identical either way.

* **Graceful shutdown.**  ``shutdown()`` stops accepting work, drains the
  queue (every already-enqueued item completes), resolves still-waiting
  grounding futures with cancellation, flushes the WAL and folds it into a
  snapshot checkpoint so recovery work stays bounded.
"""

from __future__ import annotations

import asyncio
import enum
import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, ContextManager, Mapping, Sequence

from repro.core.parser import parse_transaction
from repro.core.quantum_database import CommitResult, QuantumDatabase
from repro.core.quantum_state import GroundedTransaction
from repro.core.reads import ReadMode, ReadRequest
from repro.core.resource_transaction import ResourceTransaction
from repro.errors import (
    DurabilityError,
    QuantumError,
    SessionBackpressure,
    TenantBackpressure,
    TransactionError,
)
from repro.relational.wal import FileWalSink
from repro.server.session import GroundingTarget, Session
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog


class WorkKind(enum.Enum):
    """Kinds of items on the admission queue."""

    COMMIT = "COMMIT"
    BATCH = "BATCH"
    READ = "READ"
    WRITE = "WRITE"
    GROUND = "GROUND"
    GROUND_ALL = "GROUND_ALL"
    CHECKPOINT = "CHECKPOINT"


@dataclass
class WorkItem:
    """One unit of queued work plus the future its submitter awaits."""

    kind: WorkKind
    payload: Any
    future: "asyncio.Future[Any]"


#: Sentinel that tells the writer loop to exit after draining.
_SHUTDOWN = object()


@dataclass(frozen=True)
class CheckpointPolicy:
    """When a long-running server should checkpoint its WAL.

    Graceful shutdown always folds the WAL into a snapshot checkpoint; a
    server that runs for days must not wait that long, or recovery replay
    grows without bound.  The policy triggers a checkpoint at the writer's
    drain boundaries — a natural serialization point where no store
    transaction is active — whenever either threshold is exceeded.  A
    checkpoint that still finds transactions active is refused (counted,
    never fatal) and retried at the next boundary, exactly like the
    shutdown path refuses today.

    Attributes:
        max_wal_records: checkpoint once this many WAL records accumulated
            since the last checkpoint (``None``: no record-count trigger).
        max_interval_s: checkpoint once this much wall-clock time passed
            since the last checkpoint (``None``: no time trigger).
    """

    max_wal_records: int | None = None
    max_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_wal_records is None and self.max_interval_s is None:
            raise QuantumError(
                "a CheckpointPolicy needs max_wal_records and/or "
                "max_interval_s; for no periodic checkpoints leave "
                "ServerConfig.checkpoint_policy as None"
            )
        if self.max_wal_records is not None and self.max_wal_records < 1:
            raise QuantumError(
                "CheckpointPolicy.max_wal_records must be at least 1"
            )
        if self.max_interval_s is not None and self.max_interval_s < 0:
            raise QuantumError(
                "CheckpointPolicy.max_interval_s must not be negative"
            )

    def due(self, records_since: int, elapsed_s: float) -> bool:
        """True when either threshold has been reached.

        Never due with zero new records: a checkpoint then would rewrite
        the same snapshot (an O(database) no-op for recovery), so
        read-only traffic does not churn the WAL.
        """
        if records_since <= 0:
            return False
        if self.max_wal_records is not None and records_since >= self.max_wal_records:
            return True
        if self.max_interval_s is not None and elapsed_s >= self.max_interval_s:
            return True
        return False


@dataclass(frozen=True)
class ServerConfig:
    """Configuration of a :class:`QuantumServer`.

    Attributes:
        max_batch: upper bound on how many queued items the writer drains
            per cycle; contiguous commit items within a drain are admitted
            as one group commit.
        executor_workers: thread count of the grounding-plan executor.
            Only used for unsharded databases: with
            ``QuantumConfig(shards >= 2)`` grounding plans run on the
            owning shards' own executors (``QuantumConfig.shard_workers``
            threads each) and this pool is bypassed.
        queue_depth: admission queue capacity; enqueues beyond it apply
            backpressure (the session's coroutine waits).
        session_quota: per-session cap on queued-but-unprocessed items.
            ``None`` (default) keeps the global bound only; with a quota, a
            session that already has this many items in flight gets a typed
            :class:`~repro.errors.SessionBackpressure` error instead of
            silently occupying the shared queue and starving other clients.
        tenant_quota: per-tenant cap on queued-but-unprocessed items,
            summed over every session opened with the same ``tenant``
            identity (one rung above the session quota on the
            backpressure ladder).  A tenant that opens many sessions —
            e.g. many network connections — cannot multiply its share of
            the admission queue: beyond the quota, submissions get a typed
            :class:`~repro.errors.TenantBackpressure`.  Sessions without a
            tenant are exempt.  ``None`` (default) disables the cap.
        grounding_timeout_s: bound on waiting for each fanned-out grounding
            plan future (shard executors — thread or process — and the
            server's own pool alike).  ``None`` (default) waits forever.
            With a bound, a hung or slow worker resolves the submitter's
            future with a typed :class:`~repro.errors.GroundingTimeout`
            instead of wedging the single writer; the plan phase is
            read-only, so the database state is unchanged and the targeted
            transactions simply stay pending.
        checkpoint_policy: periodic WAL checkpointing for long-running
            servers (see :class:`CheckpointPolicy`); ``None`` checkpoints
            only on graceful shutdown.
        checkpoint_on_shutdown: fold the WAL into a snapshot checkpoint
            during graceful shutdown, bounding later recovery work.
        wal_path: when set, attach a durable JSON-lines WAL sink at this
            path on startup (group-commit flushed).  The path must be fresh
            or empty: an existing log is recovery input, so ``start()``
            refuses to overwrite it.
        wal_fsync: additionally ``fsync`` the sink at each durability point.
        durability: selects the durability engine.  ``None`` (and
            ``mode="legacy"``) keep today's behavior: the monolithic
            ``wal_path`` log with full-snapshot checkpoint folds.  With
            ``DurabilityConfig(mode="segmented", directory=...)`` the
            server attaches a :class:`~repro.storage.SegmentedWriteAheadLog`
            on startup (segments + manifest under the directory, delta
            checkpoints between periodic base snapshots, a background
            compactor with the same lifecycle discipline as the admission
            lanes).  The directory must be fresh: an existing segmented
            log is recovery input (``repro.storage.recover``), so
            ``start()`` refuses to adopt over it — mirroring the
            ``wal_path`` refusal.  Mutually exclusive with ``wal_path``.
            ``fsync_window_s`` adds the group-fsync commit window (the
            writer loop batches each drain's sync wait through the
            engine's ``sync_scope()``), and ``incremental_bases`` moves
            base-checkpoint folds onto the compactor — see
            :class:`~repro.storage.DurabilityConfig`.
    """

    max_batch: int = 64
    executor_workers: int = 2
    queue_depth: int = 1024
    session_quota: int | None = None
    tenant_quota: int | None = None
    grounding_timeout_s: float | None = None
    checkpoint_policy: CheckpointPolicy | None = None
    checkpoint_on_shutdown: bool = True
    wal_path: str | None = None
    wal_fsync: bool = False
    durability: DurabilityConfig | None = None

    def __post_init__(self) -> None:
        if self.session_quota is not None and self.session_quota < 1:
            raise QuantumError(
                "ServerConfig.session_quota must be at least 1 (or None): a "
                "zero quota would reject every submission forever"
            )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise QuantumError(
                "ServerConfig.tenant_quota must be at least 1 (or None): a "
                "zero quota would reject every submission forever"
            )
        if self.grounding_timeout_s is not None and self.grounding_timeout_s <= 0:
            raise QuantumError(
                "ServerConfig.grounding_timeout_s must be positive (or None "
                "to wait without bound)"
            )
        if (
            self.durability is not None
            and self.durability.segmented
            and self.wal_path is not None
        ):
            raise QuantumError(
                "ServerConfig.wal_path is the legacy monolithic log; a "
                "segmented DurabilityConfig brings its own directory — "
                "configure one or the other, not both"
            )


@dataclass
class ServerStatistics:
    """Server-level counters (exposed via ``statistics_report()``).

    Attributes:
        items: work items processed by the writer.
        commits: single-commit items admitted.
        batch_commits: transactions admitted through batch items.
        commit_runs: group commits performed (contiguous commit runs).
        max_commit_run: largest group commit.
        drains: writer drain cycles.
        max_drain: most items drained in one cycle.
        queue_high_water: deepest observed queue.
        reads / writes / grounds: non-commit items processed.
        cancelled_before_admission: commits withdrawn before admission.
        cancelled_after_admission: commits whose ack was cancelled after
            the admission already happened (the commit stands).
        grounding_futures_resolved: grounding notifications delivered.
        searches_observed / search_nodes_observed: grounding-search
            completions (and their node counts) streamed from the solver's
            observer hook.
        backpressure_rejections: submissions refused because their session
            exceeded its queue quota.
        tenant_rejections: submissions refused because their tenant's
            combined in-flight items exceeded the tenant quota.
        policy_checkpoints: checkpoints taken by the periodic policy.
        checkpoints_refused: policy checkpoints refused because a store
            transaction was still active (retried at the next boundary).
        checkpoints_deferred: refusals that armed (or consumed) a bounded
            retry at a later drain boundary — surfaced as
            ``durability.checkpoint_deferred`` in ``statistics_report()``
            so a policy that keeps losing the race is visible, never a
            silent skip.
    """

    items: int = 0
    commits: int = 0
    batch_commits: int = 0
    commit_runs: int = 0
    max_commit_run: int = 0
    drains: int = 0
    max_drain: int = 0
    queue_high_water: int = 0
    reads: int = 0
    writes: int = 0
    grounds: int = 0
    cancelled_before_admission: int = 0
    cancelled_after_admission: int = 0
    grounding_futures_resolved: int = 0
    searches_observed: int = 0
    search_nodes_observed: int = 0
    backpressure_rejections: int = 0
    tenant_rejections: int = 0
    policy_checkpoints: int = 0
    checkpoints_refused: int = 0
    checkpoints_deferred: int = 0


class QuantumServer:
    """An asyncio session layer over one :class:`QuantumDatabase`.

    Usable as an async context manager::

        qdb = QuantumDatabase()
        ...schema + data...
        async with QuantumServer(qdb) as server:
            async with server.session(client="mickey") as session:
                result = await session.commit(request)

    All sessions share the server's event loop; the server owns a writer
    task (the single mutation point) and a thread-pool executor for the
    read-only grounding plan phase.
    """

    def __init__(
        self, qdb: QuantumDatabase, config: ServerConfig | None = None
    ) -> None:
        self.qdb = qdb
        self.config = config or ServerConfig()
        self.statistics = ServerStatistics()
        self._queue: asyncio.Queue[WorkItem | object] | None = None
        self._writer_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._sessions: dict[int, Session] = {}
        self._session_ids = 0
        #: Queued-but-unprocessed items per tenant (the tenant-quota rung
        #: of the backpressure ladder); entries vanish at zero.
        self._tenant_in_flight: dict[str, int] = {}
        self._closed = False
        self._started = False
        #: The server's event loop (set by start()); grounding notifications
        #: fired from admission-lane threads are marshalled onto it, since
        #: asyncio futures must only be resolved from their loop's thread.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._grounding_waiters: list[tuple[GroundingTarget, asyncio.Future]] = []
        self._sink: FileWalSink | None = None
        # Periodic-checkpoint bookkeeping (see CheckpointPolicy): WAL length
        # and wall clock at the last checkpoint (or at startup), plus the
        # bounded retry budget armed when a due checkpoint gets refused.
        self._records_at_checkpoint = len(qdb.database.wal)
        self._last_checkpoint = time.monotonic()
        self._checkpoint_retries = 0
        # Chain the grounding notification hook in front of the database's
        # own housekeeping (pending-table delete, entanglement withdrawal).
        self._chained_on_grounded = qdb.state.on_grounded
        qdb.state.on_grounded = self._handle_grounded
        qdb.state.cache.search.observer = self._observe_search

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the server no longer accepts new work."""
        return self._closed

    async def start(self) -> "QuantumServer":
        """Start the writer task and executor (idempotent).

        Validation happens before any resource is created, so a failed
        start leaves the server fully un-started (a retry with a fixed
        configuration works; nothing leaks or hangs).
        """
        if self._started:
            return self
        if self.config.wal_path is not None:
            # Attaching seeds the sink from the in-memory log, so a durable
            # log from a previous (crashed) run must be recovered — never
            # silently truncated — before a server may reuse its path.
            try:
                existing = os.path.getsize(self.config.wal_path)
            except OSError:
                existing = 0
            if existing:
                raise QuantumError(
                    f"WAL file {self.config.wal_path!r} already holds records; "
                    "recover from it (WriteAheadLog.load + recover_database + "
                    "QuantumDatabase.recover) or point the server at a fresh "
                    "path instead of overwriting the durable log"
                )
        durability = self.config.durability
        segmented = durability is not None and durability.segmented
        if segmented and not isinstance(
            self.qdb.database.wal, SegmentedWriteAheadLog
        ):
            # Same refusal discipline as wal_path above: adopting seeds the
            # segments from the in-memory log, so a directory that already
            # holds a durable segmented log is recovery input, never
            # something to write over.
            engine = SegmentedWriteAheadLog(durability.directory, durability)
            try:
                engine.adopt(self.qdb.database.wal)
            except DurabilityError:
                engine.close()
                raise QuantumError(
                    f"segment directory {durability.directory!r} already "
                    "holds a durable log; recover from it "
                    "(repro.storage.recover + QuantumDatabase.recover) or "
                    "point the server at a fresh directory"
                ) from None
            self.qdb.database.wal = engine
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-grounding",
        )
        if self.config.wal_path is not None:
            self._sink = FileWalSink(
                self.config.wal_path, fsync=self.config.wal_fsync
            )
            self.qdb.database.wal.attach_sink(self._sink)
        if segmented and durability.compaction:
            wal = self.qdb.database.wal
            assert isinstance(wal, SegmentedWriteAheadLog)
            wal.start_compactor()
        self._loop = asyncio.get_running_loop()
        self._writer_task = self._loop.create_task(
            self._writer_loop(), name="repro-admission-writer"
        )
        self._started = True
        return self

    async def shutdown(self) -> None:
        """Graceful shutdown: drain the queue, flush + checkpoint the WAL.

        Already-enqueued work completes (FIFO order guarantees the shutdown
        sentinel is processed last); new submissions raise
        :class:`~repro.errors.QuantumError`.  Pending resource transactions
        stay pending — they are durable in the pending-transactions table,
        which the checkpoint snapshot preserves for recovery.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        assert self._queue is not None
        await self._queue.put(_SHUTDOWN)
        if self._writer_task is not None:
            await self._writer_task
        for session in list(self._sessions.values()):
            session._closed = True
        self._sessions.clear()
        for _target, waiter in self._grounding_waiters:
            if not waiter.done():
                waiter.cancel()
        self._grounding_waiters.clear()
        if self.config.checkpoint_on_shutdown:
            self.qdb.checkpoint()
        self.qdb.database.wal.flush()
        wal = self.qdb.database.wal
        if isinstance(wal, SegmentedWriteAheadLog):
            # One deterministic final sweep (the shutdown checkpoint just
            # superseded the pre-checkpoint segments), then stop the
            # compactor thread with the same join discipline as the
            # executors below.  The engine itself stays open: the database
            # outlives the server, exactly like the legacy sink.
            wal.compact_now()
            wal.stop_compactor()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        # Release the sharded database's lazily started shard executors as
        # well — joining thread pools and process pools alike (the queue
        # was already drained, so no plan future is outstanding); they
        # restart lazily if the database outlives the server and fans
        # grounding plans out again.
        self.qdb.close()
        # The sink stays attached (and open): the database outlives the
        # server, and post-shutdown synchronous mutations must keep landing
        # in the durable log for recovery to stay complete.
        # Un-hook: the database outlives the server and must not funnel
        # future groundings/searches through a dead instance.
        if self.qdb.state.on_grounded == self._handle_grounded:
            self.qdb.state.on_grounded = self._chained_on_grounded
        if self.qdb.state.cache.search.observer == self._observe_search:
            self.qdb.state.cache.search.observer = None

    async def __aenter__(self) -> "QuantumServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # -- sessions -----------------------------------------------------------

    def session(
        self, client: str | None = None, *, tenant: str | None = None
    ) -> Session:
        """Open a new client session.

        Args:
            client: requesting user name (defaulted into parsed
                transactions and entanglement bookkeeping).
            tenant: quota group this session bills against when
                ``ServerConfig.tenant_quota`` is set; sessions without a
                tenant are exempt from the tenant rung.
        """
        if self._closed:
            raise QuantumError("server is shut down")
        self._session_ids += 1
        session = Session(self, self._session_ids, client, tenant=tenant)
        self._sessions[session.session_id] = session
        return session

    def _forget_session(self, session: Session) -> None:
        self._sessions.pop(session.session_id, None)

    def _release_tenant(self, tenant: str) -> None:
        """Return a tenant quota slot once a queued item is resolved."""
        remaining = self._tenant_in_flight.get(tenant, 0) - 1
        if remaining > 0:
            self._tenant_in_flight[tenant] = remaining
        else:
            self._tenant_in_flight.pop(tenant, None)

    @property
    def session_count(self) -> int:
        """Number of currently open sessions."""
        return len(self._sessions)

    # -- submission helpers (called by sessions) ----------------------------

    @staticmethod
    def _parse(
        transaction: ResourceTransaction | str,
        parse_kwargs: Mapping[str, Any],
        *,
        client: str | None,
    ) -> ResourceTransaction:
        if isinstance(transaction, ResourceTransaction):
            return transaction
        kwargs = dict(parse_kwargs)
        if client is not None:
            kwargs.setdefault("client", client)
        return parse_transaction(transaction, **kwargs)

    async def _enqueue(
        self, kind: WorkKind, payload: Any, session: Session | None = None
    ) -> Any:
        if self._closed or not self._started:
            raise QuantumError(
                "server is not accepting work (not started or shut down)"
            )
        assert self._queue is not None
        # The backpressure ladder, cheapest rung first: the session quota
        # bounds one connection's pipeline, the tenant quota bounds the sum
        # over all of a tenant's sessions.  Both are checked before either
        # counter moves, so a refusal at any rung leaks nothing.
        quota = self.config.session_quota
        if session is not None and quota is not None:
            if session._in_flight >= quota:
                self.statistics.backpressure_rejections += 1
                session.statistics.backpressure += 1
                raise SessionBackpressure(
                    f"session #{session.session_id} has {session._in_flight} "
                    f"operations in flight (quota {quota}); retry after they "
                    "complete"
                )
        tenant_quota = self.config.tenant_quota
        tenant = session.tenant if session is not None else None
        if tenant is not None and tenant_quota is not None:
            in_flight = self._tenant_in_flight.get(tenant, 0)
            if in_flight >= tenant_quota:
                self.statistics.tenant_rejections += 1
                session.statistics.tenant_backpressure += 1
                raise TenantBackpressure(
                    f"tenant {tenant!r} has {in_flight} operations in flight "
                    f"across its sessions (quota {tenant_quota}); retry after "
                    "they complete"
                )
        # Count the submission against its quotas for its whole queued
        # lifetime — including time spent waiting on the global bound.
        if session is not None and quota is not None:
            session._in_flight += 1
        if tenant is not None and tenant_quota is not None:
            self._tenant_in_flight[tenant] = (
                self._tenant_in_flight.get(tenant, 0) + 1
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if session is not None and quota is not None:
            future.add_done_callback(session._release_in_flight)
        if tenant is not None and tenant_quota is not None:
            future.add_done_callback(
                lambda _future, tenant=tenant: self._release_tenant(tenant)
            )
        try:
            await self._queue.put(WorkItem(kind, payload, future))
        except BaseException:
            # Never enqueued: cancelling the future runs the registered
            # release callback, returning the quota slot.
            future.cancel()
            raise
        depth = self._queue.qsize()
        if depth > self.statistics.queue_high_water:
            self.statistics.queue_high_water = depth
        return await future

    async def _submit_commit(
        self, transaction: ResourceTransaction, session: Session
    ) -> CommitResult:
        return await self._enqueue(WorkKind.COMMIT, transaction, session)

    async def _submit_batch(
        self, transactions: list[ResourceTransaction], session: Session
    ) -> list[CommitResult]:
        return await self._enqueue(WorkKind.BATCH, transactions, session)

    async def _submit_read(
        self,
        request: ReadRequest | str,
        terms: Sequence[Any] | None,
        *,
        mode: ReadMode | None,
        select: Sequence[str] | None,
        limit: int | None,
        session: Session | None = None,
    ) -> list[dict[str, Any]]:
        return await self._enqueue(
            WorkKind.READ, (request, terms, mode, select, limit), session
        )

    async def _submit_write(
        self,
        operation: str,
        table: str,
        values: Sequence[Any],
        session: Session | None = None,
    ) -> None:
        return await self._enqueue(
            WorkKind.WRITE, (operation, table, values), session
        )

    async def _submit_ground(
        self, ids: list[int], session: Session | None = None
    ) -> list[GroundedTransaction]:
        return await self._enqueue(WorkKind.GROUND, ids, session)

    async def ground_all(self) -> list[GroundedTransaction]:
        """Ground every pending transaction (e.g. end of the booking day).

        Runs at a writer serialization point; the grounding searches for
        independent partitions are planned concurrently on the executor.
        """
        return await self._enqueue(WorkKind.GROUND_ALL, None)

    async def checkpoint(self) -> None:
        """Checkpoint the WAL at a writer serialization point."""
        await self._enqueue(WorkKind.CHECKPOINT, None)

    # -- the single-writer loop ---------------------------------------------

    async def _writer_loop(self) -> None:
        assert self._queue is not None
        shutting_down = False
        # With a time-based checkpoint policy, an idle server must still
        # reach its drain boundary: bound the queue wait by the policy
        # interval so `_maybe_checkpoint` runs even when no work arrives.
        policy = self.config.checkpoint_policy
        idle_wait = policy.max_interval_s if policy is not None else None
        while not shutting_down:
            if idle_wait is None:
                item = await self._queue.get()
            else:
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout=max(idle_wait, 0.05)
                    )
                except asyncio.TimeoutError:
                    self._maybe_checkpoint()
                    continue
            drained: list[WorkItem] = []
            while True:
                if item is _SHUTDOWN:
                    shutting_down = True
                else:
                    drained.append(item)  # type: ignore[arg-type]
                if shutting_down or len(drained) >= self.config.max_batch:
                    break
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if drained:
                self.statistics.drains += 1
                if len(drained) > self.statistics.max_drain:
                    self.statistics.max_drain = len(drained)
                self._process_drained(drained)
                self._maybe_checkpoint()
            # Yield so acked clients resume (and refill the queue) before
            # the next drain; without this the writer would starve them.
            await asyncio.sleep(0)

    #: Drain boundaries a refused-but-due checkpoint keeps retrying at,
    #: even if the policy itself would no longer fire (e.g. an external
    #: fold shrank the record count below the threshold in between).
    _CHECKPOINT_RETRY_BUDGET = 3

    def _maybe_checkpoint(self) -> None:
        """Run the periodic checkpoint policy at a drain boundary.

        Drain boundaries are writer serialization points, so normally no
        store transaction is active; if one somehow is (an application
        holding a synchronous ``db.begin()`` open across the boundary),
        the checkpoint is refused — counted in ``checkpoints_refused``
        *and* armed for a bounded retry at the next drain boundaries
        (``checkpoints_deferred``), so a policy losing the race is never
        a silent skip.
        """
        policy = self.config.checkpoint_policy
        if policy is None:
            return
        # An external fold (the application calling qdb.checkpoint()
        # directly) shrinks the WAL below our baseline; clamp so the
        # policy keeps counting fresh records instead of going silent.
        wal_length = len(self.qdb.database.wal)
        if wal_length < self._records_at_checkpoint:
            self._records_at_checkpoint = wal_length
        records_since = wal_length - self._records_at_checkpoint
        elapsed = time.monotonic() - self._last_checkpoint
        due = policy.due(records_since, elapsed)
        if not due and self._checkpoint_retries <= 0:
            return
        try:
            self.qdb.checkpoint()
        except TransactionError:
            self.statistics.checkpoints_refused += 1
            self.statistics.checkpoints_deferred += 1
            if due:
                self._checkpoint_retries = self._CHECKPOINT_RETRY_BUDGET
            else:
                self._checkpoint_retries -= 1
            return
        self._checkpoint_retries = 0
        self.statistics.policy_checkpoints += 1
        self._records_at_checkpoint = len(self.qdb.database.wal)
        self._last_checkpoint = time.monotonic()

    def _process_drained(self, drained: list[WorkItem]) -> None:
        index = 0
        while index < len(drained):
            item = drained[index]
            if item.kind is WorkKind.COMMIT:
                run = [item]
                while (
                    index + len(run) < len(drained)
                    and drained[index + len(run)].kind is WorkKind.COMMIT
                ):
                    run.append(drained[index + len(run)])
                self._process_commit_run(run)
                index += len(run)
            else:
                self._process_item(item)
                index += 1

    def _process_commit_run(self, run: list[WorkItem]) -> None:
        """Admit a contiguous run of single commits as one group commit."""
        live = []
        for item in run:
            self.statistics.items += 1
            if item.future.cancelled():
                # Withdrawn before admission: the transaction never enters
                # the system, exactly as if it had not been submitted.
                self.statistics.cancelled_before_admission += 1
            else:
                live.append(item)
        if not live:
            return
        self.statistics.commit_runs += 1
        self.statistics.commits += len(live)
        if len(live) > self.statistics.max_commit_run:
            self.statistics.max_commit_run = len(live)
        try:
            # The sync scope batches the run's deferred group fsync into
            # one wait at scope exit; the futures below resolve only after
            # it, so acknowledgement still implies stable storage.
            with self._durability_sync_scope():
                results = self.qdb.commit_batch([item.payload for item in live])
        except Exception as exc:  # pragma: no cover - defensive
            for item in live:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(live, results):
            if item.future.cancelled():
                # Too late to withdraw: the admission already happened and
                # the commit guarantee stands (it remains durable and will
                # be grounded normally); only the acknowledgement is lost.
                self.statistics.cancelled_after_admission += 1
            else:
                item.future.set_result(result)

    def _process_item(self, item: WorkItem) -> None:
        self.statistics.items += 1
        if item.future.cancelled():
            self.statistics.cancelled_before_admission += 1
            return
        try:
            result = self._dispatch(item)
        except Exception as exc:
            if not item.future.done():
                item.future.set_exception(exc)
            return
        if not item.future.cancelled():
            item.future.set_result(result)

    def _durability_sync_scope(self) -> ContextManager[None]:
        """The WAL's commit-sync batching scope (no-op without a window)."""
        scope = getattr(self.qdb.database.wal, "sync_scope", None)
        if scope is None:
            return nullcontext()
        return scope()

    def _dispatch(self, item: WorkItem) -> Any:
        if item.kind is WorkKind.BATCH:
            self.statistics.batch_commits += len(item.payload)
            with self._durability_sync_scope():
                return self.qdb.commit_batch(item.payload)
        if item.kind is WorkKind.READ:
            self.statistics.reads += 1
            request, terms, mode, select, limit = item.payload
            bindings = self.qdb.read(
                request, terms, mode=mode, select=select, limit=limit
            )
            # Isolation of read results: hand the session copies it owns.
            return [dict(binding) for binding in bindings]
        if item.kind is WorkKind.WRITE:
            operation, table, values = item.payload
            self.statistics.writes += 1
            if operation == "insert":
                self.qdb.insert(table, values)
            else:
                self.qdb.delete(table, values)
            return None
        if item.kind is WorkKind.CHECKPOINT:
            self.qdb.checkpoint()
            return None
        if item.kind is WorkKind.GROUND:
            self.statistics.grounds += 1
            return self.qdb.ground(
                item.payload,
                executor=self._executor,
                timeout_s=self.config.grounding_timeout_s,
            )
        if item.kind is WorkKind.GROUND_ALL:
            self.statistics.grounds += 1
            return self.qdb.ground_all(
                executor=self._executor,
                timeout_s=self.config.grounding_timeout_s,
            )
        raise QuantumError(f"unknown work item kind {item.kind!r}")

    # -- grounding notifications --------------------------------------------

    def _register_grounding_waiter(
        self, target: GroundingTarget
    ) -> "asyncio.Future[GroundedTransaction]":
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if isinstance(target, int):
            record = self.qdb.state.grounded_results.get(target)
            if record is not None:
                future.set_result(record)
                self.statistics.grounding_futures_resolved += 1
                return future
        self._grounding_waiters.append((target, future))
        return future

    @staticmethod
    def _matches(target: GroundingTarget, record: GroundedTransaction) -> bool:
        if isinstance(target, int):
            return record.transaction_id == target
        if isinstance(target, str):
            return any(
                statement.table == target for statement in record.statements
            )
        return bool(target(record))

    def _handle_grounded(self, record: GroundedTransaction) -> None:
        # The synchronous housekeeping (pending-table delete, entanglement
        # withdrawal) must run on the grounding thread, inside the store
        # guard's exclusive section.
        if self._chained_on_grounded is not None:
            self._chained_on_grounded(record)
        if not self._grounding_waiters:
            return
        # Waiter resolution touches asyncio futures, which are not
        # thread-safe.  With admission lanes a forced grounding (the k
        # bound) fires this callback on a lane thread — marshal the
        # resolution onto the server's loop instead of resolving inline.
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is not loop:
                loop.call_soon_threadsafe(self._resolve_grounding_waiters, record)
                return
        self._resolve_grounding_waiters(record)

    def _resolve_grounding_waiters(self, record: GroundedTransaction) -> None:
        """Resolve matching grounding futures (loop thread only)."""
        remaining: list[tuple[GroundingTarget, asyncio.Future]] = []
        for target, waiter in self._grounding_waiters:
            if waiter.done():
                continue
            if self._matches(target, record):
                waiter.set_result(record)
                self.statistics.grounding_futures_resolved += 1
            else:
                remaining.append((target, waiter))
        self._grounding_waiters = remaining

    def _observe_search(self, _formula, stats) -> None:
        self.statistics.searches_observed += 1
        self.statistics.search_nodes_observed += stats.nodes

    # -- reporting -----------------------------------------------------------

    def statistics_report(self) -> dict[str, Any]:
        """The database's flattened counters plus the server's own.

        Extends :meth:`QuantumDatabase.statistics_report` with a
        ``server.*`` section, so benchmarks can diff concurrent against
        synchronous runs with one mapping.
        """
        report = self.qdb.statistics_report()
        for name, value in vars(self.statistics).items():
            report[f"server.{name}"] = value
        report["server.sessions_open"] = self.session_count
        # The durability section is the database's (engine counters or the
        # legacy sink's); the deferred-checkpoint counter is server-side
        # bookkeeping, folded in here where the rest of the section lives.
        report["durability.checkpoint_deferred"] = (
            self.statistics.checkpoints_deferred
        )
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("running" if self._started else "new")
        return (
            f"<QuantumServer {state} sessions={self.session_count} "
            f"items={self.statistics.items}>"
        )
