"""Property tests: signature-routed admission ≡ exhaustive-scan admission.

The acceptance property of the sharding subsystem: over seeded arrival
streams — mixing constant-pinned and wildcard transactions, so merges
(including cross-shard ones) and the wildcard routing path all occur — the
``SignatureIndex``-routed ``merged_for`` must make decisions bit-identical
to the exhaustive pairwise-unification scan: same accept/reject outcomes,
same partition contents, same merge events, same groundings.  The property
is asserted on *both* shard backends: the thread pool (plans share the
writer's heap) and the process pool (plans travel as pickled payloads and
run against an order-preserving snapshot) must be indistinguishable from
the unsharded path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.partition import PartitionManager
from repro.core.quantum_state import PendingTransaction
from repro.core.resource_transaction import ResourceTransaction
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro import QuantumConfig, QuantumDatabase, parse_transaction
from repro.sharding import ShardedPartitionManager

SEEDS = [0, 1, 2, 3, 4]


def make_qdb(shards, *, k=4, flights=5, seats=3, backend="thread"):
    qdb = QuantumDatabase(
        config=QuantumConfig(k=k, shards=shards, shard_backend=backend)
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, flights + 1) for i in range(seats)],
    )
    return qdb


def seeded_stream(seed, *, length=24, flights=5, seats=3, wildcard_ratio=0.2):
    """Mixed pinned/wildcard booking stream (wildcards force merges)."""
    rng = random.Random(seed)
    stream = []
    for i in range(length):
        user = f"u{seed}_{i}"
        roll = rng.random()
        if roll < wildcard_ratio:
            stream.append(
                f"-Available(?f, ?s), +Bookings('{user}', ?f, ?s)"
                " :-1 Available(?f, ?s)"
            )
        elif roll < wildcard_ratio + 0.2:
            flight = rng.randrange(1, flights + 1)
            seat = f"s{rng.randrange(seats)}"
            stream.append(
                f"-Available({flight}, '{seat}'), "
                f"+Bookings('{user}', {flight}, '{seat}')"
                f" :-1 Available({flight}, '{seat}')"
            )
        else:
            flight = rng.randrange(1, flights + 1)
            stream.append(
                f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
                f" :-1 Available({flight}, ?s)"
            )
    return stream


def partition_fingerprint(manager):
    """Partition contents as a canonical set of transaction-id tuples."""
    return {p.transaction_ids() for p in manager.partitions}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [2, 3])
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_sharded_stream_equivalent_to_exhaustive(seed, shards, backend):
    """Same decisions, partitions, merges and groundings at every step."""
    plain = make_qdb(1)
    sharded = make_qdb(shards, backend=backend)
    # Parse once and feed the *same* transaction objects to both databases,
    # so transaction ids (and hence partition fingerprints) are comparable.
    for text in seeded_stream(seed):
        transaction = parse_transaction(text)
        plain_result = plain.execute(transaction)
        sharded_result = sharded.execute(transaction)
        assert plain_result.committed == sharded_result.committed
        assert partition_fingerprint(plain.state.partitions) == (
            partition_fingerprint(sharded.state.partitions)
        )
        assert plain.state.partitions.statistics.merges == (
            sharded.state.partitions.statistics.merges
        )
        assert plain.pending_count == sharded.pending_count
    plain_grounded = {
        g.transaction_id: g.valuation for g in plain.ground_all()
    }
    sharded_grounded = {
        g.transaction_id: g.valuation for g in sharded.ground_all()
    }
    assert plain_grounded == sharded_grounded
    sharded.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_merged_for_matches_exhaustive_scan_stepwise(seed):
    """Manager-level equivalence, including the wildcard-fallback path.

    Drives a plain :class:`PartitionManager` and a 3-shard
    :class:`ShardedPartitionManager` with the *same* synthetic entry
    stream (no solver involved) and checks every ``merged_for`` answer:
    same merge flag, same resulting pending sets — even for atoms carrying
    unhashable constants, which force the index's imprecise fallback.
    """
    rng = random.Random(seed)
    plain = PartitionManager()
    sharded = ShardedPartitionManager(3)
    sequence = 0
    for step in range(40):
        sequence += 1
        roll = rng.random()
        flight = rng.randrange(1, 7)
        if roll < 0.15:
            terms = [Variable("f"), Variable("s")]
        elif roll < 0.25:
            # Unhashable constant: exercises the imprecise fallback.
            terms = [Constant([flight]), Variable("s")]
        else:
            terms = [Constant(flight), Variable("s")]
        body = [Atom.body("Available", list(terms))]
        updates = [Atom.delete("Available", list(terms))]
        txn = ResourceTransaction(body=tuple(body), updates=tuple(updates))
        renamed = txn.rename_variables(f"@{txn.transaction_id}")
        atoms = tuple(renamed.body) + tuple(renamed.updates)

        results = []
        for manager in (plain, sharded):
            partition, merged = manager.merged_for(atoms)
            entry = PendingTransaction(
                original=txn, renamed=renamed, sequence=sequence
            )
            partition.append(entry)
            results.append((merged, partition.transaction_ids()))
        assert results[0] == results[1], f"diverged at step {step}"
        assert partition_fingerprint(plain) == partition_fingerprint(sharded)
    assert plain.statistics.merges == sharded.statistics.merges
    # The stream contained unhashable constants, so the sharded run must
    # have exercised the imprecise fallback at least once.
    assert sharded.index.statistics.imprecise_probes > 0
    sharded.close()


def test_cross_shard_merge_preserves_equivalence():
    """The targeted cross-shard case: pinned partitions on different shards
    merged by a wildcard arrival behave exactly like the unsharded scan."""
    plain = make_qdb(1)
    sharded = make_qdb(2)
    stream = [
        "-Available(1, ?s), +Bookings('a', 1, ?s) :-1 Available(1, ?s)",
        "-Available(2, ?s), +Bookings('b', 2, ?s) :-1 Available(2, ?s)",
        "-Available(3, ?s), +Bookings('c', 3, ?s) :-1 Available(3, ?s)",
        # Wildcard: unifies with all three → three-way (cross-shard) merge.
        "-Available(?f, ?s), +Bookings('d', ?f, ?s) :-1 Available(?f, ?s)",
        # Pinned follow-up lands in the merged partition on both sides.
        "-Available(2, ?s), +Bookings('e', 2, ?s) :-1 Available(2, ?s)",
    ]
    for text in stream:
        transaction = parse_transaction(text)
        assert (
            plain.execute(transaction).committed
            == sharded.execute(transaction).committed
        )
    assert partition_fingerprint(plain.state.partitions) == (
        partition_fingerprint(sharded.state.partitions)
    )
    assert sharded.state.partitions.statistics.cross_shard_merges >= 1
    assert len(plain.state.partitions) == len(sharded.state.partitions) == 1
    sharded.close()
