"""Per-shard admission lanes: the router-first concurrent admission pipeline.

Until PR 5 every admission ran on one serialized writer.  The paper's
partition independence makes that needlessly conservative: partitions on
different shards share no unifiable atom, hence no extensional row, so two
arrivals routed to *different* shards can run their witness-extension
searches — the expensive part of admission — and commit concurrently
without ever observing each other.  This module turns that observation into
an executable pipeline:

* :class:`AdmissionLane` — one worker thread plus one bounded queue per
  shard: the shard's *admission writer*.  A lane processes its arrivals
  strictly in dispatch order, so per-shard admission stays serial while
  different shards proceed in parallel.

* :class:`AdmissionController` — the dispatcher.  It classifies every
  arrival **at enqueue time** (router-first: the
  :class:`~repro.sharding.signature.SignatureIndex` answers "which
  partitions could this touch?" before any search runs) and walks a
  deterministic **conflict ladder**:

  1. ``OWNED`` — every candidate partition lives on one shard: dispatch to
     that shard's lane.
  2. ``NEW`` — no candidate at all: the arrival will create a fresh
     partition; dispatch to the least-loaded lane, which creates the
     partition on its *own* shard (``ShardedPartitionManager.lane_scope``).
  3. ``FOLLOW`` — the arrival unifies with an *in-flight* arrival still
     queued on some lane (its partition does not exist yet, so the index
     cannot know): dispatch behind it on the same lane, preserving arrival
     order for the would-be partition.
  4. ``BARRIER`` — candidates or in-flight conflicts span several shards,
     the arrival is entangled with a partner living on a *different* shard
     (partner-pair grounding would reach across lanes), a lane queue
     stayed saturated, or a test injector asked for one: the arrival
     becomes an **epoch barrier** — every lane is drained to quiescence,
     then the arrival runs serialized on the dispatcher, exactly like the
     old single writer.

  Entangled arrivals deserve a note: the paper's workloads pin both
  partners to the same flight, so their atoms unify and the ladder already
  sends them to the same lane — where registration and the pair grounding
  run in arrival order, exactly as on the serialized writer.  The barrier
  only fires for the exotic cases (partner pending on another shard, or
  the reverse partner in flight on another lane) where the match could
  otherwise fire on a nondeterministic side.

  Each rung only ever *escalates* (same lane → one lane → all lanes
  drained), so scheduling changes but decisions cannot: a single-shard
  arrival's search reads only rows its own partition's atoms can ground
  on, which no other lane's partition can touch (independence), and
  cross-shard arrivals see a fully quiesced system.  Arrival sequences are
  allocated by the dispatcher *in arrival order* before any dispatch, so
  the serialization-order key — and therefore every accept/reject decision
  and grounding valuation — is bit-identical to the serialized writer's.
  The randomized linearization harness
  (``tests/sharding/test_concurrent_admission_harness.py``) checks exactly
  that, over hundreds of seeded streams and schedules.

The dispatcher never holds the manager's routing lock while waiting on a
full lane queue: classification (lock held, short) and dispatch (lock
released, possibly waiting) are strictly separate phases, and a saturated
queue raises the typed :class:`~repro.errors.AdmissionLaneSaturated` after
the bounded wait — which the controller absorbs by escalating to the
barrier rung.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import AdmissionLaneSaturated, QuantumError
from repro.logic.terms import Constant

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.quantum_database import CommitResult, QuantumDatabase
    from repro.core.resource_transaction import ResourceTransaction
    from repro.logic.atoms import Atom
    from repro.sharding.manager import ShardedPartitionManager


class ConflictRung(Enum):
    """The conflict ladder's rungs, in escalation order."""

    OWNED = "OWNED"
    NEW = "NEW"
    FOLLOW = "FOLLOW"
    BARRIER = "BARRIER"


@dataclass
class AdmissionStatistics:
    """Counters of the lane-parallel admission pipeline.

    Attributes:
        lanes: number of per-shard admission lanes.
        lane_dispatches: arrivals dispatched to a lane (rungs OWNED / NEW /
            FOLLOW).
        lane_admissions: arrivals a lane finished processing.
        barrier_arrivals: arrivals that ran serialized at an epoch barrier.
        barrier_drains: times every lane was drained to quiescence (one per
            barrier arrival, plus the final drain of each batch).
        lane_conflicts: classifications influenced by an in-flight arrival
            (the FOLLOW rung, or a barrier forced by in-flight conflicts
            spanning lanes).
        saturation_barriers: dispatches that timed out on a full lane queue
            and escalated to the barrier rung.
        injected_barriers: barriers forced by a test injector.
        batches: lane-parallel batches processed.
        max_lane_queue: deepest lane queue observed at dispatch time.
    """

    lanes: int = 0
    lane_dispatches: int = 0
    lane_admissions: int = 0
    barrier_arrivals: int = 0
    barrier_drains: int = 0
    lane_conflicts: int = 0
    saturation_barriers: int = 0
    injected_barriers: int = 0
    batches: int = 0
    max_lane_queue: int = 0


@dataclass
class _LaneWork:
    """One dispatched arrival: the slot it fills plus its fixed sequence."""

    slot: int
    transaction: "ResourceTransaction"
    sequence: int
    slots: list
    renamed: "ResourceTransaction | None" = None


#: Pattern placeholder for a variable (or unorderable) argument position.
_WILD = object()

#: A conflict pattern: relation → constant rows of that relation's atoms.
_ConflictPattern = dict[str, list[tuple]]


def conflict_pattern(atoms: Sequence["Atom"]) -> _ConflictPattern:
    """A cheap conservative unification pattern for an arrival's atoms.

    Each atom collapses to its tuple of argument constants (variables
    become wildcards).  Two atoms can only unify if they name the same
    relation and every argument position is compatible — equal constants,
    or a wildcard on either side — so comparing patterns over-approximates
    the exact pairwise ``unifiable`` probe ``merged_for`` uses.  That is
    the right direction for the dispatcher's in-flight conflict test: a
    false positive merely escalates a rung (same lane or a barrier — never
    a different decision), while the exact probe per in-flight arrival
    would re-create the O(pending × atoms²) scan cost the signature index
    was built to eliminate.
    """
    pattern: _ConflictPattern = {}
    for atom in atoms:
        row = tuple(
            term.value if isinstance(term, Constant) else _WILD
            for term in atom.terms
        )
        pattern.setdefault(atom.relation, []).append(row)
    return pattern


def patterns_may_unify(first: _ConflictPattern, second: _ConflictPattern) -> bool:
    """True when some atom pair of the two patterns could unify."""
    for relation in first.keys() & second.keys():
        for mine in first[relation]:
            for theirs in second[relation]:
                if len(mine) == len(theirs) and all(
                    a is _WILD or b is _WILD or a == b
                    for a, b in zip(mine, theirs)
                ):
                    return True
    return False


#: Sentinel telling a lane worker to exit.
_STOP = object()


class AdmissionLane:
    """One shard's admission writer: a worker thread over a bounded queue.

    The lane serializes every mutation of its shard's partitions: arrivals
    are processed strictly in dispatch order, inside the manager's
    ``lane_scope`` (fresh partitions join this shard; ownership is
    asserted) and the cache's ``lane_scope`` (witness counters land in this
    lane's slice).  The queue is bounded so a flooded shard applies
    backpressure at dispatch time instead of buffering without limit.
    """

    def __init__(
        self,
        controller: "AdmissionController",
        shard_id: int,
        *,
        queue_depth: int,
    ) -> None:
        self.shard_id = shard_id
        self._controller = controller
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._thread = threading.Thread(
            target=self._worker,
            name=f"repro-admission-lane-{shard_id}",
            daemon=True,
        )
        self._thread.start()

    @property
    def depth(self) -> int:
        """Current queue depth (approximate, for statistics)."""
        return self._queue.qsize()

    def put(self, work: _LaneWork, timeout_s: float) -> None:
        """Enqueue one arrival, waiting at most ``timeout_s`` for a slot.

        Callers must *not* hold the routing lock: the whole point of the
        bounded wait is that a saturated lane slows only its own arrivals,
        never the router.  On timeout the typed
        :class:`~repro.errors.AdmissionLaneSaturated` is raised and the
        arrival was not enqueued.
        """
        try:
            self._queue.put(work, timeout=timeout_s)
        except queue.Full:
            raise AdmissionLaneSaturated(
                f"admission lane #{self.shard_id} stayed full for "
                f"{timeout_s}s (queue depth {self._queue.maxsize}); the "
                "arrival was not enqueued"
            ) from None

    def drain(self) -> None:
        """Block until every enqueued arrival has been fully processed."""
        self._queue.join()

    def close(self) -> None:
        """Stop the worker after it finishes everything already queued."""
        if not self._thread.is_alive():
            return
        self._queue.put(_STOP)
        self._thread.join()

    def _worker(self) -> None:
        while True:
            work = self._queue.get()
            try:
                if work is _STOP:
                    return
                self._controller._process_on_lane(self, work)
            finally:
                self._queue.task_done()


class AdmissionController:
    """Dispatcher of the lane-parallel admission pipeline.

    Owns one :class:`AdmissionLane` per shard and routes every arrival of a
    batch down the conflict ladder (see the module docstring).  Exactly one
    batch runs at a time (the session layer's single writer is the only
    caller; a lock enforces it for direct library use).

    Test instrumentation hooks:

    Attributes:
        before_admit: when set, called as ``before_admit(slot, shard_id)``
            on the lane thread right before an arrival is admitted — the
            linearization harness injects seeded jitter here to randomize
            lane interleavings.
        barrier_injector: when set, called as ``barrier_injector(slot,
            transaction)`` during classification; returning True forces the
            barrier rung (escalation never changes decisions, so injected
            barriers let the harness probe arbitrary epoch placements).
    """

    def __init__(
        self,
        qdb: "QuantumDatabase",
        manager: "ShardedPartitionManager",
        *,
        queue_depth: int = 256,
        dispatch_timeout_s: float = 5.0,
    ) -> None:
        if queue_depth < 1:
            raise QuantumError("admission lanes need a queue depth of at least 1")
        if dispatch_timeout_s <= 0:
            raise QuantumError("the lane dispatch timeout must be positive")
        self.qdb = qdb
        self.state = qdb.state
        self.manager = manager
        self.statistics = AdmissionStatistics(lanes=manager.shard_count)
        self._dispatch_timeout_s = dispatch_timeout_s
        self._lanes = tuple(
            AdmissionLane(self, shard.shard_id, queue_depth=queue_depth)
            for shard in manager.shards
        )
        #: slot → (conflict pattern, lane id) of arrivals dispatched but not
        #: finished; mutated only under the manager's routing lock.
        self._in_flight: dict[int, tuple[_ConflictPattern, int]] = {}
        #: (client, partner) → (lane id, slot) of the most recent partnered
        #: arrival in flight under that key; the partner-aware rung consults
        #: it so an entanglement match (and the registry's overwrite-on-
        #: duplicate behaviour) can only ever happen on one deterministic
        #: lane.  Same lock discipline as ``_in_flight``.
        self._in_flight_partners: dict[tuple[str, str], tuple[int, int]] = {}
        #: slot → in-flight partner key, for cleanup.
        self._partner_keys: dict[int, tuple[str, str]] = {}
        self._batch_lock = threading.Lock()
        self._closed = False
        self.before_admit: Callable[[int, int], None] | None = None
        self.barrier_injector: Callable[[int, "ResourceTransaction"], bool] | None = None

    @property
    def closed(self) -> bool:
        """True once the lanes were shut down."""
        return self._closed

    def warm(self) -> None:
        """Pre-start every shard executor the lanes will ship work to.

        On the process backend each lane ships its witness-extension
        searches to its shard's worker pool
        (:meth:`~repro.core.quantum_state.QuantumState._ship_admission_search`);
        without warming, the first arrival of each lane pays the worker
        spawn.  Benchmarks call this before their timing window; ordinary
        use can skip it (the pools start lazily).
        """
        for shard in self.manager.shards:
            shard.warm()

    @property
    def lanes(self) -> tuple[AdmissionLane, ...]:
        """The per-shard admission lanes (index == shard id)."""
        return self._lanes

    # -- the batch entry point ----------------------------------------------

    def commit_many(
        self, transactions: Sequence["ResourceTransaction"]
    ) -> tuple[list["CommitResult"], list[int]]:
        """Admit a batch through the lanes; returns (results, sequences).

        Semantically equivalent to admitting the batch on the serialized
        writer in order: sequences are allocated up front in arrival order,
        single-shard arrivals run on their shard's lane, conflicts escalate
        down the ladder, and the final drain leaves the system quiescent
        before the caller takes its single group-commit durability write.

        Raises:
            QuantumError: the controller was already closed.
            Exception: the first unexpected per-arrival error, re-raised
                after the lanes drained (rejections are results, never
                raises).
        """
        with self._batch_lock:
            # Checked under the batch lock: a concurrent close() waits for
            # the lock, so once we are past this line the lanes stay alive
            # for the whole batch.
            if self._closed:
                raise QuantumError("the admission controller is closed")
            slots: list[Any] = [None] * len(transactions)
            sequences: list[int] = [0] * len(transactions)
            self.statistics.batches += 1
            for slot, transaction in enumerate(transactions):
                sequence = self.state.allocate_sequence()
                sequences[slot] = sequence
                rung, lane_id, renamed = self._classify(slot, transaction)
                if rung is ConflictRung.BARRIER:
                    self._run_barrier(slot, transaction, sequence, slots, renamed)
                    continue
                lane = self._lanes[lane_id]
                depth = lane.depth
                if depth > self.statistics.max_lane_queue:
                    self.statistics.max_lane_queue = depth
                try:
                    lane.put(
                        _LaneWork(slot, transaction, sequence, slots, renamed),
                        self._dispatch_timeout_s,
                    )
                except AdmissionLaneSaturated:
                    # Escalate: forget the tentative dispatch and run the
                    # arrival as a barrier — slower, never different.
                    with self.manager.routing_lock:
                        self._forget_in_flight(slot)
                    self.statistics.saturation_barriers += 1
                    self._run_barrier(slot, transaction, sequence, slots, renamed)
                else:
                    self.statistics.lane_dispatches += 1
            self._drain_lanes()
            for outcome in slots:
                if isinstance(outcome, BaseException):
                    raise outcome
            return slots, sequences

    # -- the conflict ladder --------------------------------------------------

    def _classify(
        self, slot: int, transaction: "ResourceTransaction"
    ) -> tuple[ConflictRung, int | None, "ResourceTransaction"]:
        """Walk the conflict ladder for one arrival (routing lock held).

        Returns the rung, the target lane id for lane rungs, and the
        renamed transaction (computed for routing, reused by admission).
        Lane rungs also register the arrival in the in-flight table
        *before* the routing lock is released, so every later
        classification sees it.
        """
        renamed = transaction.rename_variables(f"@{transaction.transaction_id}")
        if self.barrier_injector is not None and self.barrier_injector(
            slot, transaction
        ):
            self.statistics.injected_barriers += 1
            return ConflictRung.BARRIER, None, renamed
        atoms = tuple(renamed.body) + tuple(renamed.updates)
        pattern = conflict_pattern(atoms)
        with self.manager.routing_lock:
            shard, candidates = self.manager.route(atoms)
            conflict_lanes = self._conflicting_lanes(pattern)
            if conflict_lanes:
                self.statistics.lane_conflicts += 1
            if shard is None:
                # Candidates span shards: rung 4 regardless of in-flight.
                return ConflictRung.BARRIER, None, renamed
            lanes = set(conflict_lanes)
            if candidates:
                lanes.add(shard.shard_id)
            if len(lanes) > 1:
                return ConflictRung.BARRIER, None, renamed
            if lanes:
                lane_id = lanes.pop()
                rung = (
                    ConflictRung.FOLLOW if conflict_lanes else ConflictRung.OWNED
                )
            else:
                # Fresh partition: pick the least-loaded lane, counting the
                # in-flight dispatches the router's shard sizes cannot see
                # yet (otherwise a burst of fresh arrivals — dispatched far
                # faster than lanes admit — all piles onto one lane).
                lane_id = self._least_loaded_lane()
                rung = ConflictRung.NEW
            partner_key: tuple[str, str] | None = None
            if transaction.client and transaction.partner:
                if not self._partner_match_stays_on_lane(transaction, lane_id):
                    return ConflictRung.BARRIER, None, renamed
                partner_key = (transaction.client, transaction.partner)
                self._in_flight_partners[partner_key] = (lane_id, slot)
                self._partner_keys[slot] = partner_key
            self._in_flight[slot] = (pattern, lane_id)
            return rung, lane_id, renamed

    def _partner_match_stays_on_lane(
        self, transaction: "ResourceTransaction", lane_id: int
    ) -> bool:
        """True when an entanglement match can only fire on ``lane_id``.

        Called under the routing lock for a partnered arrival.  The match
        completing this arrival's pair fires at whichever partner registers
        *second*; it triggers a pair grounding that mutates the partners'
        partitions.  That is lane-safe exactly when everything stays on one
        deterministic lane:

        * the reverse partner is already **waiting**: the match fires at
          *this* arrival — safe iff the waiting partner is pending in a
          partition owned by this lane's shard (the paper's same-flight
          pairs always are);
        * the reverse partner is **in flight** on some lane: registration
          order is only deterministic if it is this same lane (then the
          queue orders the pair);
        * the reverse partner is **absent**: this arrival only registers;
          the match will fire at the partner's own (later) admission, whose
          classification re-runs this check against *this* arrival's state.

        A *same-direction* duplicate (another in-flight arrival with this
        exact (client, partner) key) must also stay on this lane: the
        registry overwrites waiting entries per key, so which duplicate a
        later reverse partner matches depends on registration order —
        deterministic only when one lane serializes the duplicates.
        """
        key = (transaction.client, transaction.partner)
        duplicate = self._in_flight_partners.get(key)
        if duplicate is not None and duplicate[0] != lane_id:
            return False
        reverse = (transaction.partner, transaction.client)
        in_flight = self._in_flight_partners.get(reverse)
        if in_flight is not None:
            return in_flight[0] == lane_id
        waiting_id = self.qdb.entanglement.waiting.get(reverse)
        if waiting_id is None:
            return True
        located = self.manager.find(waiting_id)
        if located is None:
            # Waiting but no longer pending (should not happen; withdraw
            # runs on grounding) — escalate rather than guess.
            return False
        partition, _entry = located
        owner = self.manager.shard_for(partition.partition_id)
        return owner is not None and owner.shard_id == lane_id

    def _least_loaded_lane(self) -> int:
        """The lane a fresh partition should join (routing lock held).

        Owned-partition counts plus this batch's still-in-flight
        dispatches, tie-broken by lane id — deterministic given the same
        dispatch history, and only a scheduling choice either way (which
        shard owns a fresh partition never affects decisions).
        """
        in_flight_load: dict[int, int] = {}
        for _pattern, lane_id in self._in_flight.values():
            in_flight_load[lane_id] = in_flight_load.get(lane_id, 0) + 1
        return min(
            range(len(self._lanes)),
            key=lambda lane_id: (
                len(self.manager.shards[lane_id]) + in_flight_load.get(lane_id, 0),
                lane_id,
            ),
        )

    def _conflicting_lanes(self, pattern: _ConflictPattern) -> set[int]:
        """Lanes holding an in-flight arrival this one could unify with.

        Conservative (see :func:`conflict_pattern`): it may name a lane the
        exact scan would not, which only escalates a rung, never changes a
        decision — and it must never *miss* a real unification, which would
        let two lanes race on one would-be partition.
        """
        lanes: set[int] = set()
        for other_pattern, lane_id in self._in_flight.values():
            if lane_id in lanes:
                continue
            if patterns_may_unify(pattern, other_pattern):
                lanes.add(lane_id)
        return lanes

    # -- execution -------------------------------------------------------------

    def _process_on_lane(self, lane: AdmissionLane, work: _LaneWork) -> None:
        """Admit one arrival on its lane's thread (called by the worker)."""
        if self.before_admit is not None:
            self.before_admit(work.slot, lane.shard_id)
        try:
            with self.manager.lane_scope(lane.shard_id):
                with self.state.cache.lane_scope(lane.shard_id):
                    result, _sequence = self.qdb._admit_for_batch(
                        work.transaction,
                        sequence=work.sequence,
                        renamed=work.renamed,
                    )
        except BaseException as exc:  # noqa: BLE001 - marshalled to dispatcher
            work.slots[work.slot] = exc
        else:
            work.slots[work.slot] = result
        finally:
            with self.manager.routing_lock:
                self._forget_in_flight(work.slot)
                self.statistics.lane_admissions += 1

    def _forget_in_flight(self, slot: int) -> None:
        """Drop a slot's in-flight records (routing lock held)."""
        self._in_flight.pop(slot, None)
        partner_key = self._partner_keys.pop(slot, None)
        if partner_key is not None:
            # Only the entry this slot wrote: a later same-key duplicate
            # overwrites the map, and an earlier slot's cleanup must not
            # erase the duplicate's still-live record.
            current = self._in_flight_partners.get(partner_key)
            if current is not None and current[1] == slot:
                del self._in_flight_partners[partner_key]

    def _run_barrier(
        self,
        slot: int,
        transaction: "ResourceTransaction",
        sequence: int,
        slots: list,
        renamed: "ResourceTransaction | None" = None,
    ) -> None:
        """Rung 4: drain every lane, then admit serialized on the dispatcher."""
        self.statistics.barrier_arrivals += 1
        self._drain_lanes()
        result, _sequence = self.qdb._admit_for_batch(
            transaction, sequence=sequence, renamed=renamed
        )
        slots[slot] = result

    def _drain_lanes(self) -> None:
        """Wait for every lane to reach quiescence (queues empty, work done)."""
        self.statistics.barrier_drains += 1
        for lane in self._lanes:
            lane.drain()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut every lane down after it finishes its queued work.

        Waits for any in-flight batch first (the batch lock): stopping a
        lane mid-batch would strand work items behind the stop sentinel
        and hang the batch's final drain.  Closing is therefore always a
        clean cut between batches — no admission is abandoned half-way.
        """
        with self._batch_lock:
            if self._closed:
                return
            self._closed = True
        for lane in self._lanes:
            lane.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<AdmissionController {state} lanes={len(self._lanes)} "
            f"dispatched={self.statistics.lane_dispatches}>"
        )
