"""Figure 7 — scalability: total completion time vs. number of transactions.

Regenerates the Figure 7 sweep (database size grows, Random arrival order,
quantum database at several k values vs. the IS baseline).  Expected shape:
total time grows roughly linearly in the number of transactions thanks to
per-flight partitioning, and smaller k is cheaper.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure7 import (
    default_parameters,
    paper_parameters,
    run_figure7,
)
from repro.experiments.report import format_table

PARAMETERS = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_figure7_scalability(benchmark):
    result = benchmark.pedantic(lambda: run_figure7(PARAMETERS), rounds=1, iterations=1)
    labels = result.labels()
    rows = []
    for count, times in result.total_time_rows():
        rows.append([count] + [times.get(label, float("nan")) for label in labels])
    report("Figure 7", format_table(["#txns"] + [f"{l} (s)" for l in labels], rows))

    # Linear-ish scalability: time per transaction does not explode as the
    # database grows (allow generous slack for Python timing noise).
    for label, points in result.series.items():
        per_txn = [run.total_time / count for count, run in points]
        assert per_txn[-1] < per_txn[0] * 5 + 0.05
    # The quantum database with the smallest k is the cheapest quantum config.
    ks = sorted(k for k in PARAMETERS.ks)
    totals = {
        label: sum(run.total_time for _c, run in points)
        for label, points in result.series.items()
    }
    assert totals[f"k={ks[0]}"] <= totals[f"k={ks[-1]}"] * 1.5
    assert totals["IS"] <= totals[f"k={ks[-1]}"]
