"""Seeded-stream equivalence: branch-and-bound must not drift.

The admission-search redesign promises that the strategy selected through
``QuantumConfig(search=AdmissionSearchConfig(...))`` changes *how fast* an
admission decision is reached, never *what* is decided.  This suite reuses
the linearization harness's seeded stream generator and full fingerprint
(decisions, partition contents, pending set, invariant counters, grounding
valuations, final store state) to prove ``strategy="bnb"`` — per-shape fast
paths, cost bounds and trail-based undo included — is bit-identical to the
seed backtracking searcher over randomized arrival streams, on the
serialized writer, on lane-parallel admission, and on the process shard
backend where the config rides the shipped admission payload.
"""

from __future__ import annotations

import pytest

from test_concurrent_admission_harness import (
    assert_linearized,
    barrier_injector,
    jitter_scheduler,
    run_stream,
    seeded_stream,
)

from repro.solver.strategy import AdmissionSearchConfig

BNB = AdmissionSearchConfig(strategy="bnb")

#: Serialized-writer sweep: 3 cross-shard ratios x 25 seeds = 75 streams.
RATIOS = (0.0, 0.15, 0.4)
SEEDS = 25


@pytest.mark.parametrize("cross_ratio", RATIOS)
def test_bnb_matches_backtracking_on_serialized_writer(cross_ratio):
    """Same stream, same decisions and state — only the searcher differs."""
    for seed in range(SEEDS):
        transactions = seeded_stream(seed, cross_ratio=cross_ratio)
        reference = run_stream(transactions, shards=4, lanes=False)
        observed = run_stream(transactions, shards=4, lanes=False, search=BNB)
        assert_linearized(reference, observed, (cross_ratio, seed, "bnb"))


def test_bnb_matches_backtracking_under_lane_parallelism():
    """Strategy equivalence composes with the lane scheduler: jittered,
    barrier-injected lane runs under bnb still reproduce the serialized
    backtracking writer exactly."""
    for seed in range(8):
        transactions = seeded_stream(seed + 300, cross_ratio=0.2)
        reference = run_stream(transactions, shards=4, lanes=False)
        observed = run_stream(
            transactions,
            shards=4,
            lanes=True,
            search=BNB,
            scheduler=(jitter_scheduler(seed), barrier_injector(seed)),
        )
        assert_linearized(reference, observed, ("lanes+bnb", seed))


def test_bnb_matches_backtracking_on_process_backend():
    """The search config travels inside the shipped admission payload, so
    process-pool workers must reach the same decisions as the in-process
    backtracking reference."""
    for seed in range(3):
        transactions = seeded_stream(seed + 2000, cross_ratio=0.3)
        reference = run_stream(
            transactions, shards=2, lanes=False, backend="thread"
        )
        observed = run_stream(
            transactions, shards=2, lanes=False, backend="process", search=BNB
        )
        assert_linearized(reference, observed, ("process+bnb", seed))


def test_budgeted_bnb_stays_equivalent_when_budget_is_generous():
    """A node budget far above what the workload needs must be invisible:
    bounded search with headroom is still exact search."""
    budgeted = AdmissionSearchConfig(strategy="bnb", node_budget=100_000)
    for seed in range(6):
        transactions = seeded_stream(seed + 4000, cross_ratio=0.15)
        reference = run_stream(transactions, shards=4, lanes=False)
        observed = run_stream(
            transactions, shards=4, lanes=False, search=budgeted
        )
        assert_linearized(reference, observed, ("budgeted-bnb", seed))
