"""Key-enforced heap tables with incremental index maintenance."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import KeyViolationError, MissingRowError, SchemaError
from repro.relational.index import HashIndex
from repro.relational.row import Row
from repro.relational.schema import TableSchema


class Table:
    """A single relation: a set of rows plus its indexes.

    Tables enforce set semantics through the schema's primary key, which is
    the assumption the composition theorem of the paper relies on (Section
    3.2.1): the tuple deleted by one pending transaction can never be the
    tuple another pending transaction's body grounds on, unless they unify.

    The table keeps a unique index on the primary key and any number of
    secondary hash indexes, all maintained incrementally on insert/delete.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[tuple[Any, ...], Row] = {}
        self._primary = HashIndex(schema, schema.key, unique=True)
        self._secondary: dict[tuple[str, ...], HashIndex] = {}

    # -- metadata -----------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __contains__(self, row: Row) -> bool:
        existing = self._rows.get(row.key)
        return existing is not None and existing == row

    # -- index management ---------------------------------------------------

    def create_index(self, columns: Sequence[str]) -> HashIndex:
        """Create (or return an existing) secondary index on ``columns``."""
        key = tuple(columns)
        if key in self._secondary:
            return self._secondary[key]
        index = HashIndex(self.schema, key)
        index.rebuild(self._rows.values())
        self._secondary[key] = index
        return index

    def indexes(self) -> tuple[HashIndex, ...]:
        """All indexes on this table, primary first."""
        return (self._primary, *self._secondary.values())

    def best_index(self, bound_columns: Iterable[str]) -> HashIndex | None:
        """Return the most selective index usable given ``bound_columns``.

        An index is usable when all its columns appear in ``bound_columns``;
        the index with the largest number of columns is preferred.
        """
        bound = set(bound_columns)
        best: HashIndex | None = None
        for index in self.indexes():
            if index.covers(bound):
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best

    # -- mutation -----------------------------------------------------------

    def make_row(self, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Build a :class:`Row` for this table from positional or named values."""
        if isinstance(values, Mapping):
            return Row(self.schema, self.schema.values_from_mapping(values))
        return Row(self.schema, values)

    def insert(self, values: Sequence[Any] | Mapping[str, Any] | Row) -> Row:
        """Insert a row, enforcing the primary key.

        Raises:
            KeyViolationError: if a row with the same key already exists.
        """
        row = values if isinstance(values, Row) else self.make_row(values)
        if row.schema is not self.schema and row.schema != self.schema:
            raise SchemaError(
                f"row for table {row.table_name!r} inserted into {self.name!r}"
            )
        if row.key in self._rows:
            raise KeyViolationError(
                f"table {self.name!r} already contains key {row.key!r}"
            )
        self._rows[row.key] = row
        self._primary.add(row)
        for index in self._secondary.values():
            index.add(row)
        return row

    def delete(self, values: Sequence[Any] | Mapping[str, Any] | Row) -> Row:
        """Delete the row identified by the given values' key.

        Raises:
            MissingRowError: if no row with that key exists.
        """
        row = values if isinstance(values, Row) else self.make_row(values)
        existing = self._rows.pop(row.key, None)
        if existing is None:
            raise MissingRowError(
                f"table {self.name!r} has no row with key {row.key!r}"
            )
        self._primary.remove(existing)
        for index in self._secondary.values():
            index.remove(existing)
        return existing

    def delete_by_key(self, key: Sequence[Any]) -> Row:
        """Delete the row with primary key ``key``."""
        existing = self._rows.pop(tuple(key), None)
        if existing is None:
            raise MissingRowError(
                f"table {self.name!r} has no row with key {tuple(key)!r}"
            )
        self._primary.remove(existing)
        for index in self._secondary.values():
            index.remove(existing)
        return existing

    def clear(self) -> None:
        """Remove every row."""
        self._rows.clear()
        self._primary.clear()
        for index in self._secondary.values():
            index.clear()

    # -- lookup -------------------------------------------------------------

    def get(self, key: Sequence[Any]) -> Row | None:
        """Return the row with primary key ``key``, or None."""
        return self._rows.get(tuple(key))

    def contains_key(self, key: Sequence[Any]) -> bool:
        """True if a row with the given primary key exists."""
        return tuple(key) in self._rows

    def scan(self) -> Iterator[Row]:
        """Full scan over all rows (iteration order is insertion order)."""
        return iter(self._rows.values())

    def rows(self) -> list[Row]:
        """All rows as a list (convenience for tests and snapshots)."""
        return list(self._rows.values())

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> Iterator[Row]:
        """Yield rows matching equality on ``columns`` = ``values``.

        Uses the best available index, otherwise falls back to a scan.
        """
        index = self.best_index(columns)
        pairs = dict(zip(columns, values))
        if index is not None and set(index.columns) == set(columns):
            key = tuple(pairs[c] for c in index.columns)
            yield from index.lookup(key)
            return
        if index is not None:
            key = tuple(pairs[c] for c in index.columns)
            candidates: Iterable[Row] = index.lookup(key)
        else:
            candidates = self.scan()
        remaining = {c: v for c, v in pairs.items()}
        for row in candidates:
            if all(row[c] == v for c, v in remaining.items()):
                yield row

    # -- snapshot support ---------------------------------------------------

    def snapshot(self) -> list[tuple[Any, ...]]:
        """Return all row value tuples (used by recovery and possible worlds)."""
        return [row.values for row in self._rows.values()]

    def restore(self, snapshot: Iterable[Sequence[Any]]) -> None:
        """Replace the table contents with ``snapshot``."""
        self.clear()
        for values in snapshot:
            self.insert(values)

    def copy(self) -> "Table":
        """Deep copy of the table (rows are immutable and shared)."""
        clone = Table(self.schema)
        for columns in self._secondary:
            clone.create_index(columns)
        for row in self._rows.values():
            clone.insert(row)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} rows={len(self)}>"
