"""Shard execution backends: in-process threads or worker processes.

The thread backend (the default) runs each partition's read-only grounding
plan on a :class:`~concurrent.futures.ThreadPoolExecutor` owned by the
shard — cheap, shares the writer's heap, but the GIL serializes the actual
search work.  The process backend ships the plan to a
:class:`~concurrent.futures.ProcessPoolExecutor` worker instead, so
independent partitions' grounding searches run truly in parallel.

Nothing in the writer's heap is shared with a worker process, so the plan
phase must travel as data.  The lifecycle is:

1. **Payload** — the writer snapshots exactly what the pure plan function
   (:func:`repro.core.quantum_state.compute_grounding_plan`) reads: the
   partition's pending entries (whose renamed transactions *are* the
   composed body, factor by factor), its cached-solution witness state,
   the target ids, the serializability mode, and the rows of every
   relation the partition touches (in insertion order, with the same
   secondary indexes — row enumeration order is what makes the worker's
   backtracking search bit-identical to the writer's).  All of it is a
   frozen, picklable :class:`PlanPayload`.
2. **Worker** — :func:`plan_in_worker` unpickles the payload, rebuilds a
   throwaway :class:`~repro.relational.database.Database` and
   :class:`~repro.core.partition.Partition` from it, and runs the same
   module-level plan computation the in-process path uses.  No locks, no
   callbacks, no writer state.
3. **Result** — the worker returns a picklable :class:`PlanResult` carrying
   transaction *ids* (not entry objects) plus the grounding substitution;
   the writer maps the ids back onto its own pending entries and applies
   the plan serially, exactly as it applies thread-backend plans.

Decisions are bit-identical across backends: the snapshot preserves row
insertion order and index structure, the plan function is deterministic,
and the mutating apply phase never leaves the single writer.

The same shape covers the *admission* hot path.  An admission is a
witness-extension search (:func:`repro.core.solution_cache.compute_admission`)
followed by a serial commit; the search is read-only and pure, so a lane
can ship it to its shard's process pool as an :class:`AdmissionPayload`
(the partition's pending entries, its witness state, the renamed arrival,
and the same order-preserving table snapshots) and apply the returned
:class:`AdmissionResult` exactly as if the search had run inline.  The
result echoes the shipped pending ids, so the writer can validate that
the snapshot it searched is still the partition it is about to commit to
before trusting the decision — any mismatch falls back to the inline
search, which by purity returns the same answer.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.partition import Partition
from repro.core.serializability import SerializabilityMode
from repro.core.solution_cache import AdmissionProbe, Witness, compute_admission
from repro.errors import QuantumError
from repro.logic.substitution import Substitution
from repro.relational.database import Database
from repro.relational.schema import Column
from repro.solver.grounding import GroundingSearch
from repro.solver.strategy import AdmissionSearchConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.quantum_state import PendingTransaction
    from repro.core.resource_transaction import ResourceTransaction


class ShardBackend(enum.Enum):
    """Executor strategy of a shard (``QuantumConfig(shard_backend=...)``)."""

    THREAD = "thread"
    PROCESS = "process"

    @classmethod
    def coerce(cls, value: "ShardBackend | str") -> "ShardBackend":
        """Accept the enum itself or its lowercase string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(repr(member.value) for member in cls)
            raise QuantumError(
                f"unknown shard backend {value!r}; expected one of {names}"
            ) from None


@dataclass(frozen=True)
class TableSnapshot:
    """One relation's rows and structure, as shipped to a worker process.

    Attributes:
        name: relation name.
        columns: column declarations (types preserved).
        key: primary-key column names.
        indexes: column tuples of the secondary indexes; recreated in the
            worker so index-driven row enumeration matches the writer's.
        rows: row value tuples in the writer's insertion order — the order
            every scan, bucket and therefore grounding-search choice point
            enumerates.
    """

    name: str
    columns: tuple[Column, ...]
    key: tuple[str, ...]
    indexes: tuple[tuple[str, ...], ...]
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class PlanPayload:
    """Everything a worker process needs to plan one partition's grounding.

    Attributes:
        partition_id: the writer-side partition id (round-trip bookkeeping
            and error messages only; the worker's rebuilt partition gets a
            fresh local id).
        entries: the partition's full pending sequence, in serialization
            order.  The renamed transactions carried by the entries are the
            composed body, factor by factor.
        target_ids: ids of the transactions to ground now.
        serializability: STRICT or SEMANTIC.
        forced: whether this grounding was forced by the ``k`` bound.
        cached_solution: the partition's witness state — the last known
            satisfying substitution.  Shipped so the worker's rebuilt
            partition is a complete snapshot of the writer's; note the
            deterministic plan search does **not** consume it today (a
            witness-seeded search would change which grounding is found
            and break backend bit-identity), so it exists for
            introspection and for a future plan path that can use it on
            both backends symmetrically.
        tables: snapshots of every relation the partition touches.
    """

    partition_id: int
    entries: tuple["PendingTransaction", ...]
    target_ids: tuple[int, ...]
    serializability: SerializabilityMode
    forced: bool
    cached_solution: Substitution | None
    tables: tuple[TableSnapshot, ...]


@dataclass(frozen=True)
class PlanResult:
    """A worker process's plan, expressed in picklable ids and values.

    Attributes:
        partition_id: echo of :attr:`PlanPayload.partition_id`.
        satisfiable: False when no grounding exists (the writer raises the
            same invariant error the in-process path would).
        to_ground_ids: transaction ids to ground now, in execution order.
        remaining_ids: serialization order of the transactions that stay
            pending afterwards.
        reordered: whether the semantic mode fronted the targets.
        substitution: the grounding found (``None`` iff unsatisfiable).
        satisfied_atoms: per-transaction satisfied-optional counts at
            search time.
        forced: echo of :attr:`PlanPayload.forced`.
        search_nodes: grounding-search nodes the worker expanded (the
            writer folds this into its own search totals so the counters
            stay comparable across backends).
    """

    partition_id: int
    satisfiable: bool
    to_ground_ids: tuple[int, ...]
    remaining_ids: tuple[int, ...]
    reordered: bool
    substitution: Substitution | None
    satisfied_atoms: dict[int, int]
    forced: bool
    search_nodes: int = 0


def snapshot_tables(
    database: Database,
    relations: Iterable[str],
    cache: dict[str, TableSnapshot] | None = None,
) -> tuple[TableSnapshot, ...]:
    """Snapshot the given relations for shipping to a worker process.

    Relations the store has no table for are skipped: the grounding search
    treats a missing table as an empty relation, and the worker's rebuilt
    database reproduces exactly that by not creating it either.

    Args:
        database: the writer's store.
        relations: relation names to snapshot.
        cache: optional relation → snapshot memo.  Partitions of the same
            fan-out typically touch the same relations (every flight
            partition reads ``Available``/``Bookings``); sharing one cache
            across a ``ground()`` call's payloads walks each table once
            instead of once per group.  Safe because no mutation happens
            between the payload builds of one call (single-writer rule).
    """
    snapshots = []
    for relation in sorted(set(relations)):
        if cache is not None and relation in cache:
            snapshots.append(cache[relation])
            continue
        if not database.has_table(relation):
            continue
        table = database.table(relation)
        snapshot = TableSnapshot(
            name=relation,
            columns=tuple(table.schema.columns),
            key=tuple(table.schema.key),
            indexes=tuple(index.columns for index in table.indexes()[1:]),
            rows=tuple(row.values for row in table.scan()),
        )
        if cache is not None:
            cache[relation] = snapshot
        snapshots.append(snapshot)
    return tuple(snapshots)


def restore_database(snapshots: Sequence[TableSnapshot]) -> Database:
    """Rebuild a throwaway store from table snapshots (worker side).

    Rows are inserted directly at the table layer in snapshot order, so
    scans, hash-index buckets and every search built on them enumerate in
    the writer's order.
    """
    database = Database()
    for snapshot in snapshots:
        table = database.create_table(
            snapshot.name,
            list(snapshot.columns),
            list(snapshot.key) or None,
            indexes=snapshot.indexes,
        )
        for values in snapshot.rows:
            table.insert(values)
    return database


def build_payload(
    partition: Partition,
    targets: Sequence["PendingTransaction"],
    *,
    database: Database,
    serializability: SerializabilityMode,
    forced: bool,
    snapshot_cache: dict[str, TableSnapshot] | None = None,
) -> PlanPayload:
    """Assemble the picklable plan payload for one partition (writer side)."""
    return PlanPayload(
        partition_id=partition.partition_id,
        entries=partition.pending,
        target_ids=tuple(entry.transaction_id for entry in targets),
        serializability=serializability,
        forced=forced,
        cached_solution=partition.cached_solution,
        tables=snapshot_tables(database, partition.relations(), cache=snapshot_cache),
    )


def execute_payload(payload: PlanPayload) -> PlanResult:
    """Run the read-only plan computation for a shipped payload.

    This is the worker-side half of the process backend, but it is an
    ordinary function: the equivalence tests call it in-process to pin
    down that a payload round-trip plans exactly what the writer would.
    """
    from repro.core.quantum_state import compute_grounding_plan

    database = restore_database(payload.tables)
    search = GroundingSearch(database)
    partition = Partition(payload.entries)
    partition.cached_solution = payload.cached_solution
    wanted = set(payload.target_ids)
    targets = [entry for entry in payload.entries if entry.transaction_id in wanted]
    plan, substitution, satisfied = compute_grounding_plan(
        search, payload.serializability, partition, targets
    )
    return PlanResult(
        partition_id=payload.partition_id,
        satisfiable=substitution is not None,
        to_ground_ids=tuple(e.transaction_id for e in plan.to_ground),
        remaining_ids=tuple(e.transaction_id for e in plan.remaining_order),
        reordered=plan.reordered,
        substitution=substitution,
        satisfied_atoms=dict(satisfied),
        forced=payload.forced,
        search_nodes=search.totals.nodes,
    )


def plan_in_worker(blob: bytes) -> PlanResult:
    """Process-pool entry point: unpickle, plan, return the picklable result.

    A module-level function (pickled by reference) taking the payload as an
    explicit byte string: the writer pickles once, records the shipped
    size, and the executor's own argument pickling stays O(bytes) with no
    second object walk.
    """
    return execute_payload(pickle.loads(blob))


def dump_payload(payload: "PlanPayload | AdmissionPayload") -> bytes:
    """Pickle a payload with the highest protocol (writer side)."""
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


@dataclass(frozen=True)
class AdmissionPayload:
    """Everything a worker needs to run one arrival's admission search.

    Attributes:
        partition_id: the writer-side partition id (bookkeeping only).
        entries: the partition's pending sequence *before* the arrival, in
            serialization order.  The worker's rebuilt composition rewrites
            the arrival against exactly these update portions, so the new
            factor it searches is the one the writer would have searched.
        renamed: the arriving transaction, variables already renamed with
            its sequence suffix — renaming must happen on the writer, where
            the sequence was allocated.
        transaction_id: the arrival's id (echoed back for validation).
        cached_solution: the partition's last known satisfying substitution.
        witness_substitution: the substitution of the partition's
            structurally current witness, or ``None``; the worker extends
            it exactly as the inline fast path would.
        enable_witness: the cache's fast-path switch, shipped so the
            worker's miss/fallback counters match the inline path's.
        tables: snapshots of every relation the partition or the arrival
            touches (insertion order preserved — see :class:`PlanPayload`).
        search_config: the writer's admission-search strategy, shipped so
            the worker dispatches through the exact same
            ``compute_admission`` configuration — strategy selection must
            never depend on where the search runs.
    """

    partition_id: int
    entries: tuple["PendingTransaction", ...]
    renamed: "ResourceTransaction"
    transaction_id: int
    cached_solution: Substitution | None
    witness_substitution: Substitution | None
    enable_witness: bool
    tables: tuple[TableSnapshot, ...]
    search_config: AdmissionSearchConfig | None = None


@dataclass(frozen=True)
class AdmissionResult:
    """A worker's admission decision, expressed in picklable values.

    Attributes:
        partition_id: echo of :attr:`AdmissionPayload.partition_id`.
        transaction_id: echo of :attr:`AdmissionPayload.transaction_id`.
        pending_ids: ids of the entries the worker searched against.  The
            writer compares them with the partition's current pending ids
            before committing: if a merge or grounding slipped in between
            snapshot and commit (it cannot on a lane — the lane owns the
            partition — but the check makes the invariant local), the
            result is discarded and the search reruns inline.
        probe: the pure search outcome — decision substitution, witness
            flag, and cache counters, applied by the writer via
            ``SolutionCache.absorb_probe``.
        search_nodes: grounding-search nodes the worker expanded (folded
            into the writer's totals, like :attr:`PlanResult.search_nodes`).
    """

    partition_id: int
    transaction_id: int
    pending_ids: tuple[int, ...]
    probe: AdmissionProbe
    search_nodes: int = 0


def build_admission_payload(
    partition: Partition,
    renamed: "ResourceTransaction",
    transaction_id: int,
    *,
    database: Database,
    witness: Witness | None,
    enable_witness: bool,
    search_config: AdmissionSearchConfig | None = None,
    snapshot_cache: dict[str, TableSnapshot] | None = None,
) -> AdmissionPayload:
    """Assemble the picklable admission payload for one arrival (writer side).

    Must run under the store read guard: the snapshot has to be consistent
    with the witness state shipped alongside it.
    """
    relations = set(partition.relations()) | set(renamed.relations())
    return AdmissionPayload(
        partition_id=partition.partition_id,
        entries=partition.pending,
        renamed=renamed,
        transaction_id=transaction_id,
        cached_solution=partition.cached_solution,
        witness_substitution=None if witness is None else witness.substitution,
        enable_witness=enable_witness,
        tables=snapshot_tables(database, relations, cache=snapshot_cache),
        search_config=search_config,
    )


def execute_admission(payload: AdmissionPayload) -> AdmissionResult:
    """Run the read-only admission search for a shipped payload.

    The worker-side half of shipped admission, but an ordinary function:
    the equivalence tests call it in-process to pin down that a payload
    round-trip decides exactly what the inline ``SolutionCache.ensure``
    would.
    """
    database = restore_database(payload.tables)
    search = GroundingSearch(database)
    partition = Partition(payload.entries)
    partition.cached_solution = payload.cached_solution
    new_factor = partition.composition().preview_factor(payload.renamed)
    base_required: frozenset = frozenset()
    if payload.entries:
        base_required = frozenset().union(
            *(entry.renamed.hard_variables() for entry in payload.entries)
        )
    probe = compute_admission(
        search,
        database,
        composed=partition.composed_formula(),
        cached_solution=payload.cached_solution,
        witness_substitution=payload.witness_substitution,
        new_factor=new_factor,
        new_required=frozenset(payload.renamed.hard_variables()),
        base_required=base_required,
        enable_witness=payload.enable_witness,
        config=payload.search_config,
    )
    return AdmissionResult(
        partition_id=payload.partition_id,
        transaction_id=payload.transaction_id,
        pending_ids=tuple(entry.transaction_id for entry in payload.entries),
        probe=probe,
        search_nodes=search.totals.nodes,
    )


def admit_in_worker(blob: bytes) -> AdmissionResult:
    """Process-pool entry point for a shipped admission search."""
    return execute_admission(pickle.loads(blob))


def worker_ready() -> bool:
    """Trivial round-trip used by ``Shard.warm`` to pre-spawn pool workers."""
    return True
