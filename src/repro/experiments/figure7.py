"""Figure 7 — scalability: total time vs. number of transactions.

The paper grows the database from 10 to 100 flights (150 seats each), issues
as many transactions as there are seats in Random order, and reports total
completion time for k ∈ {20, 30, 40} and for the intelligent-social
baseline.  Expected shape: total time grows roughly linearly with the
number of transactions (thanks to per-flight partitioning), smaller k is
faster, and IS is fastest.

Table 2 (average coordination percentage per k) is computed from the same
runs; see :mod:`repro.experiments.table2`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import RunResult
from repro.experiments.report import format_table, print_report
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec


@dataclass(frozen=True)
class ScalabilityParameters:
    """Sweep parameters for Figure 7 / Table 2.

    Attributes:
        flight_counts: database sizes (number of flights) to sweep.
        rows_per_flight: seat rows per flight.
        ks: quantum database ``k`` values to compare.
        seed: RNG seed for the Random arrival order.
    """

    flight_counts: tuple[int, ...] = (2, 4, 6)
    rows_per_flight: int = 6
    ks: tuple[int, ...] = (2, 4, 8)
    seed: int = 0


@dataclass
class Figure7Result:
    """All scalability runs, keyed by (k or "IS", number of transactions)."""

    parameters: ScalabilityParameters
    #: label → list of (num_transactions, RunResult) in sweep order.
    series: dict[str, list[tuple[int, RunResult]]] = field(default_factory=dict)

    def total_time_rows(self) -> list[tuple[int, dict[str, float]]]:
        """Per sweep point, total time per label (seconds)."""
        by_count: dict[int, dict[str, float]] = {}
        for label, points in self.series.items():
            for count, result in points:
                by_count.setdefault(count, {})[label] = result.total_time
        return sorted(by_count.items())

    def labels(self) -> list[str]:
        """Series labels in insertion order."""
        return list(self.series)


def run_figure7(parameters: ScalabilityParameters | None = None) -> Figure7Result:
    """Run the scalability sweep."""
    parameters = parameters or default_parameters()
    result = Figure7Result(parameters=parameters)
    for num_flights in parameters.flight_counts:
        spec = FlightDatabaseSpec(
            num_flights=num_flights, rows_per_flight=parameters.rows_per_flight
        )
        workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=parameters.seed)
        num_transactions = len(workload)
        for k in parameters.ks:
            label = f"k={k}"
            run = run_quantum_entangled(workload, k=k, label=label)
            result.series.setdefault(label, []).append((num_transactions, run))
        is_run = run_is_entangled(workload)
        result.series.setdefault("IS", []).append((num_transactions, is_run))
    return result


def default_parameters() -> ScalabilityParameters:
    """Scaled-down default sweep (seconds, not hours, on a laptop)."""
    return ScalabilityParameters()


def paper_parameters() -> ScalabilityParameters:
    """The paper's sweep: 10–100 flights × 50 rows, k ∈ {20, 30, 40}."""
    return ScalabilityParameters(
        flight_counts=(10, 25, 50, 75, 100), rows_per_flight=50, ks=(20, 30, 40)
    )


def main(parameters: ScalabilityParameters | None = None) -> Figure7Result:
    """Run and print Figure 7's series."""
    result = run_figure7(parameters)
    labels = result.labels()
    rows = []
    for count, times in result.total_time_rows():
        rows.append([count] + [times.get(label, float("nan")) for label in labels])
    body = format_table(["#Transactions"] + [f"{l} time (s)" for l in labels], rows)
    print_report("Figure 7: scalability (total time vs number of transactions)", body)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
