"""Crash-point recovery: the segmented engine vs. legacy monolithic replay.

A seeded workload script (mixed auto-commit writes, multi-op
transactions, aborts and checkpoints — seeded like
``tests/sharding/test_concurrent_admission_harness.py``) is applied to
twin stores: one on the legacy monolithic :class:`FileWalSink` log, one
on the segmented engine.  A "crash" keeps only the on-disk state; both
sides are then recovered and must agree row-for-row — including after
every crash point the segmented engine has that the legacy log does not:

* a torn tail record (truncated / CRC-corrupted / garbage-suffixed);
* a manifest swap interrupted mid-rename (``MANIFEST.tmp`` left behind);
* a compactor killed mid-rewrite (orphan generation before the swap) or
  mid-cleanup (superseded generation after the swap).

Corruption inside a *sealed* segment is not a torn write and must be
fatal rather than silently healed.
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.errors import RecoveryError
from repro.relational.database import Database
from repro.relational.recovery import recover_database
from repro.relational.wal import FileWalSink, WriteAheadLog
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover
from repro.storage.manifest import MANIFEST_TMP_NAME, Manifest
from repro.storage.segment import SEGMENT_SUFFIX, encode_frame, segment_file_name

CRASH_SEEDS = range(8)
TORN_SEEDS = (3, 11, 27)

#: Tail damage a crash can inflict on the last (torn) write.  Each takes
#: the tail file's bytes and returns the post-crash bytes.
TAIL_DAMAGE = {
    "truncate-mid-frame": lambda data: data[:-3],
    "flip-crc-byte": lambda data: data[:-1] + bytes([data[-1] ^ 0xFF]),
    "partial-header": lambda data: data + b"\x00\x00\x01",
    "garbage-frame": lambda data: data + b"\x00\x00\x00\x40GARBAGE",
}


def make_schema() -> Database:
    database = Database()
    database.create_table("Seats", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Notes", ["id", "note"], key=["id"])
    return database


def generate_script(seed: int, *, ops: int = 120, checkpoint_every: int = 18, start: int = 0):
    """A deterministic workload script both twins apply identically."""
    rng = random.Random(seed)
    counter = itertools.count(start)
    live: list[tuple] = []
    script: list[tuple] = []
    for step in range(1, ops + 1):
        roll = rng.random()
        if roll < 0.45 or not live:
            n = next(counter)
            row = (n, f"s{n}")
            script.append(("insert", "Seats", row))
            live.append(row)
        elif roll < 0.65:
            row = live.pop(rng.randrange(len(live)))
            script.append(("delete", "Seats", row))
        elif roll < 0.85:
            n = next(counter)
            seat_row = (n, f"s{n}")
            script.append(
                (
                    "txn",
                    (
                        ("insert", "Seats", seat_row),
                        ("insert", "Notes", (n, f"note-{n}")),
                    ),
                )
            )
            live.append(seat_row)
        else:
            # Aborted transaction: its insert (and delete of a live row,
            # which the abort must undo) must leave no trace anywhere —
            # not in the store, not in the next delta checkpoint.
            n = next(counter)
            body = [("insert", "Seats", (n, f"tmp{n}"))]
            if live:
                body.append(("delete", "Seats", live[rng.randrange(len(live))]))
            script.append(("abort", tuple(body)))
        if step % checkpoint_every == 0:
            script.append(("checkpoint",))
    return script


def apply_script(database: Database, script) -> None:
    for op in script:
        kind = op[0]
        if kind == "insert":
            database.insert(op[1], op[2])
        elif kind == "delete":
            database.delete(op[1], op[2])
        elif kind == "txn":
            with database.begin() as txn:
                for verb, table, values in op[1]:
                    (txn.insert if verb == "insert" else txn.delete)(table, values)
        elif kind == "abort":
            txn = database.begin()
            for verb, table, values in op[1]:
                (txn.insert if verb == "insert" else txn.delete)(table, values)
            txn.abort()
        elif kind == "checkpoint":
            database.checkpoint()
        else:  # pragma: no cover - script generator bug
            raise AssertionError(f"unknown op {kind!r}")


def fingerprint(database: Database) -> dict:
    """Order-independent row-for-row image of the store."""
    return {
        name: sorted(rows, key=repr) for name, rows in database.snapshot().items()
    }


def build_twins(tmp_path, seed: int, **engine_overrides):
    """Twin stores after the same seeded workload; crash = stop using them."""
    script = generate_script(seed)
    legacy = make_schema()
    sink = FileWalSink(tmp_path / "legacy.wal")
    legacy.wal.attach_sink(sink)
    seg_dir = tmp_path / "segments"
    config = DurabilityConfig(
        mode="segmented",
        directory=str(seg_dir),
        **{"segment_max_records": 24, "base_interval": 3, **engine_overrides},
    )
    segmented = make_schema()
    engine = SegmentedWriteAheadLog(seg_dir, config)
    engine.adopt(segmented.wal)
    segmented.wal = engine
    apply_script(legacy, script)
    apply_script(segmented, script)
    return legacy, sink, segmented, engine, seg_dir


def recover_legacy(sink: FileWalSink) -> Database:
    """The reference: replay the monolithic JSON-lines log."""
    return recover_database(make_schema, WriteAheadLog.load(sink.read_text()))


def tail_file(seg_dir) -> str:
    manifest = Manifest.load(str(seg_dir))
    assert manifest is not None
    return os.path.join(str(seg_dir), manifest.tail.name)


def start_torn_transaction(legacy: Database, segmented: Database, seg_dir):
    """Leave both logs with a flushed, never-committed trailing write.

    Returns the open transactions (kept alive so nothing auto-finishes)
    after making sure the segmented tail segment holds at least one torn
    frame — if the torn write itself sealed the segment, another
    uncommitted row is added so in-place damage has a frame to hit.
    """
    txns = []
    for database in (legacy, segmented):
        txn = database.begin()
        txn.insert("Notes", (999_001, "torn"))
        database.wal.flush()
        txns.append(txn)
    extra = itertools.count(999_002)
    while os.path.getsize(tail_file(seg_dir)) == 0:
        txns[1].insert("Notes", (next(extra), "torn"))
        segmented.wal.flush()
    return txns


class TestCleanCrash:
    @pytest.mark.parametrize("compact", [False, True], ids=["raw", "compacted"])
    @pytest.mark.parametrize("seed", CRASH_SEEDS)
    def test_recovery_matches_legacy_replay(self, tmp_path, seed, compact):
        legacy, sink, segmented, engine, seg_dir = build_twins(tmp_path, seed)
        if compact:
            engine.compact_now()
        expected = fingerprint(segmented)
        recovered = recover(seg_dir, make_schema)
        reference = recover_legacy(sink)
        assert fingerprint(recovered) == expected
        assert fingerprint(recovered) == fingerprint(reference)
        assert recovered.wal.committed_transaction_ids() >= set()
        recovered.wal.close()

    def test_recovered_store_keeps_working_and_recovering(self, tmp_path):
        legacy, sink, _segmented, _engine, seg_dir = build_twins(tmp_path, 4)
        recovered = recover(seg_dir, make_schema)
        extra = generate_script(99, ops=30, start=10_000)
        apply_script(recovered, extra)
        apply_script(legacy, extra)
        second = recover(seg_dir, make_schema)
        assert fingerprint(second) == fingerprint(recovered)
        assert fingerprint(second) == fingerprint(recover_legacy(sink))
        second.wal.close()
        recovered.wal.close()


class TestTornTail:
    @pytest.mark.parametrize("damage", sorted(TAIL_DAMAGE))
    @pytest.mark.parametrize("seed", TORN_SEEDS)
    def test_torn_tail_truncated_to_legacy_state(self, tmp_path, seed, damage):
        legacy, sink, segmented, _engine, seg_dir = build_twins(tmp_path, seed)
        expected = fingerprint(segmented)  # torn txn must contribute nothing
        start_torn_transaction(legacy, segmented, seg_dir)
        path = tail_file(seg_dir)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(TAIL_DAMAGE[damage](data))

        with pytest.warns(RuntimeWarning, match="torn tail"):
            recovered = recover(seg_dir, make_schema)
        assert fingerprint(recovered) == expected
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        assert recovered.wal.statistics.torn_tail_truncations == 1
        recovered.wal.close()


class TestManifestCrashPoints:
    def test_interrupted_manifest_swap_is_discarded(self, tmp_path):
        legacy, sink, segmented, _engine, seg_dir = build_twins(tmp_path, 0)
        tmp = seg_dir / MANIFEST_TMP_NAME
        tmp.write_text('{"format": 1, "segments": [  ... the rename never ran')
        recovered = recover(seg_dir, make_schema)
        assert not tmp.exists()
        assert fingerprint(recovered) == fingerprint(segmented)
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()

    def test_compactor_killed_before_swap_drops_orphan_generation(self, tmp_path):
        legacy, sink, segmented, _engine, seg_dir = build_twins(tmp_path, 1)
        manifest = Manifest.load(str(seg_dir))
        entry = next(e for e in manifest.segments if e.sealed)
        orphan = seg_dir / segment_file_name(entry.index, entry.generation + 1)
        orphan.write_bytes(encode_frame(b"half a rewrite, never swapped in"))
        recovered = recover(seg_dir, make_schema)
        assert not orphan.exists()
        assert fingerprint(recovered) == fingerprint(segmented)
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()

    def test_compactor_killed_after_swap_drops_stale_generation(self, tmp_path):
        legacy, sink, segmented, engine, seg_dir = build_twins(tmp_path, 2)
        def on_disk():
            return {
                name
                for name in os.listdir(seg_dir)
                if name.endswith(SEGMENT_SUFFIX)
            }
        before = on_disk()
        assert engine.compact_now() > 0
        removed = sorted(before - on_disk())
        assert removed, "compaction should have dropped superseded files"
        # The swap happened but the crash beat the cleanup: the superseded
        # generation is back on disk, unreferenced by the manifest.
        stale = seg_dir / removed[0]
        stale.write_bytes(b"superseded generation the cleanup never removed")
        recovered = recover(seg_dir, make_schema)
        assert not stale.exists()
        assert fingerprint(recovered) == fingerprint(segmented)
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()


class TestSealedCorruption:
    def test_sealed_segment_corruption_is_fatal(self, tmp_path):
        _legacy, _sink, _segmented, _engine, seg_dir = build_twins(tmp_path, 5)
        manifest = Manifest.load(str(seg_dir))
        entry = next(e for e in manifest.segments if e.sealed)
        path = seg_dir / entry.name
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # inside the first frame's payload
        path.write_bytes(bytes(data))
        with pytest.raises(RecoveryError, match="corrupt"):
            recover(seg_dir, make_schema)


class TestIncrementalBaseCleanCrash:
    """The incremental-base lineage recovers row-identically to legacy."""

    @pytest.mark.parametrize("compact", [False, True], ids=["raw", "compacted"])
    @pytest.mark.parametrize("seed", (0, 3, 5))
    def test_recovery_matches_legacy_replay(self, tmp_path, seed, compact):
        legacy, sink, segmented, engine, seg_dir = build_twins(
            tmp_path, seed, incremental_bases=True, base_interval=2
        )
        if compact:
            assert engine.compact_now() > 0
            assert engine.statistics.bases_synthesized >= 1
        expected = fingerprint(segmented)
        recovered = recover(seg_dir, make_schema)
        assert fingerprint(recovered) == expected
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()


class TestSynthesizedBaseCrashPoints:
    """A crash anywhere in base synthesis never loses or duplicates rows."""

    def _twins(self, tmp_path, seed):
        return build_twins(
            tmp_path, seed, incremental_bases=True, base_interval=2
        )

    def test_fabricated_orphan_base_is_dropped(self, tmp_path):
        # The compactor wrote the synthesized base's segment file but died
        # before the manifest save: the file is an orphan, the old lineage
        # stays authoritative.
        legacy, sink, segmented, _engine, seg_dir = self._twins(tmp_path, 0)
        manifest = Manifest.load(str(seg_dir))
        orphan = seg_dir / segment_file_name(manifest.next_segment_index)
        orphan.write_bytes(
            encode_frame(b"a synthesized base the swap never published")
        )
        recovered = recover(seg_dir, make_schema)
        assert not orphan.exists()
        assert fingerprint(recovered) == fingerprint(segmented)
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()

    def test_crash_before_manifest_swap_leaves_old_lineage(
        self, tmp_path, monkeypatch
    ):
        # Same crash point, but hit for real: the manifest save inside the
        # synthesis pass fails, the pass propagates the error, and the
        # freshly written base file stays on disk unreferenced.
        legacy, sink, segmented, engine, seg_dir = self._twins(tmp_path, 3)
        expected = fingerprint(segmented)
        names_before = set(os.listdir(seg_dir))
        real_save = Manifest.save

        def crashing_save(self, directory, *, fsync=True):
            raise OSError("lost the disk before the rename")

        monkeypatch.setattr(Manifest, "save", crashing_save)
        with pytest.raises(OSError):
            engine.compact_once()
        monkeypatch.setattr(Manifest, "save", real_save)
        orphans = set(os.listdir(seg_dir)) - names_before
        assert orphans, "the synthesized base file should be on disk"
        # Simulated crash: the wedged engine is abandoned, not closed.
        recovered = recover(seg_dir, make_schema)
        for name in orphans:
            assert not (seg_dir / name).exists()
        assert fingerprint(recovered) == expected
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()

    def test_crash_after_install_keeps_duplicate_lsn_delta(self, tmp_path):
        # One pass installs the synthesized base and then the process dies
        # before any old segment is compacted away: the delta sharing the
        # base's LSN is still on disk and replay must prefer the base.
        legacy, sink, segmented, engine, seg_dir = self._twins(tmp_path, 5)
        assert engine.compact_once()
        assert engine.statistics.bases_synthesized == 1
        recovered = recover(seg_dir, make_schema)
        assert fingerprint(recovered) == fingerprint(segmented)
        assert fingerprint(recovered) == fingerprint(recover_legacy(sink))
        recovered.wal.close()


class TestFsyncWindowCrashPoints:
    """Crashing inside a group-fsync window: covered commits always
    survive; commits still awaiting their sync may be lost but never
    corrupt the log."""

    def _crashed_copy(self, tmp_path):
        """A windowed store copied mid-window.

        Returns ``(crash_dir, expected, watermark, cleanup)``: the copy
        holds every synced commit plus one flushed-but-unsynced commit
        (``Seats (2, 'unsynced')``) past the ``watermark`` byte offset;
        ``expected`` is the fingerprint at the last durability point.
        """
        import shutil
        import threading
        import time

        seg_dir = tmp_path / "segments"
        config = DurabilityConfig(
            mode="segmented",
            directory=str(seg_dir),
            fsync=True,
            fsync_window_s=30.0,
            segment_max_records=10_000,
        )
        database = make_schema()
        engine = SegmentedWriteAheadLog(seg_dir, config)
        engine.adopt(database.wal)
        database.wal = engine
        with engine.sync_scope():
            database.insert("Seats", (1, "synced"))
            database.insert("Notes", (10, "synced"))
            engine.flush()  # the durability point: commits above are synced
        expected = fingerprint(database)
        watermark = engine._tail.synced_size
        assert watermark == engine._tail.size

        def in_window_commit():
            database.insert("Seats", (2, "unsynced"))

        worker = threading.Thread(target=in_window_commit, daemon=True)
        worker.start()
        deadline = time.monotonic() + 5.0
        while not engine._sync_window.pending():
            assert time.monotonic() < deadline, "in-window commit never flushed"
            time.sleep(0.001)
        crash_dir = tmp_path / "crashed"
        shutil.copytree(seg_dir, crash_dir)

        def cleanup():
            engine.flush()  # release the blocked committer
            worker.join(timeout=5.0)
            engine.close()

        return crash_dir, expected, watermark, cleanup

    def test_sync_covered_state_survives_exactly(self, tmp_path):
        crash_dir, expected, watermark, cleanup = self._crashed_copy(tmp_path)
        try:
            # The crash loses precisely the unsynced suffix: what is left
            # is a clean log ending at the watermark — no torn record.
            path = tail_file(crash_dir)
            with open(path, "r+b") as handle:
                handle.truncate(watermark)
            recovered = recover(crash_dir, make_schema)
            assert fingerprint(recovered) == expected
            assert recovered.wal.statistics.torn_tail_truncations == 0
            recovered.wal.close()
        finally:
            cleanup()

    @pytest.mark.parametrize("damage", sorted(TAIL_DAMAGE))
    def test_damage_in_unsynced_window_never_tears_synced_commits(
        self, tmp_path, damage
    ):
        import warnings

        crash_dir, expected, watermark, cleanup = self._crashed_copy(tmp_path)
        try:
            path = tail_file(crash_dir)
            with open(path, "rb") as handle:
                data = handle.read()
            assert len(data) > watermark  # damage lands in the unsynced part
            with open(path, "wb") as handle:
                handle.write(TAIL_DAMAGE[damage](data))
            with warnings.catch_warnings():
                # Depending on where the damage fell the tail may or may
                # not be torn; both are legitimate crash shapes here.
                warnings.simplefilter("ignore", RuntimeWarning)
                recovered = recover(crash_dir, make_schema)
            got = fingerprint(recovered)
            # The in-window commit may survive (append-style damage after
            # its complete COMMIT frame) or be lost (damage inside its
            # frames) — never anything in between, and every sync-covered
            # commit is intact.
            in_window_row = (2, "unsynced")
            seats = [row for row in got["Seats"] if row != in_window_row]
            assert seats == expected["Seats"]
            assert got["Notes"] == expected["Notes"]
            recovered.wal.close()
        finally:
            cleanup()
