"""Tests for conjunctive query planning and execution."""

from __future__ import annotations

import pytest

from repro.errors import JoinLimitExceededError, SchemaError, UnknownTableError
from repro.relational.conditions import ColumnRef, Comparison, Constant
from repro.relational.database import Database
from repro.relational.planner import Planner, PlannerConfig
from repro.relational.query import ConjunctiveQuery, Var


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"], indexes=[["flight"]])
    database.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
    database.create_table("Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"])
    for seat in ("1A", "1B", "1C"):
        database.insert("Available", (1, seat))
    for seat in ("1A", "1B"):
        database.insert("Available", (2, seat))
    database.insert("Bookings", ("Goofy", 1, "1B"))
    for left, right in (("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")):
        database.insert("Adjacent", (1, left, right))
    return database


class TestSingleAtomQueries:
    def test_select_all_variables(self, db):
        query = ConjunctiveQuery()
        query.add_atom("Available", [1, Var("s")])
        result = db.execute(query)
        assert {b["s"] for b in result} == {"1A", "1B", "1C"}

    def test_constants_filter(self, db):
        query = ConjunctiveQuery()
        query.add_atom("Available", [2, Var("s")])
        assert len(db.execute(query)) == 2

    def test_limit(self, db):
        query = ConjunctiveQuery(limit=1)
        query.add_atom("Available", [Var("f"), Var("s")])
        assert len(db.execute(query)) == 1

    def test_projection(self, db):
        query = ConjunctiveQuery(select=["f"])
        query.add_atom("Available", [Var("f"), Var("s")])
        bindings = db.execute(query).bindings
        assert all(set(b) == {"f"} for b in bindings)

    def test_exists(self, db):
        query = ConjunctiveQuery()
        query.add_atom("Bookings", ["Goofy", Var("f"), Var("s")])
        assert db.exists(query)
        query2 = ConjunctiveQuery()
        query2.add_atom("Bookings", ["Mickey", Var("f"), Var("s")])
        assert not db.exists(query2)

    def test_repeated_variable_in_atom(self, db):
        db.insert("Adjacent", (1, "1X", "1X"))
        query = ConjunctiveQuery()
        query.add_atom("Adjacent", [Var("f"), Var("s"), Var("s")])
        result = db.execute(query)
        assert len(result) == 1 and result.first()["s"] == "1X"


class TestJoins:
    def test_two_way_join(self, db):
        # Available seats adjacent to Goofy's booking on the same flight.
        query = ConjunctiveQuery(select=["s"])
        query.add_atom("Bookings", ["Goofy", Var("f"), Var("g")])
        query.add_atom("Adjacent", [Var("f"), Var("s"), Var("g")])
        query.add_atom("Available", [Var("f"), Var("s")])
        result = db.execute(query)
        assert {b["s"] for b in result} == {"1A", "1C"}

    def test_negated_atom_anti_join(self, db):
        # Seats on flight 1 that are NOT booked.
        query = ConjunctiveQuery(select=["s"])
        query.add_atom("Available", [1, Var("s")])
        query.add_atom("Bookings", [Var("p"), 1, Var("s")], negated=True)
        # Unsafe: p only occurs in the negated atom.
        with pytest.raises(SchemaError):
            db.execute(query)

    def test_negated_atom_safe(self, db):
        db.insert("Available", (1, "1B-dup")) if False else None
        query = ConjunctiveQuery(select=["s"])
        query.add_atom("Available", [1, Var("s")])
        query.add_atom("Bookings", ["Goofy", 1, Var("s")], negated=True)
        result = db.execute(query)
        assert {b["s"] for b in result} == {"1A", "1C"}

    def test_condition(self, db):
        query = ConjunctiveQuery(
            select=["s"],
            condition=Comparison("!=", ColumnRef("s"), Constant("1A")),
        )
        query.add_atom("Available", [1, Var("s")])
        assert {b["s"] for b in db.execute(query)} == {"1B", "1C"}

    def test_cross_product_when_no_shared_variables(self, db):
        query = ConjunctiveQuery(select=["s", "g"])
        query.add_atom("Available", [2, Var("s")])
        query.add_atom("Bookings", ["Goofy", 1, Var("g")])
        assert len(db.execute(query)) == 2


class TestPlanner:
    def test_unknown_table(self, db):
        query = ConjunctiveQuery()
        query.add_atom("Nope", [Var("x")])
        with pytest.raises(UnknownTableError):
            db.execute(query)

    def test_join_limit(self, db):
        config = PlannerConfig(search_depth=3, join_limit=2)
        planner = Planner(config)
        query = ConjunctiveQuery()
        for _ in range(3):
            query.add_atom("Available", [Var("f"), Var("s")])
        with pytest.raises(JoinLimitExceededError):
            planner.plan(db, query)

    def test_plan_orders_selective_atom_first(self, db):
        planner = Planner(PlannerConfig(search_depth=10))
        query = ConjunctiveQuery()
        scan_atom = query.add_atom("Available", [Var("f"), Var("s")])
        keyed_atom = query.add_atom("Bookings", ["Goofy", Var("f"), Var("g")])
        plan = planner.plan(db, query)
        assert plan.order[0] is keyed_atom
        assert plan.order[1] is scan_atom

    def test_negated_atoms_placed_after_binding(self, db):
        planner = Planner()
        query = ConjunctiveQuery()
        query.add_atom("Available", [1, Var("s")])
        neg = query.add_atom("Bookings", ["Goofy", 1, Var("s")], negated=True)
        plan = planner.plan(db, query)
        assert plan.order[-1] is neg

    def test_search_depth_must_be_positive(self):
        from repro.errors import PlannerError

        with pytest.raises(PlannerError):
            PlannerConfig(search_depth=0)

    def test_query_must_have_atoms(self, db):
        with pytest.raises(SchemaError):
            db.execute(ConjunctiveQuery())

    def test_rows_examined_reported(self, db):
        query = ConjunctiveQuery()
        query.add_atom("Available", [Var("f"), Var("s")])
        result = db.execute(query)
        assert result.rows_examined >= len(result)
