"""Configuration of the durability engine (segmented vs. legacy)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DurabilityError

#: Durability modes selectable through :class:`DurabilityConfig`.
MODES = ("segmented", "legacy")


@dataclass(frozen=True)
class DurabilityConfig:
    """How the store makes its write-ahead log durable.

    ``mode="legacy"`` keeps the monolithic JSON-lines log (one file, one
    full-snapshot CHECKPOINT fold) — byte-compatible with every log
    written before the segmented engine existed, so old on-disk logs stay
    recoverable.  ``mode="segmented"`` switches to the log-structured
    engine (:class:`repro.storage.SegmentedWriteAheadLog`): CRC-framed
    records in sealed segments under ``directory``, a manifest with
    atomic rename-based updates, delta checkpoints whose pause is
    proportional to churn rather than store size, and background
    compaction of sealed segments.

    Attributes:
        mode: ``"segmented"`` or ``"legacy"``.
        directory: segment/manifest directory (segmented mode only; the
            directory is created if missing).
        segment_max_bytes: seal the live segment once it reaches this many
            bytes of framed records.
        segment_max_records: seal the live segment once it holds this many
            records.
        base_interval: number of delta checkpoints taken between full
            ``CHECKPOINT_BASE`` snapshots.  Larger values keep checkpoint
            pauses small for longer at the cost of a longer delta chain to
            replay on recovery.
        fsync: ``os.fsync`` the live segment at every group-commit flush
            (and the manifest at every update), so durability survives OS
            crashes, not just process crashes.  Off by default, matching
            :class:`~repro.relational.wal.FileWalSink`.
        fsync_window_s: group-fsync commit window (segmented mode, needs
            ``fsync=True``).  ``0`` (the default) keeps per-commit syncs:
            every commit flush is its own ``os.fsync``, byte-for-byte
            today's behavior.  A positive window defers the sync: commits
            append and flush immediately but share one ``os.fsync`` issued
            when the window (measured from the first uncovered commit)
            expires, and commit acknowledgement blocks until the covering
            sync lands — durability semantics are unchanged while
            fsyncs-per-commit drops well below 1 under load.
        incremental_bases: synthesize base checkpoints off the writer.
            When enabled, every checkpoint after the first base is a delta
            (``wants_delta_checkpoint()`` stays true), and once
            ``base_interval`` deltas have accrued the *compactor* folds
            the previous ``CHECKPOINT_BASE`` with the sealed delta chain
            into a fresh synthesized base, installed by an atomic manifest
            swap — no full-store snapshot fold ever runs on the writer
            after the first base, so the worst-case checkpoint pause is
            capped by churn too.
        compaction: run the background compactor thread while a server
            owns the engine (synchronous ``compact_now()`` remains
            available either way).
        compaction_interval_s: how often the idle compactor wakes to look
            for reclaimable sealed segments (it is also triggered
            explicitly at every seal and checkpoint).
    """

    mode: str = "legacy"
    directory: str | None = None
    segment_max_bytes: int = 256 * 1024
    segment_max_records: int = 512
    base_interval: int = 8
    fsync: bool = False
    fsync_window_s: float = 0.0
    incremental_bases: bool = False
    compaction: bool = True
    compaction_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise DurabilityError(
                f"unknown durability mode {self.mode!r}; expected one of {MODES}"
            )
        if self.mode == "segmented" and not self.directory:
            raise DurabilityError(
                "DurabilityConfig(mode='segmented') needs a directory for "
                "its segments and manifest"
            )
        if self.mode == "legacy" and self.directory:
            raise DurabilityError(
                "DurabilityConfig(mode='legacy') uses a single log file "
                "(ServerConfig.wal_path), not a segment directory"
            )
        if self.segment_max_bytes < 1 or self.segment_max_records < 1:
            raise DurabilityError(
                "segment_max_bytes and segment_max_records must be at least 1"
            )
        if self.base_interval < 1:
            raise DurabilityError(
                "base_interval must be at least 1 (delta checkpoints between "
                "base snapshots)"
            )
        if self.compaction_interval_s <= 0:
            raise DurabilityError("compaction_interval_s must be positive")
        if self.fsync_window_s < 0:
            raise DurabilityError("fsync_window_s must be zero or positive")
        if self.fsync_window_s > 0 and not self.fsync:
            raise DurabilityError(
                "fsync_window_s only defers syncs that fsync=True would "
                "issue; enable fsync to use a group-fsync window"
            )
        if self.fsync_window_s > 0 and self.mode != "segmented":
            raise DurabilityError(
                "fsync_window_s is a segmented-engine knob; the legacy "
                "sink syncs per flush"
            )
        if self.incremental_bases and self.mode != "segmented":
            raise DurabilityError(
                "incremental_bases needs mode='segmented' (the compactor "
                "synthesizes the bases)"
            )

    @property
    def segmented(self) -> bool:
        """True in segmented mode."""
        return self.mode == "segmented"
