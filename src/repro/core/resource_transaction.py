"""Resource transactions (Section 2 of the paper).

A resource transaction has two components:

* a *body*: a conjunction of relational atoms, some of which may be marked
  OPTIONAL (soft preferences), together with a ``CHOOSE 1`` clause, and
* an *update portion*: a set of blind single-tuple inserts (``+R(...)``) and
  deletes (``-R(...)``) executed once a grounding is fixed.

Structural rules enforced here:

* **range restriction** — every variable of the update portion must occur in
  the body (otherwise the deferred grounding could not determine it);
* the update portion contains only insert/delete atoms, the body only body
  atoms;
* every non-optional body atom contributes to the invariant the quantum
  database maintains; optional atoms are only consulted at grounding time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import InvalidTransactionError
from repro.logic.atoms import Atom, AtomKind, atoms_variables
from repro.logic.formula import Formula, atoms_to_formula
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.relational.dml import Delete, Insert, Statement

#: Monotone counter for auto-assigned transaction identifiers.
_txn_counter = itertools.count(1)


@dataclass(frozen=True)
class ResourceTransaction:
    """An immutable resource transaction ``U :-1 B``.

    Attributes:
        body: the body atoms ``B`` (kind BODY; may be optional).
        updates: the update atoms ``U`` (kind INSERT or DELETE).
        choose: the CHOOSE value; the paper and this reproduction always use
            1 ("one resource instance is desired").
        transaction_id: unique identifier, auto-assigned when omitted.
        client: name of the requesting user (used by workloads and
            entanglement bookkeeping; not semantically meaningful).
        partner: optional client name this transaction wants to coordinate
            with (entangled resource transactions).
    """

    body: tuple[Atom, ...]
    updates: tuple[Atom, ...]
    choose: int = 1
    transaction_id: int = field(default_factory=lambda: next(_txn_counter))
    client: str | None = None
    partner: str | None = None

    def __post_init__(self) -> None:
        body = tuple(self.body)
        updates = tuple(self.updates)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "updates", updates)
        self._validate()

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        if not self.updates:
            raise InvalidTransactionError(
                "a resource transaction needs at least one update atom"
            )
        if self.choose != 1:
            raise InvalidTransactionError(
                f"only CHOOSE 1 is supported (got CHOOSE {self.choose})"
            )
        for atom in self.body:
            if atom.kind is not AtomKind.BODY:
                raise InvalidTransactionError(
                    f"body atom {atom!r} must have kind BODY"
                )
        for atom in self.updates:
            if atom.kind not in (AtomKind.INSERT, AtomKind.DELETE):
                raise InvalidTransactionError(
                    f"update atom {atom!r} must be an insert or a delete"
                )
        update_vars = atoms_variables(self.updates)
        body_vars = atoms_variables(self.body)
        dangling = update_vars - body_vars
        if dangling:
            names = sorted(v.name for v in dangling)
            raise InvalidTransactionError(
                f"range restriction violated: update variables {names} do not "
                "occur in the body"
            )

    # -- introspection -------------------------------------------------------

    @property
    def hard_body(self) -> tuple[Atom, ...]:
        """Non-optional body atoms (the ones the invariant must satisfy)."""
        return tuple(a for a in self.body if not a.optional)

    @property
    def optional_body(self) -> tuple[Atom, ...]:
        """Optional body atoms (soft preferences)."""
        return tuple(a for a in self.body if a.optional)

    @property
    def inserts(self) -> tuple[Atom, ...]:
        """Insert atoms of the update portion."""
        return tuple(a for a in self.updates if a.kind is AtomKind.INSERT)

    @property
    def deletes(self) -> tuple[Atom, ...]:
        """Delete atoms of the update portion."""
        return tuple(a for a in self.updates if a.kind is AtomKind.DELETE)

    def variables(self) -> frozenset[Variable]:
        """All variables of the transaction."""
        return atoms_variables(self.body) | atoms_variables(self.updates)

    def hard_variables(self) -> frozenset[Variable]:
        """Variables of the non-optional body atoms and the update portion."""
        return atoms_variables(self.hard_body) | atoms_variables(self.updates)

    def relations(self) -> frozenset[str]:
        """Names of every relation the transaction touches."""
        return frozenset(a.relation for a in self.body) | frozenset(
            a.relation for a in self.updates
        )

    def hard_formula(self) -> Formula:
        """The conjunction of the non-optional body atoms as a formula."""
        return atoms_to_formula(self.hard_body)

    def full_formula(self) -> Formula:
        """The conjunction of all body atoms (hard and optional)."""
        return atoms_to_formula(self.body)

    # -- transformation ------------------------------------------------------

    def rename_variables(self, suffix: str) -> "ResourceTransaction":
        """Copy with every variable renamed (for namespace separation)."""
        return ResourceTransaction(
            body=tuple(a.rename_variables(suffix) for a in self.body),
            updates=tuple(a.rename_variables(suffix) for a in self.updates),
            choose=self.choose,
            transaction_id=self.transaction_id,
            client=self.client,
            partner=self.partner,
        )

    def ground_updates(
        self, grounding: Substitution | Mapping[str, Any]
    ) -> list[Statement]:
        """Translate the update portion into DML under a grounding.

        Args:
            grounding: either a ground :class:`Substitution` or a
                variable-name → value mapping covering the update variables.

        Returns:
            One :class:`Insert` or :class:`Delete` statement per update atom,
            in declaration order.

        Raises:
            InvalidTransactionError: if the grounding leaves an update
                variable unbound.
        """
        if isinstance(grounding, Substitution):
            theta = grounding
        else:
            theta = Substitution.from_valuation(dict(grounding))
        statements: list[Statement] = []
        for atom in self.updates:
            ground_atom = theta.apply_atom(atom)
            if not ground_atom.is_ground():
                unbound = sorted(v.name for v in ground_atom.variables())
                raise InvalidTransactionError(
                    f"grounding leaves update variables {unbound} unbound in {atom!r}"
                )
            values = ground_atom.ground_values()
            if atom.kind is AtomKind.INSERT:
                statements.append(Insert(atom.relation, values))
            else:
                statements.append(Delete(atom.relation, values))
        return statements

    def satisfied_optionals(
        self, valuation: Mapping[str, Any], oracle
    ) -> int:
        """Count optional atoms satisfied by ``valuation`` against ``oracle``.

        ``oracle`` has the :data:`repro.logic.formula.FactOracle` signature.
        Optional atoms with unbound variables count as unsatisfied.
        """
        count = 0
        for atom in self.optional_body:
            try:
                values = []
                for term in atom.terms:
                    if isinstance(term, Variable):
                        values.append(valuation[term.name])
                    else:
                        values.append(term.value)
            except KeyError:
                continue
            if oracle(atom.relation, tuple(values)):
                count += 1
        return count

    # -- presentation --------------------------------------------------------

    def __repr__(self) -> str:
        from repro.core.parser import format_transaction

        return f"<ResourceTransaction #{self.transaction_id} {format_transaction(self)}>"
