"""Tests for the composed-body formula AST."""

from __future__ import annotations

import pytest

from repro.errors import FormulaError
from repro.logic.atoms import Atom
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Negation,
    TRUE,
    atoms_to_formula,
    conjunction,
    disjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y = Variable("x"), Variable("y")

#: Fact oracle over a tiny fixed set of facts.
FACTS = {("A", (1, "s"))}


def oracle(relation, values):
    return (relation, tuple(values)) in FACTS


class TestEvaluation:
    def test_truth_constants(self):
        assert TRUE.evaluate({}, oracle) is True
        assert FALSE.evaluate({}, oracle) is False

    def test_atom_formula(self):
        formula = AtomFormula(Atom.body("A", [X, Y]))
        assert formula.evaluate({"x": 1, "y": "s"}, oracle)
        assert not formula.evaluate({"x": 2, "y": "s"}, oracle)

    def test_missing_binding_raises(self):
        formula = AtomFormula(Atom.body("A", [X, Y]))
        with pytest.raises(FormulaError):
            formula.evaluate({"x": 1}, oracle)

    def test_equality(self):
        assert Equality(X, Constant(3)).evaluate({"x": 3}, oracle)
        assert not Equality(X, Y).evaluate({"x": 1, "y": 2}, oracle)

    def test_connectives(self):
        formula = conjunction(
            [Equality(X, Constant(1)), disjunction([Equality(Y, Constant(2)), FALSE])]
        )
        assert formula.evaluate({"x": 1, "y": 2}, oracle)
        assert not formula.evaluate({"x": 1, "y": 3}, oracle)

    def test_negation(self):
        assert Negation(Equality(X, Constant(1))).evaluate({"x": 2}, oracle)


class TestIntrospection:
    def test_free_variables(self):
        formula = conjunction(
            [AtomFormula(Atom.body("A", [X, 1])), Negation(Equality(Y, Constant(2)))]
        )
        assert formula.free_variables() == {X, Y}

    def test_atoms_collection(self):
        formula = conjunction(
            [
                AtomFormula(Atom.body("A", [X])),
                disjunction([AtomFormula(Atom.body("B", [Y])), Equality(X, Y)]),
            ]
        )
        assert {a.relation for a in formula.atoms()} == {"A", "B"}

    def test_substitute(self):
        formula = conjunction(
            [AtomFormula(Atom.body("A", [X, Y])), Equality(X, Constant(1))]
        )
        grounded = formula.substitute(Substitution({X: 1, Y: "s"}))
        assert grounded.free_variables() == frozenset()
        assert grounded.evaluate({}, oracle)


class TestSimplification:
    def test_conjunction_flattening_and_units(self):
        formula = Conjunction((TRUE, Conjunction((Equality(X, Constant(1)), TRUE))))
        simplified = formula.simplify()
        assert simplified == Equality(X, Constant(1))

    def test_conjunction_with_false(self):
        assert Conjunction((Equality(X, Constant(1)), FALSE)).simplify() is FALSE

    def test_disjunction_with_true(self):
        assert Disjunction((Equality(X, Constant(1)), TRUE)).simplify() is TRUE

    def test_empty_connectives(self):
        assert Conjunction(()).simplify() is TRUE
        assert Disjunction(()).simplify() is FALSE

    def test_double_negation(self):
        inner = Equality(X, Constant(1))
        assert Negation(Negation(inner)).simplify() == inner

    def test_constant_equality_folding(self):
        assert Equality(Constant(1), Constant(1)).simplify() is TRUE
        assert Equality(Constant(1), Constant(2)).simplify() is FALSE
        assert Equality(X, X).simplify() is TRUE

    def test_atoms_to_formula(self):
        formula = atoms_to_formula(
            [Atom.insert("A", [X]), Atom.body("B", [Y], optional=True)]
        )
        # Update atoms are viewed as plain body atoms; flags are dropped.
        assert all(a.kind.name == "BODY" for a in formula.atoms())

    def test_operator_overloads(self):
        formula = Equality(X, Constant(1)) & Equality(Y, Constant(2))
        assert isinstance(formula, Conjunction)
        formula = Equality(X, Constant(1)) | Equality(Y, Constant(2))
        assert isinstance(formula, Disjunction)
        assert isinstance(~TRUE, Negation)
