"""Timing and coordination metrics shared by the experiment harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class Timer:
    """A context manager measuring wall-clock time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.elapsed = time.perf_counter() - self._start
        return False


def cumulative(series: Sequence[float]) -> list[float]:
    """Running sum of a series (the y-axis of Figure 5)."""
    total = 0.0
    result: list[float] = []
    for value in series:
        total += value
        result.append(total)
    return result


@dataclass
class RunResult:
    """Result of driving one workload against one system.

    Attributes:
        label: human-readable system/configuration name.
        op_times: per-operation wall-clock seconds, in execution order.
        coordination_percentage: percentage of the maximum possible
            coordination actually achieved (the paper's key benefit metric).
        coordinated_users: number of users seated adjacent to their partner.
        max_possible: the coordination denominator.
        max_pending: maximum number of simultaneously pending transactions
            observed (quantum runs only; 0 for baselines).
        admitted / rejected: transaction admission counters (quantum runs).
        extra: free-form additional measurements (e.g. read/update split).
    """

    label: str
    op_times: list[float] = field(default_factory=list)
    coordination_percentage: float = 0.0
    coordinated_users: int = 0
    max_possible: int = 0
    max_pending: int = 0
    admitted: int = 0
    rejected: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total wall-clock time across all operations."""
        return sum(self.op_times)

    def cumulative_times(self) -> list[float]:
        """Cumulative per-operation times (Figure 5's series)."""
        return cumulative(self.op_times)

    def mean_op_time(self) -> float:
        """Mean per-operation time."""
        return self.total_time / len(self.op_times) if self.op_times else 0.0


def coordination_percentage(coordinated_users: int, max_possible: int) -> float:
    """Coordination percentage with a safe zero denominator."""
    if max_possible <= 0:
        return 0.0
    return 100.0 * coordinated_users / max_possible


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    collected = list(values)
    return sum(collected) / len(collected) if collected else 0.0
