"""Every public configuration type, re-exported from one module.

The system is configured through a small family of frozen, validated
dataclasses that grew up in their home subpackages — the quantum database
core, the server, the network listener, the durability engine, and the
admission-search subsystem.  Applications that compose several of them
(which is the normal case: a served database wants at least a
:class:`QuantumConfig` and a :class:`ServerConfig`) previously had to
know the package layout; this module flattens it::

    from repro.configs import (
        AdmissionSearchConfig,
        QuantumConfig,
        ServerConfig,
    )

    qdb_config = QuantumConfig(
        shards=4,
        search=AdmissionSearchConfig(strategy="bnb"),
    )

Every config validates eagerly in ``__post_init__`` — a typo fails at
construction time, not at first use:

>>> from repro.configs import AdmissionSearchConfig
>>> AdmissionSearchConfig(strategy="quantum-annealing")
Traceback (most recent call last):
    ...
repro.errors.QuantumError: unknown admission search strategy 'quantum-annealing' (expected one of ('backtracking', 'bnb'))

The full set, by origin:

* :class:`QuantumConfig` (:mod:`repro.core.quantum_database`) — the
  quantum database itself: ``k`` bound, serializability, sharding, lanes,
  the witness cache, and the admission-search strategy.
* :class:`AdmissionSearchConfig` / :class:`SamplingConfig`
  (:mod:`repro.solver.strategy`) — which admission search runs and under
  what bounds; sampling is a strict opt-in.
* :class:`ServerConfig` / :class:`CheckpointPolicy`
  (:mod:`repro.server.service`) — the asyncio session layer: queue and
  quota bounds, executor workers, background checkpoint cadence.
* :class:`NetConfig` (:mod:`repro.server.net`) — the framed TCP listener:
  bind address, frame size bound, drain timeout.
* :class:`DurabilityConfig` (:mod:`repro.storage`) — the log-structured
  durability engine: segment size, delta-checkpoint cadence, compaction.
* :class:`PlannerConfig` (:mod:`repro.relational.planner`) — the
  extensional store's join planner (the MySQL-61-table-limit analogue).
"""

from __future__ import annotations

from repro.core.quantum_database import QuantumConfig
from repro.relational.planner import PlannerConfig
from repro.server.net import NetConfig
from repro.server.service import CheckpointPolicy, ServerConfig
from repro.solver.strategy import AdmissionSearchConfig, SamplingConfig
from repro.storage import DurabilityConfig

__all__ = [
    "AdmissionSearchConfig",
    "CheckpointPolicy",
    "DurabilityConfig",
    "NetConfig",
    "PlannerConfig",
    "QuantumConfig",
    "SamplingConfig",
    "ServerConfig",
]
