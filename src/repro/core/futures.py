"""Collection of fanned-out grounding-plan futures under one timeout rule.

Both plan fan-out paths — the sharded manager's ``plan_on_shards`` and
:meth:`repro.core.quantum_state.QuantumState.ground`'s plain-executor path —
collect their futures the same way: sequential ``result(timeout)`` per
future, cancel everything on expiry, and raise
:class:`~repro.errors.GroundingTimeout` before the caller applied any plan.
Keeping the loop in one place keeps the two paths' timeout semantics (and
their error message) from drifting apart.
"""

from __future__ import annotations

from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Sequence

from repro.errors import GroundingTimeout


def collect_plan_futures(
    futures: Sequence[Future], timeout_s: float | None, *, what: str
) -> list[Any]:
    """Resolve plan futures in submission order under a per-future bound.

    Args:
        futures: the fanned-out plan futures, in group order (results come
            back in the same order, keeping the serial apply phase
            deterministic).
        timeout_s: per-future bound; ``None`` waits indefinitely.
        what: label naming the fan-out path in the timeout message
            (e.g. ``"shard plan"``).

    Raises:
        GroundingTimeout: a future missed the bound.  Every remaining
            future is cancelled (already-running workers finish and are
            discarded), and because the plan phase is read-only no plan was
            applied — the targeted transactions simply stay pending.
    """
    results: list[Any] = []
    try:
        for future in futures:
            results.append(future.result(timeout=timeout_s))
    except FutureTimeoutError as exc:
        for future in futures:
            future.cancel()
        raise GroundingTimeout(
            f"{what} future exceeded {timeout_s}s; no plan was applied and "
            "the targeted transactions stay pending"
        ) from exc
    return results
