"""The process shard backend: payload round-trips, equivalence, timeouts.

The contract under test (see ``docs/architecture.md``, "Shard backends"):
a plan shipped to a worker process as a pickled
:class:`~repro.sharding.backend.PlanPayload` must come back as a
:class:`~repro.sharding.backend.PlanResult` describing *exactly* the plan
the in-process path would have computed — same serialization order, same
grounding substitution, same satisfied-optional counts — because the
snapshot preserves row insertion order and the plan function is pure.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro import QuantumConfig, QuantumDatabase, parse_transaction
from repro.errors import GroundingTimeout, QuantumError
from repro.sharding import ShardBackend, ShardedPartitionManager
from repro.sharding.backend import (
    AdmissionResult,
    admit_in_worker,
    build_admission_payload,
    build_payload,
    dump_payload,
    execute_admission,
    execute_payload,
    plan_in_worker,
    restore_database,
    snapshot_tables,
)


def make_qdb(shards, *, backend="thread", k=8, flights=5, seats=3):
    qdb = QuantumDatabase(
        config=QuantumConfig(k=k, shards=shards, shard_backend=backend)
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, flights + 1) for i in range(seats)],
    )
    return qdb


def pinned(user, flight):
    return parse_transaction(
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


class TestShardBackendEnum:
    def test_coerce_accepts_strings_and_enum(self):
        assert ShardBackend.coerce("thread") is ShardBackend.THREAD
        assert ShardBackend.coerce("PROCESS") is ShardBackend.PROCESS
        assert ShardBackend.coerce(ShardBackend.THREAD) is ShardBackend.THREAD

    def test_coerce_rejects_unknown(self):
        with pytest.raises(QuantumError, match="unknown shard backend"):
            ShardBackend.coerce("fibers")

    def test_config_validates_backend_eagerly(self):
        with pytest.raises(QuantumError, match="unknown shard backend"):
            QuantumConfig(shards=2, shard_backend="gpu")
        config = QuantumConfig(shards=2, shard_backend="process")
        assert config.shard_backend is ShardBackend.PROCESS


class TestSnapshotRoundTrip:
    def test_snapshot_preserves_rows_order_and_indexes(self):
        qdb = make_qdb(1)
        qdb.database.table("Available").create_index(["flight"])
        snapshots = snapshot_tables(qdb.database, ["Available", "NoSuchTable"])
        assert [s.name for s in snapshots] == ["Available"]
        restored = restore_database(snapshots)
        original = qdb.database.table("Available")
        copy = restored.table("Available")
        assert [r.values for r in copy.scan()] == [
            r.values for r in original.scan()
        ]
        assert [i.columns for i in copy.indexes()] == [
            i.columns for i in original.indexes()
        ]
        # The missing relation stays missing: the search treats both the
        # same way (no rows).
        assert not restored.has_table("NoSuchTable")

    def test_payload_pickle_round_trip(self):
        qdb = make_qdb(2)
        for flight in (1, 2, 3):
            assert qdb.execute(pinned(f"u{flight}", flight)).committed
        partition = qdb.state.partitions.partitions[0]
        payload = build_payload(
            partition,
            list(partition.pending),
            database=qdb.database,
            serializability=qdb.state.serializability,
            forced=False,
        )
        blob = dump_payload(payload)
        back = pickle.loads(blob)
        assert back.partition_id == partition.partition_id
        assert back.target_ids == tuple(partition.transaction_ids())
        assert [e.transaction_id for e in back.entries] == list(
            partition.transaction_ids()
        )
        qdb.close()


class TestPlanEquivalence:
    def test_shipped_plan_matches_in_process_plan(self):
        """execute_payload over the snapshot == plan_grounding in-process."""
        qdb = make_qdb(2)
        for flight in (1, 1, 2, 2, 3):
            assert qdb.execute(pinned(f"u{flight}_more", flight)).committed
        for partition in list(qdb.state.partitions.partitions):
            targets = list(partition.pending)
            local = qdb.state.plan_grounding(partition, targets)
            payload = build_payload(
                partition,
                targets,
                database=qdb.database,
                serializability=qdb.state.serializability,
                forced=False,
            )
            shipped = plan_in_worker(dump_payload(payload))
            assert shipped.satisfiable
            assert shipped.to_ground_ids == tuple(
                e.transaction_id for e in local.plan.to_ground
            )
            assert shipped.remaining_ids == tuple(
                e.transaction_id for e in local.plan.remaining_order
            )
            assert shipped.reordered == local.plan.reordered
            assert shipped.substitution == local.substitution
            assert dict(shipped.satisfied_atoms) == dict(local.satisfied_atoms)
        qdb.close()

    def test_resolve_plan_result_applies_worker_plan(self):
        """A PlanResult rehydrates onto the writer's entries and applies."""
        qdb = make_qdb(2)
        assert qdb.execute(pinned("alice", 1)).committed
        assert qdb.execute(pinned("bob", 1)).committed
        partition = qdb.state.partitions.partitions[0]
        payload = build_payload(
            partition,
            list(partition.pending),
            database=qdb.database,
            serializability=qdb.state.serializability,
            forced=False,
        )
        result = execute_payload(payload)
        planned = qdb.state._resolve_plan_result(partition, result)
        grounded = qdb.state.apply_grounding(planned)
        assert {g.transaction_id for g in grounded} == set(result.to_ground_ids)
        assert qdb.pending_count == 0
        qdb.close()


class TestProcessBackendEndToEnd:
    def test_ground_all_identical_across_backends(self):
        """Unsharded, thread-sharded and process-sharded databases admit and
        ground a pinned stream to identical valuations."""
        databases = {
            "unsharded": make_qdb(1),
            "thread": make_qdb(2, backend="thread"),
            "process": make_qdb(2, backend="process"),
        }
        stream = [pinned(f"u{i}", 1 + i % 4) for i in range(8)]
        decisions = {name: [] for name in databases}
        for transaction in stream:
            for name, qdb in databases.items():
                decisions[name].append(qdb.execute(transaction).committed)
        assert decisions["unsharded"] == decisions["thread"]
        assert decisions["unsharded"] == decisions["process"]
        groundings = {
            name: {g.transaction_id: g.valuation for g in qdb.ground_all()}
            for name, qdb in databases.items()
        }
        assert groundings["unsharded"] == groundings["thread"]
        assert groundings["unsharded"] == groundings["process"]
        report = databases["process"].statistics_report()
        assert report["sharding.backend"] == "process"
        assert report["sharding.worker_round_trips"] > 0
        assert report["sharding.plan_payload_bytes"] > 0
        thread_report = databases["thread"].statistics_report()
        assert thread_report["sharding.backend"] == "thread"
        assert thread_report["sharding.worker_round_trips"] == 0
        for qdb in databases.values():
            qdb.close()

    def test_unsatisfiable_later_group_applies_nothing(self):
        """Regression: a later group's unsatisfiable PlanResult must fail
        *before* any earlier group's plan is applied, matching the thread
        backend (which raises in the plan phase).  Previously the apply
        loop interleaved resolution and application, so earlier groups
        were already grounded when the bad result raised."""
        import dataclasses

        from repro.errors import QuantumStateError

        qdb = make_qdb(2, backend="process")
        for flight in (1, 2, 3, 4):
            assert qdb.execute(pinned(f"u{flight}", flight)).committed
        manager = qdb.state.partitions
        original = manager.plan_on_shards

        def sabotage_last(groups, plan, **kwargs):
            planned = original(groups, plan, **kwargs)
            planned[-1] = dataclasses.replace(
                planned[-1], satisfiable=False, substitution=None
            )
            return planned

        manager.plan_on_shards = sabotage_last
        before = qdb.pending_count
        assert before >= 2  # multiple groups, so there is an "earlier" one
        with pytest.raises(QuantumStateError, match="no grounding exists"):
            qdb.ground_all()
        assert qdb.pending_count == before
        manager.plan_on_shards = original
        assert len(qdb.ground_all()) == before
        qdb.close()

    def test_process_pool_shuts_down_on_close(self):
        qdb = make_qdb(2, backend="process")
        for flight in (1, 2, 3, 4):
            assert qdb.execute(pinned(f"u{flight}", flight)).committed
        qdb.ground_all()
        shards = qdb.state.partitions.shards
        assert any(shard.started for shard in shards)
        qdb.close()
        assert not any(shard.started for shard in shards)
        # close() is idempotent and the executors restart lazily.
        qdb.close()


class TestAdmissionShipping:
    """Shipped admission searches: payload round-trips, decision
    equivalence with the inline ``SolutionCache.ensure`` path, and the
    writer-side fallbacks (validation mismatch, worker timeout)."""

    def _seeded(self):
        """A 2-shard database whose flight-1 partition holds two entries."""
        qdb = make_qdb(2)
        for i, flight in enumerate((1, 1, 2)):
            assert qdb.execute(pinned(f"s{i}", flight)).committed
        partition = next(
            p for p in qdb.state.partitions.partitions if len(p.pending) == 2
        )
        return qdb, partition

    def _arrival_payload(self, qdb, partition, user="newbie", flight=1):
        incoming = pinned(user, flight)
        renamed = incoming.rename_variables(f"@{incoming.transaction_id}")
        payload = build_admission_payload(
            partition,
            renamed,
            incoming.transaction_id,
            database=qdb.database,
            witness=qdb.state.cache.witness_for(partition),
            enable_witness=qdb.state.cache.enable_witness,
        )
        return incoming, renamed, payload

    def test_admission_payload_pickle_round_trip(self):
        qdb, partition = self._seeded()
        incoming, renamed, payload = self._arrival_payload(qdb, partition)
        back = pickle.loads(dump_payload(payload))
        assert back.partition_id == partition.partition_id
        assert back.transaction_id == incoming.transaction_id
        assert [e.transaction_id for e in back.entries] == list(
            partition.transaction_ids()
        )
        witness = qdb.state.cache.witness_for(partition)
        assert back.witness_substitution == (
            None if witness is None else witness.substitution
        )
        # Every relation the partition or the arrival touches ships along.
        assert {s.name for s in back.tables} == {"Available", "Bookings"}
        qdb.close()

    def test_shipped_admission_matches_inline_ensure(self):
        """admit_in_worker over the snapshot == SolutionCache.ensure inline."""
        qdb, partition = self._seeded()
        state = qdb.state
        incoming, renamed, payload = self._arrival_payload(qdb, partition)
        shipped = admit_in_worker(dump_payload(payload))
        assert shipped.partition_id == partition.partition_id
        assert shipped.transaction_id == incoming.transaction_id
        assert shipped.pending_ids == tuple(partition.transaction_ids())
        new_factor = partition.composition().preview_factor(renamed)
        inline = state.cache.ensure(
            partition, new_factor, renamed.hard_variables()
        )
        assert shipped.probe.substitution == inline
        assert shipped.probe.used_witness == state.cache.last_used_witness
        qdb.close()

    def test_shipped_rejection_matches_inline(self):
        """A capacity-exhausted arrival rejects identically on both paths."""
        qdb = make_qdb(2)
        for i in range(3):  # flight 1 has exactly 3 seats
            assert qdb.execute(pinned(f"s{i}", 1)).committed
        partition = next(
            p for p in qdb.state.partitions.partitions if len(p.pending) == 3
        )
        _incoming, renamed, payload = self._arrival_payload(
            qdb, partition, user="late"
        )
        shipped = execute_admission(payload)
        assert shipped.probe.substitution is None
        new_factor = partition.composition().preview_factor(renamed)
        assert (
            qdb.state.cache.ensure(
                partition, new_factor, renamed.hard_variables()
            )
            is None
        )
        qdb.close()

    def test_validation_mismatch_falls_back_inline(self):
        """A result that fails id validation is discarded, not committed.

        The fake shard returns a *rejecting* result with bogus ids: if the
        writer trusted it, the admission below would be refused, so the
        committed outcome proves the inline fallback reran the search.
        """
        from concurrent.futures import Future

        from repro.core.solution_cache import AdmissionProbe

        qdb = make_qdb(2, backend="process")
        manager = qdb.state.partitions
        bogus = AdmissionResult(
            partition_id=-1,
            transaction_id=-1,
            pending_ids=(),
            probe=AdmissionProbe(substitution=None),
        )

        class FakeShard:
            def submit(self, fn, *args):
                future: Future = Future()
                future.set_result(bogus)
                return future

        manager.admission_ship_target = lambda partition: FakeShard()
        assert qdb.execute(pinned("alice", 1)).committed
        assert manager.statistics.admission_round_trips == 1
        qdb.close()

    def test_worker_timeout_falls_back_inline(self):
        """A hung worker costs the writer latency, never the decision."""
        from concurrent.futures import Future

        qdb = make_qdb(2, backend="process")
        qdb.state._admission_ship_timeout_s = 0.01

        class HangingShard:
            def submit(self, fn, *args):
                return Future()  # never resolves

        qdb.state.partitions.admission_ship_target = (
            lambda partition: HangingShard()
        )
        assert qdb.execute(pinned("bob", 2)).committed
        qdb.close()

    def test_no_ship_target_off_lanes(self):
        """Without an active lane scope nothing ships — even on the
        process backend, serialized admissions stay inline."""
        qdb = make_qdb(2, backend="process")
        assert qdb.execute(pinned("carol", 1)).committed
        assert qdb.state.partitions.statistics.admission_round_trips == 0
        qdb.close()

    def test_config_rejects_nonpositive_ship_timeout(self):
        with pytest.raises(QuantumError, match="admission_ship_timeout_s"):
            QuantumConfig(shards=2, admission_ship_timeout_s=0)
        unbounded = QuantumConfig(admission_ship_timeout_s=None)
        assert unbounded.admission_ship_timeout_s is None

    def test_warm_prespawns_process_pools(self):
        qdb = make_qdb(2, backend="process")
        shards = qdb.state.partitions.shards
        assert not any(shard.started for shard in shards)
        for shard in shards:
            shard.warm()
        assert all(shard.started for shard in shards)
        qdb.close()
        assert not any(shard.started for shard in shards)


class TestPlanTimeouts:
    def _manager_with_group(self):
        qdb = make_qdb(2)
        assert qdb.execute(pinned("alice", 1)).committed
        manager = qdb.state.partitions
        partition = manager.partitions[0]
        return qdb, manager, [(partition, list(partition.pending))]

    def test_plan_on_shards_times_out(self):
        qdb, manager, groups = self._manager_with_group()

        def slow_plan(partition, entries):
            time.sleep(0.5)
            return "late"

        with pytest.raises(GroundingTimeout):
            manager.plan_on_shards(groups, slow_plan, timeout_s=0.02)
        qdb.close()

    def test_plan_on_shards_without_timeout_waits(self):
        qdb, manager, groups = self._manager_with_group()

        def plan(partition, entries):
            return len(entries)

        assert manager.plan_on_shards(groups, plan) == [1]
        qdb.close()

    def test_timeout_leaves_state_unchanged(self):
        """A timed-out ground() applies nothing: everything stays pending."""
        qdb = make_qdb(2)
        for flight in (1, 2):
            assert qdb.execute(pinned(f"u{flight}", flight)).committed
        original = qdb.state.plan_grounding

        def slow_plan_grounding(partition, targets, *, forced=False):
            time.sleep(0.5)
            return original(partition, targets, forced=forced)

        qdb.state.plan_grounding = slow_plan_grounding
        before = qdb.pending_count
        with pytest.raises(GroundingTimeout):
            qdb.ground_all(timeout_s=0.02)
        assert qdb.pending_count == before
        qdb.state.plan_grounding = original
        grounded = qdb.ground_all()
        assert len(grounded) == before
        qdb.close()


class TestExecutorRace:
    def test_concurrent_first_submits_create_exactly_one_executor(self):
        """Regression: two racing first submissions must not leak a pool.

        The unguarded lazy initialisation let both threads observe
        ``_executor is None`` and each build an executor, leaking one;
        creation is now serialized on a lock.
        """
        from repro.sharding.shard import Shard

        shard = Shard(0)
        created = []
        original = Shard._create_executor

        def counting_create(self):
            created.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return original(self)

        Shard._create_executor = counting_create
        try:
            barrier = threading.Barrier(8)
            futures = []
            futures_lock = threading.Lock()

            def submit():
                barrier.wait(timeout=5)
                future = shard.submit(sum, (1, 2))
                with futures_lock:
                    futures.append(future)

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert len(created) == 1, f"{len(created)} executors created"
            assert [future.result(timeout=5) for future in futures] == [3] * 8
        finally:
            Shard._create_executor = original
            shard.close()
        assert not shard.started
