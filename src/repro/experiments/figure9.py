"""Figure 9 — coordination percentage vs. read percentage.

Same sweep as Figure 8; the reported metric is the percentage of successful
coordination.  Expected shape: coordination decreases roughly linearly as
the read fraction grows, because reads force pre-emptive grounding of
pending transactions before their partners arrive; larger k degrades more
slowly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.figure8 import (
    Figure8Result,
    MixedParameters,
    default_parameters,
    paper_parameters,
    run_figure8,
)
from repro.experiments.report import format_table, print_report

__all__ = [
    "Figure9Result",
    "run_figure9",
    "figure9_from_figure8",
    "default_parameters",
    "paper_parameters",
    "main",
]


@dataclass
class Figure9Result:
    """Coordination percentage per (k, read %)."""

    #: (k, read %) → coordination percentage
    coordination: dict[tuple[int, float], float] = field(default_factory=dict)

    def rows(self) -> list[tuple[float, int, float]]:
        """(read %, k, coordination %) rows."""
        return [
            (pct, k, value)
            for (k, pct), value in sorted(
                self.coordination.items(), key=lambda kv: (kv[0][1], kv[0][0])
            )
        ]

    def series_for(self, k: int) -> list[tuple[float, float]]:
        """(read %, coordination %) series for one k."""
        return sorted(
            (pct, value) for (kk, pct), value in self.coordination.items() if kk == k
        )


def figure9_from_figure8(figure8: Figure8Result) -> Figure9Result:
    """Derive Figure 9 from an existing Figure 8 sweep (no re-run)."""
    result = Figure9Result()
    for key, run in figure8.runs.items():
        result.coordination[key] = run.coordination_percentage
    return result


def run_figure9(parameters: MixedParameters | None = None) -> Figure9Result:
    """Run the mixed-workload sweep and report coordination percentages."""
    return figure9_from_figure8(run_figure8(parameters))


def main(parameters: MixedParameters | None = None) -> Figure9Result:
    """Run and print Figure 9's series."""
    result = run_figure9(parameters)
    body = format_table(
        ["Read %", "k", "Coordination %"], result.rows(), precision=1
    )
    print_report("Figure 9: coordination percentage vs read percentage", body)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
