"""The solution cache: cached groundings for composed transaction bodies.

"The prototype maintains an in-memory cache of possible solutions (i.e.,
value assignments) to the composed transaction bodies.  When a new resource
transaction arrives in the system, we check whether an existing solution in
the cache can be extended to accommodate the new transaction.  If this is
not possible, then we generate a LIMIT 1 SQL query corresponding to the body
of the new composed transaction" (Section 4).

Our cached solutions are ground :class:`~repro.logic.substitution.Substitution`
objects stored on each :class:`~repro.core.partition.Partition`; this module
implements the *policy* around them:

* :meth:`SolutionCache.verify` — cheaply re-check a cached solution against
  the current database (needed after writes);
* :meth:`SolutionCache.extend` — try to extend a cached solution with the
  factors contributed by a newly arrived transaction;
* :meth:`SolutionCache.solve` — fall back to a full grounding search (the
  analogue of the ``LIMIT 1`` query against MySQL);
* :meth:`SolutionCache.ensure` — the find-or-extend-or-solve flow used by
  transaction admission, returning whether the invariant can be maintained.

The cache keeps one solution per partition, exactly like the paper's
prototype ("our current prototype ... maintains a single solution in the
cache for every composed transaction"); the hit/miss counters let the
experiments report how often extension succeeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.partition import Partition
from repro.errors import FormulaError
from repro.logic.formula import Formula, TRUE
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.relational.database import Database
from repro.solver.grounding import GroundingResult, GroundingSearch


@dataclass
class SolutionCacheStatistics:
    """Counters describing solution-cache behaviour."""

    verifications: int = 0
    extension_hits: int = 0
    extension_misses: int = 0
    full_solves: int = 0
    failures: int = 0


class SolutionCache:
    """Find-or-extend-or-solve logic for partition solutions."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.search = GroundingSearch(database)
        self.statistics = SolutionCacheStatistics()

    # -- verification --------------------------------------------------------

    def verify(self, formula: Formula, solution: Substitution | None) -> bool:
        """True if ``solution`` still satisfies ``formula`` over the database.

        Used after blind writes: the write may have removed the row the
        cached solution grounded on.
        """
        if solution is None:
            return False
        self.statistics.verifications += 1
        required = formula.free_variables()
        if not required <= solution.domain():
            return False
        try:
            valuation = solution.restrict(required).as_valuation()
        except Exception:  # non-ground binding; treat as invalid
            return False
        try:
            return formula.evaluate(valuation, self._oracle)
        except FormulaError:
            return False

    def _oracle(self, relation: str, values: tuple) -> bool:
        if not self.database.has_table(relation):
            return False
        table = self.database.table(relation)
        columns = list(table.schema.column_names)
        for _ in table.lookup(columns, list(values)):
            return True
        return False

    # -- extension / solving --------------------------------------------------

    def extend(
        self,
        base: Substitution | None,
        new_factor: Formula,
        required: Iterable[Variable],
    ) -> GroundingResult:
        """Extend ``base`` so that ``new_factor`` is also satisfied."""
        initial = base or Substitution.empty()
        result = self.search.find_one(new_factor, required=required, initial=initial)
        if result.satisfiable:
            self.statistics.extension_hits += 1
        else:
            self.statistics.extension_misses += 1
        return result

    def solve(
        self, formula: Formula, required: Iterable[Variable] | None = None
    ) -> GroundingResult:
        """Full grounding search over the composed body (cache miss path)."""
        self.statistics.full_solves += 1
        result = self.search.find_one(formula, required=required)
        if not result.satisfiable:
            self.statistics.failures += 1
        return result

    # -- admission flow --------------------------------------------------------

    def ensure(
        self,
        partition: Partition,
        new_factor: Formula | None = None,
        new_required: Iterable[Variable] = (),
    ) -> Substitution | None:
        """Ensure the partition (plus an optional new factor) is satisfiable.

        Args:
            partition: the partition whose invariant must hold.
            new_factor: factor contributed by a transaction being admitted
                (its body rewritten against the partition's accumulated
                updates); ``None`` when only re-validating.
            new_required: variables of the new factor that must be ground.

        Returns:
            A ground substitution witnessing satisfiability of the composed
            body (including the new factor when given), or ``None`` when the
            invariant cannot be maintained — in which case the caller must
            reject the transaction or write.
        """
        base_formula = partition.composed_formula()
        base_solution = partition.cached_solution
        base_required = frozenset().union(
            *(entry.renamed.hard_variables() for entry in partition.pending)
        ) if partition.pending else frozenset()

        base_valid = self.verify(base_formula, base_solution)
        if new_factor is None or new_factor is TRUE:
            if base_valid:
                return base_solution
            result = self.solve(base_formula, required=base_required)
            return result.substitution if result.satisfiable else None

        required = frozenset(new_required)
        if base_valid and base_solution is not None:
            extended = self.extend(base_solution, new_factor, required)
            if extended.satisfiable:
                return extended.substitution
        # Cache miss: solve the whole composed body including the new factor.
        from repro.logic.formula import conjunction

        full = conjunction([base_formula, new_factor])
        result = self.solve(full, required=base_required | required)
        return result.substitution if result.satisfiable else None
