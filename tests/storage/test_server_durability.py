"""The server drain path on the segmented durability engine.

``ServerConfig(durability=DurabilityConfig(mode="segmented", ...))`` must
swap the store onto a :class:`SegmentedWriteAheadLog` at startup, run the
background compactor with the server's lifecycle discipline, fold the
drain-boundary/shutdown checkpoints into the base/delta lineage, and
refuse to write over a directory that already holds a durable log —
mirroring the legacy ``wal_path`` contract exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.recovery import PendingTransactionStore
from repro.errors import QuantumError
from repro.server import CheckpointPolicy, QuantumServer, ServerConfig
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=2, rows_per_flight=4)


def make_qdb() -> QuantumDatabase:
    return QuantumDatabase(build_flight_database(SPEC), QuantumConfig(k=8))


def flight_schema():
    database = build_flight_database(SPEC)
    PendingTransactionStore(database)
    return database


def booking(name: str, flight: int) -> str:
    return (
        f"-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def segmented_config(tmp_path, **overrides) -> DurabilityConfig:
    return DurabilityConfig(
        mode="segmented", directory=str(tmp_path / "segments"), **overrides
    )


class TestConfig:
    def test_wal_path_and_segmented_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(QuantumError):
            ServerConfig(
                wal_path=str(tmp_path / "legacy.wal"),
                durability=segmented_config(tmp_path),
            )

    def test_legacy_durability_config_is_allowed_with_wal_path(self, tmp_path):
        config = ServerConfig(
            wal_path=str(tmp_path / "legacy.wal"),
            durability=DurabilityConfig(mode="legacy"),
        )
        assert config.durability is not None and not config.durability.segmented


class TestSegmentedServer:
    def test_server_swaps_onto_engine_and_reports_counters(self, tmp_path):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(durability=segmented_config(tmp_path))
            async with QuantumServer(qdb, config) as server:
                assert isinstance(qdb.database.wal, SegmentedWriteAheadLog)
                assert qdb.database.wal._compactor is not None
                async with server.session(client="mickey") as session:
                    for index in range(6):
                        await session.commit(booking(f"u{index}", 100 + index % 2))
                report = server.statistics_report()
                assert report["durability.mode"] == "segmented"
                assert report["durability.flushes"] >= 1
                assert "durability.bytes_reclaimed" in report
                assert "durability.checkpoint_deferred" in report
            engine = qdb.database.wal
            # Shutdown folded the drain into the lineage and parked the
            # compactor; the engine itself outlives the server.
            assert engine._compactor is None
            assert engine.statistics.checkpoints_base >= 1
            assert engine.statistics.checkpoint_pause_ms > 0
            return engine

        engine = asyncio.run(scenario())
        engine.close()

    def test_policy_checkpoints_become_deltas_between_bases(self, tmp_path):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                durability=segmented_config(tmp_path, base_interval=64),
                checkpoint_policy=CheckpointPolicy(max_wal_records=1),
                checkpoint_on_shutdown=False,
            )
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    for index in range(8):
                        await session.commit(booking(f"u{index}", 100 + index % 2))
                assert server.statistics.policy_checkpoints >= 2
            return qdb.database.wal

        engine = asyncio.run(scenario())
        # First policy checkpoint is the base; the rest ride the dirty set.
        assert engine.statistics.checkpoints_base == 1
        assert engine.statistics.checkpoints_delta >= 1
        assert engine.statistics.delta_pause_ms > 0
        engine.close()

    def test_shutdown_compacts_and_directory_recovers(self, tmp_path):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                durability=segmented_config(tmp_path, segment_max_records=8)
            )
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    for index in range(12):
                        await session.commit(booking(f"u{index}", 100 + index % 2))
            return qdb

        qdb = asyncio.run(scenario())
        engine = qdb.database.wal
        # The drain path's final sweep reclaimed the sealed segments the
        # shutdown checkpoint superseded.
        assert engine.statistics.bytes_reclaimed > 0
        engine.close()
        recovered = QuantumDatabase.recover(
            recover(tmp_path / "segments", flight_schema), qdb.config
        )
        assert recovered.database.snapshot() == qdb.database.snapshot()
        assert recovered.pending_count == qdb.pending_count
        recovered.database.wal.close()

    def test_fsync_window_batches_drained_commits(self, tmp_path):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                durability=segmented_config(
                    tmp_path,
                    fsync=True,
                    fsync_window_s=0.01,
                    segment_max_records=10_000,
                )
            )
            async with QuantumServer(qdb, config) as server:

                async def client(name: str, count: int) -> None:
                    async with server.session(client=name) as session:
                        for index in range(count):
                            await session.commit(
                                booking(f"{name}-{index}", 100 + index % 2)
                            )

                await asyncio.gather(*(client(f"c{i}", 3) for i in range(4)))
                # Report taken before shutdown: its checkpoint and final
                # sweep add their own (eager) syncs.
                return qdb, server.statistics_report()

        qdb, report = asyncio.run(scenario())
        commits = 12
        # Concurrent sessions stack into shared drain runs and shared sync
        # windows: acknowledged commits cost well under one fsync each.
        assert report["durability.fsyncs"] < commits
        assert report["durability.sync_windows"] >= 1
        engine = qdb.database.wal
        engine.close()
        recovered = recover(tmp_path / "segments", flight_schema)
        assert recovered.snapshot() == qdb.database.snapshot()
        recovered.wal.close()

    def test_second_server_refuses_used_directory(self, tmp_path):
        async def scenario():
            config = ServerConfig(durability=segmented_config(tmp_path))
            qdb = make_qdb()
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    await session.commit(booking("a", 100))
            qdb.database.wal.close()
            with pytest.raises(QuantumError, match="already holds a durable log"):
                async with QuantumServer(make_qdb(), config):
                    pass  # pragma: no cover - start() must refuse

        asyncio.run(scenario())
