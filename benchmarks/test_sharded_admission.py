"""Sharded admission — signature-routed partitions vs. the exhaustive scan.

Runs the Figure 7 scalability workload (Random arrival order, entangled
pairs, per-flight partitioning) through the quantum database at 1, 2 and 4
partition shards, and — for the sharded points — on both shard backends
(``thread`` and ``process``).  ``shards=1`` is the unsharded baseline:
every admission scans every partition's atoms with pairwise unification
inside ``merged_for``.  With ``shards >= 2`` the :mod:`repro.sharding`
subsystem routes each admission through the signature index, scanning only
the candidate partitions, and fans grounding plans out per shard — on the
shard's thread pool, or shipped to its worker processes as pickled
:class:`~repro.sharding.backend.PlanPayload` objects.

The acceptance criteria asserted here:

* accept/reject decisions are identical at every shard count *and* on both
  backends (the index is a conservative prefilter confirmed by the exact
  scan; the process backend plans over an order-preserving snapshot);
* the sharded runs spend **at least 5x fewer** pairwise unification calls
  in the overlap scans (in practice the reduction is 100x+ on this
  constant-pinned workload);
* admission throughput measurably scales from 1 to 4 shards;
* process-backend lane points genuinely ship their witness searches to
  the worker pools (admission round trips and payload bytes > 0), and on
  boxes with >= 4 cores the shipped lanes clear the same >= 1.5x
  throughput bar as the thread lanes.

Every run also appends its numbers to ``BENCH_admission.json`` at the
repository root — throughput and scan counts per (shard count, backend)
point — so the admission-path perf trajectory is tracked across PRs by
``make check`` and gated against the committed baseline by
``scripts/bench_gate.py`` (``make gate``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.experiments.report import format_table
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

#: Shard counts swept by the benchmark (1 = the unsharded baseline).
SHARD_COUNTS = (1, 2, 4)

#: Shard executor backends swept at every sharded point.  The unsharded
#: baseline has no shards, recorded as backend "unsharded".
BACKENDS = ("thread", "process")

#: (shards, backend, lanes) sweep points, in reporting order.  The lane
#: points run the same stream through ``commit_batch`` with
#: ``admission_lanes=True`` — the router-first concurrent admission
#: pipeline (per-shard admission writers, epoch barriers for cross-shard
#: arrivals) — so CI gates lane-parallel admission throughput alongside
#: the serialized sweep.  Process-backend lane points additionally ship
#: each witness-extension search to the owning shard's worker pool as a
#: pickled :class:`~repro.sharding.backend.AdmissionPayload`, so the gate
#: also tracks the shipped-admission round-trip cost.
SWEEP = (
    ((1, "unsharded", False),)
    + tuple(
        (shards, backend, False)
        for shards in SHARD_COUNTS[1:]
        for backend in BACKENDS
    )
    + tuple(
        (shards, backend, True)
        for backend in BACKENDS
        for shards in SHARD_COUNTS[1:]
    )
)

#: Where the perf trajectory lands (tracked in git, one file per repo).
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_admission.json"


def _spec(smoke: bool) -> FlightDatabaseSpec:
    if BENCH_SCALE == "paper":
        return FlightDatabaseSpec(num_flights=50, rows_per_flight=10)
    if smoke:
        return FlightDatabaseSpec(num_flights=10, rows_per_flight=4)
    return FlightDatabaseSpec(num_flights=16, rows_per_flight=4)


def _run(
    spec: FlightDatabaseSpec,
    *,
    shards: int,
    backend: str = "thread",
    lanes: bool = False,
    k: int = 4,
    seed: int = 0,
):
    """One sweep point; returns (decisions, statistics, admit_s, total_s).

    Serialized points admit via per-call ``execute``; lane points admit the
    whole stream via ``commit_batch`` (the pipeline's entry point — the
    session layer's drain loop batches exactly like this).  Accept/reject
    decisions are identical either way, which the test asserts.
    """
    workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    config = QuantumConfig(
        k=k,
        shards=shards,
        shard_backend=backend if backend != "unsharded" else "thread",
        admission_lanes=lanes,
    )
    qdb = QuantumDatabase(build_flight_database(spec), config)
    if lanes:
        # Spawn lane threads and (for the process backend) fork the worker
        # pools before the clock starts: pool spawn cost is a one-time setup
        # tax, not admission throughput.
        controller = qdb.admission_controller()
        if controller is not None:
            controller.warm()
    start = time.perf_counter()
    if lanes:
        decisions = [
            r.committed for r in qdb.commit_batch(list(workload.transactions))
        ]
    else:
        decisions = [qdb.execute(t).committed for t in workload.transactions]
    admit_elapsed = time.perf_counter() - start
    qdb.ground_all()
    total_elapsed = time.perf_counter() - start
    statistics = qdb.statistics_report()
    qdb.close()
    return decisions, statistics, admit_elapsed, total_elapsed


def _emit_json(
    spec: FlightDatabaseSpec, results: dict[tuple, dict], *, smoke: bool
) -> None:
    """Write ``BENCH_admission.json`` (one entry per (shards, backend)).

    The recorded ``scale`` distinguishes the smoke-shrunk workload from the
    full/paper ones so ``scripts/bench_gate.py`` refuses to compare numbers
    produced by different specs: CI regenerates the file with ``make smoke``,
    so the committed baseline must be a smoke run too.

    Read-modify-write: sections owned by other benchmarks (the TCP
    latency sweep under ``"network"``, the recovery benchmark's
    ``"durability"`` section, the admission-search strategy benchmark's
    ``"search"`` section) are preserved, so the emitters can run in any
    order across pytest sessions.
    """
    baseline = results[(1, "unsharded", False)]
    sharded = [r for key, r in results.items() if key[0] > 1]
    # Label "smoke" only when _spec actually shrank to the smoke workload:
    # REPRO_BENCH_SCALE=paper wins over -m smoke there, and the label must
    # track the spec that was run, not the selection flag.
    scale = "smoke" if smoke and BENCH_SCALE != "paper" else BENCH_SCALE
    payload = {
        "benchmark": "sharded_admission",
        "scale": scale,
        "workload": {
            "order": "RANDOM",
            "num_flights": spec.num_flights,
            "rows_per_flight": spec.rows_per_flight,
            "transactions": baseline["transactions"],
        },
        "results": [results[point] for point in SWEEP],
        "unification_call_reduction": round(
            baseline["unification_checks"]
            / max(1, min(r["unification_checks"] for r in sharded)),
            1,
        ),
        "throughput_scaling_1_to_4": round(
            results[(4, "thread", False)]["admission_txn_per_s"]
            / max(1e-9, baseline["admission_txn_per_s"]),
            2,
        ),
        "lane_throughput_scaling_1_to_4": round(
            results[(4, "thread", True)]["admission_txn_per_s"]
            / max(1e-9, baseline["admission_txn_per_s"]),
            2,
        ),
        "process_lane_throughput_scaling_1_to_4": round(
            results[(4, "process", True)]["admission_txn_per_s"]
            / max(1e-9, baseline["admission_txn_per_s"]),
            2,
        ),
    }
    if BENCH_JSON.exists():
        previous = json.loads(BENCH_JSON.read_text())
        for section in ("network", "durability", "search"):
            if section in previous:
                payload[section] = previous[section]
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.smoke
def test_sharded_admission(benchmark, smoke_run):
    spec = _spec(smoke_run)
    runs: dict[tuple, tuple] = {}

    def sweep():
        for shards, backend, lanes in SWEEP:
            runs[(shards, backend, lanes)] = _run(
                spec, shards=shards, backend=backend, lanes=lanes
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    decisions = {point: run[0] for point, run in runs.items()}
    # Identical accept/reject decisions on the same stream at every shard
    # count, on both backends, and through the lane-parallel pipeline:
    # routing is a pure fast path, the process backend plans over an
    # order-preserving snapshot, and the admission lanes preserve the
    # serialized writer's decisions per arrival sequence.
    baseline_decisions = decisions[(1, "unsharded", False)]
    for point in SWEEP[1:]:
        assert decisions[point] == baseline_decisions, point

    results: dict[tuple, dict] = {}
    rows = []
    for point in SWEEP:
        shards, backend, lanes = point
        dec, stats, admit_s, total_s = runs[point]
        throughput = len(dec) / admit_s if admit_s else 0.0
        results[point] = {
            "shards": shards,
            "backend": backend,
            "lanes": lanes,
            "transactions": len(dec),
            "admitted": stats["state.admitted"],
            "rejected": stats["state.rejected"],
            "unification_checks": stats["partitions.unification_checks"],
            "scanned_partitions": stats["partitions.scanned_partitions"],
            "index_filtered": stats.get("partitions.index_filtered", 0),
            "merges": stats["partitions.merges"],
            "plan_payload_bytes": stats.get("sharding.plan_payload_bytes", 0),
            "worker_round_trips": stats.get("sharding.worker_round_trips", 0),
            "admission_payload_bytes": stats.get(
                "sharding.admission_payload_bytes", 0
            ),
            "admission_round_trips": stats.get(
                "sharding.admission_round_trips", 0
            ),
            "lane_dispatches": stats.get("admission.lane_dispatches", 0),
            "barrier_arrivals": stats.get("admission.barrier_arrivals", 0),
            "admission_s": round(admit_s, 4),
            "total_s": round(total_s, 4),
            "admission_txn_per_s": round(throughput, 1),
        }
        rows.append(
            [
                shards,
                backend + ("+lanes" if lanes else ""),
                len(dec),
                stats["partitions.unification_checks"],
                stats.get("partitions.index_filtered", 0),
                round(admit_s, 3),
                round(total_s, 3),
                round(throughput, 1),
            ]
        )
    report(
        "Sharded admission (Figure 7 workload)",
        format_table(
            [
                "shards",
                "backend",
                "#txns",
                "unif. checks",
                "filtered",
                "admit (s)",
                "total (s)",
                "txn/s",
            ],
            rows,
        ),
    )
    _emit_json(spec, results, smoke=smoke_run)

    # The headline criteria: at least 5x fewer pairwise unification calls
    # with routing on, and admission throughput that scales 1 -> 4 shards.
    baseline_checks = results[(1, "unsharded", False)]["unification_checks"]
    for point in SWEEP[1:]:
        assert results[point]["unification_checks"] * 5 <= baseline_checks, (
            point,
            results[point]["unification_checks"],
            baseline_checks,
        )
    # Wall-clock comparison, so keep it noise-tolerant: the measured gap is
    # ~2x, and the best sharded run (not a single fixed point) must beat
    # the unsharded baseline.
    baseline_throughput = results[(1, "unsharded", False)]["admission_txn_per_s"]
    best_sharded = max(
        results[point]["admission_txn_per_s"] for point in SWEEP[1:]
    )
    assert best_sharded > baseline_throughput, (
        best_sharded,
        results[(1, "unsharded", False)],
    )
    # PR 5 acceptance: lane-parallel admission at 4 shards beats the
    # serialized writer by >= 1.5x on this low-cross-shard workload
    # (measured ~2.4x on multi-core boxes; the margin absorbs scheduler
    # noise).  On a 1-core box the lanes cannot overlap with the
    # dispatcher and the measured ratio sits at ~1.65x with a tail that
    # brushes 1.5 (repeated runs land in 1.44-2.04), so — like the
    # shipped-point criterion below — the strict bar applies where there
    # are cores to schedule on and a lower-but-real bar pins the 1-core
    # benefit without flaking on scheduler jitter.
    lane_throughput = results[(4, "thread", True)]["admission_txn_per_s"]
    lane_bar = 1.5 if (os.cpu_count() or 1) >= 2 else 1.25
    assert lane_throughput >= lane_bar * baseline_throughput, (
        lane_throughput,
        baseline_throughput,
        lane_bar,
    )
    # PR 6 acceptance: process-backend lane points actually shipped their
    # witness searches to the worker pools (round trips measured > 0, with
    # real payload bytes behind them) — the point exists to price the IPC
    # hop, so a silently-inline run must fail loudly.
    for shards in SHARD_COUNTS[1:]:
        shipped = results[(shards, "process", True)]
        assert shipped["admission_round_trips"] > 0, shipped
        assert shipped["admission_payload_bytes"] > 0, shipped
        assert shipped["worker_round_trips"] >= shipped["admission_round_trips"]
    # Shipped searches only pay off when there are cores to run them on.
    # With >= 4 cores the 4-shard process lanes must clear the same >= 1.5x
    # bar as the thread lanes; on the 1-2 core boxes CI also lands on, the
    # per-admission IPC hop is pure overhead by construction and its
    # wall-clock is bimodal (2x run-to-run swings are routine), so the
    # gate instead pins a collapse floor — an order-of-magnitude slowdown
    # (serialization storm, per-admission pool respawn) still fails, while
    # scheduler noise does not.
    process_lane = results[(4, "process", True)]["admission_txn_per_s"]
    if (os.cpu_count() or 1) >= 4:
        assert process_lane >= 1.5 * baseline_throughput, (
            process_lane,
            baseline_throughput,
        )
    else:
        assert process_lane >= 0.1 * baseline_throughput, (
            process_lane,
            baseline_throughput,
        )
