"""Tests for possible-world enumeration and entanglement bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.entanglement import (
    EntangledResourceTransaction,
    EntanglementRegistry,
    make_adjacent_seat_request,
)
from repro.core.parser import parse_transaction
from repro.core.worlds import (
    distinct_extensional_states,
    enumerate_possible_worlds,
    max_optional_worlds,
)
from repro.errors import InvalidTransactionError
from repro.logic.atoms import Atom
from tests.conftest import make_tiny_flight_db

MICKEY = "-Available(123, ?s), +Bookings('Mickey', 123, ?s) :-1 Available(123, ?s)"
DONALD = "-Available(123, ?s), +Bookings('Donald', 123, ?s) :-1 Available(123, ?s)"
MINNIE = (
    "-Available(123, ?s), +Bookings('Minnie', 123, ?s) "
    ":-1 Available(123, ?s), Bookings('Mickey', 123, ?m), Adjacent(123, ?s, ?m)"
)


class TestPossibleWorlds:
    def test_figure2_world_counts(self):
        database = make_tiny_flight_db(seats=3)
        mickey = parse_transaction(MICKEY)
        donald = parse_transaction(DONALD)
        minnie = parse_transaction(MINNIE)

        after_mickey = enumerate_possible_worlds(database, [mickey])
        assert len(after_mickey) == 3

        after_donald = enumerate_possible_worlds(database, [mickey, donald])
        assert len(after_donald) == 6  # 3 × 2 orderings of the remaining seats

        after_minnie = enumerate_possible_worlds(database, [mickey, donald, minnie])
        # Minnie must sit next to Mickey: Mickey cannot be in the middle seat
        # taken scenario-by-scenario; exactly 4 worlds survive.
        assert len(after_minnie) == 4
        for world in after_minnie:
            bookings = {p: s for p, _f, s in world.table("Bookings")}
            assert {bookings["Mickey"], bookings["Minnie"]} in (
                {"1A", "1B"},
                {"1B", "1C"},
            )

    def test_empty_when_unsatisfiable(self):
        database = make_tiny_flight_db(seats=1)
        t1 = parse_transaction(MICKEY)
        t2 = parse_transaction(DONALD)
        assert enumerate_possible_worlds(database, [t1, t2]) == []

    def test_initial_database_unchanged(self):
        database = make_tiny_flight_db(seats=2)
        enumerate_possible_worlds(database, [parse_transaction(MICKEY)])
        assert len(database.table("Available")) == 2
        assert len(database.table("Bookings")) == 0

    def test_distinct_extensional_states(self):
        database = make_tiny_flight_db(seats=2)
        worlds = enumerate_possible_worlds(database, [parse_transaction(MICKEY)])
        assert distinct_extensional_states(worlds) == 2

    def test_max_worlds_guard(self):
        database = make_tiny_flight_db(seats=3)
        transactions = [parse_transaction(MICKEY.replace("Mickey", f"u{i}")) for i in range(3)]
        with pytest.raises(ValueError):
            enumerate_possible_worlds(database, transactions, max_worlds=3)

    def test_optional_satisfaction_tracked(self):
        database = make_tiny_flight_db(seats=3)
        database.insert("Bookings", ("Goofy", 123, "1B"))
        database.delete("Available", (123, "1B"))
        request = make_adjacent_seat_request("Mickey", "Goofy", flight=123)
        worlds = enumerate_possible_worlds(database, [request])
        assert len(worlds) == 2  # seats 1A and 1C remain
        best = max_optional_worlds(worlds)
        # Both remaining seats are adjacent to 1B, so both worlds satisfy the
        # preference fully (2 optional atoms each).
        assert len(best) == 2
        assert all(world.satisfied_optionals == 2 for world in best)


class TestEntanglement:
    def test_requires_client_and_partner(self):
        with pytest.raises(InvalidTransactionError):
            EntangledResourceTransaction(
                body=(Atom.body("Available", [1]),),
                updates=(Atom.delete("Available", [1]),),
                client="Mickey",
                partner=None,
            )

    def test_registry_matches_reverse_pair(self):
        registry = EntanglementRegistry()
        mickey = make_adjacent_seat_request("Mickey", "Goofy")
        goofy = make_adjacent_seat_request("Goofy", "Mickey")
        assert registry.register(mickey) is None
        assert registry.waiting_count() == 1
        match = registry.register(goofy)
        assert match is not None
        assert match.transaction_ids() == (mickey.transaction_id, goofy.transaction_id)
        assert registry.waiting_count() == 0
        assert registry.matched_count() == 1

    def test_registry_ignores_plain_transactions(self):
        registry = EntanglementRegistry()
        plain = parse_transaction(MICKEY)
        assert registry.register(plain) is None
        assert registry.waiting_count() == 0

    def test_withdraw(self):
        registry = EntanglementRegistry()
        mickey = make_adjacent_seat_request("Mickey", "Goofy")
        registry.register(mickey)
        registry.withdraw(mickey)
        assert registry.waiting_count() == 0
        # A later Goofy arrival no longer matches.
        assert registry.register(make_adjacent_seat_request("Goofy", "Mickey")) is None

    def test_make_adjacent_seat_request_shape(self):
        request = make_adjacent_seat_request("Mickey", "Goofy", flight=7)
        assert request.client == "Mickey" and request.partner == "Goofy"
        assert len(request.hard_body) == 1
        assert len(request.optional_body) == 2
        assert {a.relation for a in request.updates} == {"Available", "Bookings"}
        # The flight is pinned as a hard constant.
        assert request.hard_body[0].terms[0].value == 7
