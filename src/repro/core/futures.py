"""Shared concurrency utilities for the grounding and admission paths.

Two pieces live here:

* :func:`collect_plan_futures` — every worker fan-out path (the sharded
  manager's ``plan_on_shards``,
  :meth:`repro.core.quantum_state.QuantumState.ground`'s plain-executor
  path, and the admission lanes' shipped witness searches in
  ``QuantumState._ship_admission_search``) collects its futures the same
  way: sequential ``result(timeout)`` per future, cancel everything on
  expiry, and raise :class:`~repro.errors.GroundingTimeout` before the
  caller applied (or committed) anything.  Keeping the loop in one place
  keeps the paths' timeout semantics (and their error message) from
  drifting apart; the shipped-admission caller additionally catches the
  timeout and falls back to the inline search, so there a hung worker
  costs latency, never an error.

* :class:`ReadWriteGuard` — the readers-writer lock the lane-parallel
  admission pipeline uses to protect the extensional store: concurrent
  per-lane witness-extension *searches* take the shared (read) side, while
  store *mutations* (forced-grounding applies, blind-write validation)
  take the exclusive (write) side.  Partition independence already makes
  the searched row sets disjoint; the guard exists because CPython dict
  and list internals still must not be structurally mutated mid-iteration
  by another thread.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.errors import GroundingTimeout


class ReadWriteGuard:
    """A reentrancy-aware readers-writer lock for the extensional store.

    Semantics:

    * any number of threads may hold the *read* side concurrently;
    * the *write* side is exclusive against readers and other writers;
    * the write side is reentrant for its owning thread, and a thread
      holding the write side may freely enter ``read()`` (a writer is
      trivially allowed to read its own exclusive state) — so e.g. the
      optional-atom satisfaction probes inside a grounding apply never
      self-deadlock.

    The guard is intentionally simple (no writer preference): admission
    searches vastly outnumber store mutations, writers are short, and the
    per-shard lanes that contend on it are bounded in number.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared side for the duration of the block."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The writing thread may read its own exclusive state.
                counted = False
            else:
                while self._writer is not None:
                    self._cond.wait()
                self._readers += 1
                counted = True
        try:
            yield
        finally:
            if counted:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive side for the duration of the block."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()


def collect_plan_futures(
    futures: Sequence[Future], timeout_s: float | None, *, what: str
) -> list[Any]:
    """Resolve plan futures in submission order under a per-future bound.

    Args:
        futures: the fanned-out plan futures, in group order (results come
            back in the same order, keeping the serial apply phase
            deterministic).
        timeout_s: per-future bound; ``None`` waits indefinitely.
        what: label naming the fan-out path in the timeout message
            (e.g. ``"shard plan"``).

    Raises:
        GroundingTimeout: a future missed the bound.  Every remaining
            future is cancelled (already-running workers finish and are
            discarded), and because the plan phase is read-only no plan was
            applied — the targeted transactions simply stay pending.
    """
    results: list[Any] = []
    try:
        for future in futures:
            results.append(future.result(timeout=timeout_s))
    except FutureTimeoutError as exc:
        for future in futures:
            future.cancel()
        raise GroundingTimeout(
            f"{what} future exceeded {timeout_s}s; no plan was applied and "
            "the targeted transactions stay pending"
        ) from exc
    return results
