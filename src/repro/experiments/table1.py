"""Table 1 — arrival orders and the maximum number of pending transactions.

For each of the four arrival orders, report the analytic bound from the
paper's Table 1 and the maximum number of simultaneously pending
transactions measured when the workload is actually run through a quantum
database with the ground-on-partner-arrival policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table, print_report
from repro.experiments.runner import run_quantum_entangled
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.arrival_orders import (
    ArrivalOrder,
    expected_max_pending,
    measured_max_pending,
    order_arrivals,
)
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec


@dataclass
class Table1Row:
    """One row of the reproduced Table 1."""

    order: ArrivalOrder
    characteristic: str
    expected_bound: int
    simulated_max_pending: int
    measured_max_pending: int


#: The "characteristic" column of the paper's Table 1.
CHARACTERISTICS = {
    ArrivalOrder.ALTERNATE: "Ti entangles with Ti+1",
    ArrivalOrder.RANDOM: "Ti entangles with Tj for some i, j < N",
    ArrivalOrder.IN_ORDER: "Ti entangles with Ti+N/2",
    ArrivalOrder.REVERSE_ORDER: "Ti entangles with TN-i",
}


def run_table1(
    spec: FlightDatabaseSpec | None = None,
    *,
    k: int = MYSQL_JOIN_LIMIT,
    seed: int = 0,
) -> list[Table1Row]:
    """Reproduce Table 1 over the given flight-database size."""
    spec = spec or FlightDatabaseSpec(num_flights=1, rows_per_flight=10)
    rows: list[Table1Row] = []
    num_pairs = spec.seats_per_flight // 2
    for order in ArrivalOrder:
        arrivals = order_arrivals(num_pairs, order)
        workload = generate_workload(spec, order, seed=seed)
        result = run_quantum_entangled(workload, k=k)
        rows.append(
            Table1Row(
                order=order,
                characteristic=CHARACTERISTICS[order],
                expected_bound=expected_max_pending(num_pairs, order),
                simulated_max_pending=measured_max_pending(arrivals),
                measured_max_pending=result.max_pending,
            )
        )
    return rows


def default_parameters() -> FlightDatabaseSpec:
    """Scaled-down default (finishes in seconds on a laptop)."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=10)


def paper_parameters() -> FlightDatabaseSpec:
    """The paper's Figure 5/6 sizing (1 flight, 34 rows, 102 seats)."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=34)


def main(spec: FlightDatabaseSpec | None = None) -> list[Table1Row]:
    """Run and print the reproduced Table 1."""
    rows = run_table1(spec or default_parameters())
    body = format_table(
        ["Order of Arrival", "Characteristic", "Paper bound", "Simulated max", "Measured max"],
        [
            (
                row.order.value,
                row.characteristic,
                row.expected_bound,
                row.simulated_max_pending,
                row.measured_max_pending,
            )
            for row in rows
        ],
    )
    print_report("Table 1: arrival orders and maximum pending transactions", body)
    return rows


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
