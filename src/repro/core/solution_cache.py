"""The solution cache: cached groundings (witnesses) for composed bodies.

"The prototype maintains an in-memory cache of possible solutions (i.e.,
value assignments) to the composed transaction bodies.  When a new resource
transaction arrives in the system, we check whether an existing solution in
the cache can be extended to accommodate the new transaction.  If this is
not possible, then we generate a LIMIT 1 SQL query corresponding to the body
of the new composed transaction" (Section 4).

The cache stores one :class:`Witness` per partition: the last satisfying
substitution for the partition's composed hard body, together with the set
of extensional rows that substitution grounds the body's atoms on.  The
witness powers the *incremental admission fast path*:

* **admission** — while a partition's witness is known-valid, the expensive
  re-verification of the whole composed body is skipped entirely and only
  the newly arrived transaction's factor is searched (extending the
  witness);
* **precise invalidation** — blind writes and grounding executions report
  their row-level deltas through :meth:`SolutionCache.notify_deltas`; a
  witness is dropped only when a delta actually touches one of the rows it
  grounds on (deletes) or could flip a non-monotone factor (inserts under
  negated relational atoms, which composed bodies do not produce — their
  negations come from unification predicates and never mention the store);
* **fallback** — on a witness miss the seed's verify → extend → solve flow
  runs unchanged (the ``LIMIT 1`` analogue), so accept/reject decisions are
  identical with the fast path on or off; only the amount of re-search
  differs.  The hit/miss/invalidation/fallback counters let the benchmarks
  report exactly that difference.

The cache keeps one witness per partition, exactly like the paper's
prototype ("our current prototype ... maintains a single solution in the
cache for every composed transaction").
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Iterable, Iterator, Sequence

from repro.core.partition import Partition
from repro.errors import FormulaError
from repro.logic.formula import (
    Conjunction,
    Disjunction,
    Formula,
    Negation,
    TRUE,
    conjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.relational.database import Database
from repro.solver.grounding import GroundingResult, GroundingSearch
from repro.solver.sampling import relational_atom_count, sample_find_one
from repro.solver.strategy import AdmissionSearchConfig, dispatch_find_one

#: A row-level delta: ``(table, positional row values, is_delete)``.
Delta = tuple[str, tuple[Any, ...], bool]

#: Identity of an extensional row: ``(table, positional values)``.
RowKey = tuple[str, tuple[Any, ...]]


def _has_negated_atoms(formula: Formula) -> bool:
    """True if any relational atom occurs under a negation.

    Composed bodies never have one (their negations wrap unification
    predicates, which are pure equality constraints), but the cache checks
    rather than assumes: a witness of a non-monotone formula must also be
    invalidated by inserts, not just deletes.
    """
    if isinstance(formula, Negation):
        return bool(formula.inner.atoms())
    if isinstance(formula, (Conjunction, Disjunction)):
        return any(_has_negated_atoms(part) for part in formula.parts)
    return False


@dataclass(frozen=True)
class AdmissionProbe:
    """The outcome of one pure admission search, plus its cache counters.

    :func:`compute_admission` returns one of these instead of mutating a
    :class:`SolutionCache` directly, which is what lets the identical
    search run on a process-pool worker against a snapshot store: the
    probe is picklable, carries no object references into the writer's
    heap, and the writer applies it with :meth:`SolutionCache.absorb_probe`
    exactly as if the search had run inline.

    Attributes:
        substitution: ground substitution witnessing satisfiability of the
            composed body (plus the new factor when given), or ``None``
            when admission must reject.
        used_witness: True when the decision came from extending a
            known-valid witness (the fast path) — the writer uses this to
            choose between an incremental and a full footprint for the
            successor witness, exactly like ``last_used_witness``.
        verifications: composed-body verifications performed.
        extension_hits: successful witness/cached-solution extensions.
        extension_misses: failed extensions.
        full_solves: full grounding searches over the composed body.
        failures: unsatisfiable full solves.
        witness_hits: admissions answered from a known-valid witness.
        witness_misses: admissions no witness could serve.
        fallback_searches: times the fast path fell back to composed-body
            work.
        method: which search decided the probe — ``"witness"`` (extension
            of a known-valid witness), ``"fastpath"`` (a per-shape fast
            path), ``"backtracking"`` / ``"bnb"`` (the general search
            under the configured strategy), or ``"sampled"`` (the opt-in
            approximate estimator).
        exact: False only when the decision came from the sampling
            estimator — a sampled accept carries a genuine witness but the
            search was not exhaustive, and a sampled reject may be a false
            negative.  Surfaced end-to-end on the commit result.
        exhausted_budget: the configured ``node_budget`` ran out before
            the search decided; admission turns a rejection with this flag
            into the typed ``AdmissionSearchExhausted`` outcome.
        nodes: search nodes expanded by the searches this probe ran — the
            cost of *deciding the admission*, isolated from the grounding
            and serializability searches that share the global
            ``search.nodes`` counter.  The strategy benchmark gates the
            bnb/backtracking ratio of this number.
    """

    substitution: Substitution | None
    used_witness: bool = False
    verifications: int = 0
    extension_hits: int = 0
    extension_misses: int = 0
    full_solves: int = 0
    failures: int = 0
    witness_hits: int = 0
    witness_misses: int = 0
    fallback_searches: int = 0
    method: str = "backtracking"
    exact: bool = True
    exhausted_budget: bool = False
    nodes: int = 0


def verify_solution(
    database: Database, formula: Formula, solution: Substitution | None
) -> bool:
    """True if ``solution`` still satisfies ``formula`` over ``database``.

    The pure core of :meth:`SolutionCache.verify`: no counters, no cache
    state — callable against a worker's snapshot store as well as the
    writer's live one.
    """
    if solution is None:
        return False
    required = formula.free_variables()
    if not required <= solution.domain():
        return False
    try:
        valuation = solution.restrict(required).as_valuation()
    except Exception:  # non-ground binding; treat as invalid
        return False

    def oracle(relation: str, values: tuple) -> bool:
        if not database.has_table(relation):
            return False
        table = database.table(relation)
        columns = list(table.schema.column_names)
        for _ in table.lookup(columns, list(values)):
            return True
        return False

    try:
        return formula.evaluate(valuation, oracle)
    except FormulaError:
        return False


def compute_admission(
    search: GroundingSearch,
    database: Database,
    *,
    composed: Formula,
    cached_solution: Substitution | None,
    witness_substitution: Substitution | None,
    new_factor: Formula | None = None,
    new_required: frozenset[Variable] = frozenset(),
    base_required: frozenset[Variable] = frozenset(),
    enable_witness: bool = True,
    config: AdmissionSearchConfig | None = None,
) -> AdmissionProbe:
    """The witness-extension admission search as a pure function.

    This is :meth:`SolutionCache.ensure`'s find-or-extend-or-solve flow
    factored out of the cache (mirroring how ``compute_grounding_plan``
    was factored out of ``QuantumState`` for the process backend): it
    reads only its arguments and the given store, mutates nothing, and
    reports every counter through the returned :class:`AdmissionProbe`.
    Running it inline over the live database and running it on a worker
    over an order-preserving snapshot therefore produce bit-identical
    decisions by construction — there is exactly one implementation.

    Args:
        search: the grounding search to run extensions/solves on (the
            cache's shared search inline; a throwaway one in a worker).
        database: the store ``search`` runs against (verification oracle).
        composed: the partition's composed hard body.
        cached_solution: the partition's last known satisfying
            substitution (pre-witness fallback state).
        witness_substitution: the substitution of a structurally current,
            delta-valid witness, or ``None`` when no witness can serve.
        new_factor: factor contributed by a transaction being admitted;
            ``None`` (or ``TRUE``) when only re-validating.
        new_required: variables of the new factor that must be ground.
        base_required: hard variables of the partition's pending entries.
        enable_witness: mirrors ``SolutionCache.enable_witness`` so the
            miss/fallback counters stay comparable with the fast path off.
        config: admission-search strategy selection; ``None`` (and the
            default config) reproduce the seed's plain backtracking search
            byte-for-byte.  Dispatch happens *here*, inside the pure
            function, so inline admission, thread lanes, and shipped
            process workers honor the strategy bit-identically.
    """
    counters = {
        "verifications": 0,
        "extension_hits": 0,
        "extension_misses": 0,
        "full_solves": 0,
        "failures": 0,
        "witness_hits": 0,
        "witness_misses": 0,
        "fallback_searches": 0,
    }
    outcome = {
        "method": config.strategy if config is not None else "backtracking",
        "exact": True,
        "exhausted": False,
        "nodes": 0,
    }

    def verify(formula: Formula, solution: Substitution | None) -> bool:
        if solution is None:
            return False
        counters["verifications"] += 1
        return verify_solution(database, formula, solution)

    def run_find(
        formula: Formula,
        required: frozenset[Variable],
        initial: Substitution | None = None,
    ) -> GroundingResult:
        result, method = dispatch_find_one(
            search, config, formula, required=required, initial=initial
        )
        outcome["method"] = method
        outcome["nodes"] += result.statistics.nodes
        if result.statistics.exhausted_budget:
            outcome["exhausted"] = True
        return result

    def extend(
        base: Substitution | None, factor: Formula, required: frozenset[Variable]
    ) -> GroundingResult:
        initial = base or Substitution.empty()
        result = run_find(factor, required, initial=initial)
        counters["extension_hits" if result.satisfiable else "extension_misses"] += 1
        return result

    def solve(formula: Formula, required: frozenset[Variable]) -> GroundingResult:
        counters["full_solves"] += 1
        if (
            config is not None
            and config.sampling is not None
            and relational_atom_count(formula) >= config.sampling.threshold
        ):
            # The partition is above the exact-search threshold and the
            # caller explicitly opted into estimation: bounded seeded
            # descents instead of an exhaustive walk.  An accept still
            # carries a genuine witness; the decision is just not exact.
            result = sample_find_one(
                search, formula, required=required, sampling=config.sampling
            )
            outcome["method"] = "sampled"
            outcome["exact"] = False
            outcome["nodes"] += result.statistics.nodes
        else:
            result = run_find(formula, required)
        if not result.satisfiable:
            counters["failures"] += 1
        return result

    def probe(
        substitution: Substitution | None, *, used_witness: bool = False
    ) -> AdmissionProbe:
        return AdmissionProbe(
            substitution=substitution,
            used_witness=used_witness,
            method="witness" if used_witness else outcome["method"],
            exact=outcome["exact"],
            exhausted_budget=outcome["exhausted"],
            nodes=outcome["nodes"],
            **counters,
        )

    if new_factor is None or new_factor is TRUE:
        if witness_substitution is not None:
            counters["witness_hits"] += 1
            return probe(witness_substitution, used_witness=True)
        if enable_witness:
            counters["witness_misses"] += 1
            counters["fallback_searches"] += 1
        if verify(composed, cached_solution):
            return probe(cached_solution)
        result = solve(composed, base_required)
        return probe(result.substitution if result.satisfiable else None)

    required = frozenset(new_required)
    if witness_substitution is not None:
        extended = extend(witness_substitution, new_factor, required)
        if extended.satisfiable:
            # Only a *successful* extension counts as a hit: the composed
            # body was never re-walked.
            counters["witness_hits"] += 1
            return probe(extended.substitution, used_witness=True)
    if enable_witness:
        counters["witness_misses"] += 1
        counters["fallback_searches"] += 1
    if witness_substitution is None and cached_solution is not None:
        if verify(composed, cached_solution):
            extended = extend(cached_solution, new_factor, required)
            if extended.satisfiable:
                return probe(extended.substitution)
    # Cache miss: solve the whole composed body including the new factor.
    full = conjunction([composed, new_factor])
    result = solve(full, base_required | required)
    return probe(result.substitution if result.satisfiable else None)


@dataclass(frozen=True)
class Witness:
    """A cached satisfying substitution plus its extensional footprint.

    Attributes:
        substitution: ground substitution satisfying the partition's
            composed hard body at the time the witness was stored.
        pending_ids: the partition's pending transaction ids when stored —
            a structural signature; the witness is only trusted while the
            partition still contains exactly this sequence (merges and
            groundings change it and thereby retire the witness).
        rows: ground instantiations of the composed body's atoms under the
            substitution; the only extensional rows whose presence or
            absence the body's truth value (under this fixed substitution)
            can depend on.
        relations: relations of atoms whose instantiation stayed non-ground
            (auxiliary variables outside the required set); deltas on these
            relations invalidate conservatively.
        monotone: True when no relational atom occurs under a negation, in
            which case inserts can never invalidate the witness.
    """

    substitution: Substitution
    pending_ids: tuple[int, ...]
    rows: frozenset[RowKey]
    relations: frozenset[str]
    monotone: bool

    def touched_by(self, deltas: Iterable[Delta]) -> bool:
        """True if any delta could change the witnessed body's truth value."""
        for table, values, is_delete in deltas:
            if not is_delete and self.monotone:
                continue
            if (table, values) in self.rows or table in self.relations:
                return True
        return False


@dataclass
class SolutionCacheStatistics:
    """Counters describing solution-cache behaviour."""

    verifications: int = 0
    extension_hits: int = 0
    extension_misses: int = 0
    full_solves: int = 0
    failures: int = 0
    #: Admissions / write checks answered from a known-valid witness
    #: (composed-body re-verification skipped entirely).
    witness_hits: int = 0
    #: Admissions / write checks no witness could serve (absent, stale, or
    #: present but its extension failed).
    witness_misses: int = 0
    #: Witnesses dropped because a row-level delta touched their footprint.
    witness_invalidations: int = 0
    #: Times the fast path fell back to work over the full composed body
    #: (a verification or a full grounding search).
    fallback_searches: int = 0
    #: Admissions decided by the opt-in sampling estimator (``exact=False``
    #: probes) — the count of approximate decisions the cache has absorbed.
    sampled_admissions: int = 0
    #: Search nodes expanded deciding admissions (the sum of every absorbed
    #: probe's ``nodes``).  Unlike the global ``search.nodes`` this excludes
    #: grounding and serializability searches, so it is the number the
    #: admission-strategy benchmark compares across strategies.
    admission_nodes: int = 0

    def composed_body_passes(self) -> int:
        """Operations that walked the whole composed body (verify + solve).

        This is the cost metric the admission fast path exists to reduce;
        the Figure 7 fast-path benchmark asserts the witness cache cuts it
        by at least 2x.
        """
        return self.verifications + self.full_solves


class SolutionCache:
    """Witness store plus find-or-extend-or-solve admission logic.

    Args:
        database: the extensional store searches run against.
        enable_witness: when False the per-partition witness store is
            disabled and every admission re-verifies the composed body from
            scratch (the seed behaviour); accept/reject decisions are
            unaffected.  Used by benchmarks to measure the fast path.
        search_config: admission-search strategy passed to every
            :func:`compute_admission` this cache runs; ``None`` keeps the
            seed's plain backtracking search.
    """

    def __init__(
        self,
        database: Database,
        *,
        enable_witness: bool = True,
        search_config: AdmissionSearchConfig | None = None,
    ) -> None:
        self.database = database
        self.search = GroundingSearch(database)
        self.statistics = SolutionCacheStatistics()
        self.enable_witness = enable_witness
        self.search_config = search_config
        self._witnesses: dict[int, Witness] = {}
        #: Per-lane statistics slices (lane id → counters).  While a thread
        #: runs inside :meth:`lane_scope` every counter lands in its lane's
        #: slice instead of the shared object, so concurrent admission lanes
        #: never lose increments to read-modify-write races;
        #: :meth:`merged_statistics` reconciles the slices for reporting.
        self._lane_statistics: dict[int, SolutionCacheStatistics] = {}
        #: Guards lane-slice creation against a concurrent merge snapshot
        #: (a report must never iterate the dict mid-resize).
        self._lane_statistics_lock = threading.Lock()
        self._local = threading.local()

    # -- per-lane accounting -------------------------------------------------

    @property
    def _stats(self) -> SolutionCacheStatistics:
        """The active statistics target: the lane slice, or the shared one."""
        return getattr(self._local, "stats", None) or self.statistics

    @property
    def last_used_witness(self) -> bool:
        """True when the last :meth:`ensure` on *this thread* extended a
        known-valid witness (the fast path).

        Thread-local on purpose: admission reads the flag right after
        ``ensure`` to decide between an incremental and a full footprint for
        the successor witness, and with per-shard admission lanes two
        concurrent admissions must never observe each other's flag (a
        cross-read would store a witness with the wrong footprint — a
        correctness bug, not a statistics blemish).
        """
        return getattr(self._local, "last_used_witness", False)

    @last_used_witness.setter
    def last_used_witness(self, value: bool) -> None:
        self._local.last_used_witness = value

    @property
    def last_method(self) -> str:
        """Which search decided the last :meth:`ensure` on *this thread*.

        Thread-local for the same reason as :attr:`last_used_witness`: the
        admission path reads it right after ``ensure`` to stamp the commit
        result, and concurrent lanes must never see each other's value.
        """
        return getattr(self._local, "last_method", "backtracking")

    @property
    def last_exact(self) -> bool:
        """False when the last decision on this thread came from sampling."""
        return getattr(self._local, "last_exact", True)

    @property
    def last_exhausted_budget(self) -> bool:
        """True when the last search on this thread ran out of node budget."""
        return getattr(self._local, "last_exhausted_budget", False)

    def lane_statistics(self, lane_id: int) -> SolutionCacheStatistics:
        """The (lazily created) statistics slice of one admission lane."""
        with self._lane_statistics_lock:
            slice_ = self._lane_statistics.get(lane_id)
            if slice_ is None:
                slice_ = self._lane_statistics[lane_id] = SolutionCacheStatistics()
            return slice_

    def has_lane_statistics(self) -> bool:
        """True once any admission lane recorded into a per-lane slice."""
        with self._lane_statistics_lock:
            return bool(self._lane_statistics)

    @contextmanager
    def lane_scope(self, lane_id: int) -> Iterator[SolutionCacheStatistics]:
        """Route this thread's cache counters into a lane's slice."""
        previous = getattr(self._local, "stats", None)
        slice_ = self.lane_statistics(lane_id)
        self._local.stats = slice_
        try:
            yield slice_
        finally:
            self._local.stats = previous

    def merged_statistics(self) -> SolutionCacheStatistics:
        """The shared counters plus every lane slice, reconciled.

        This is what reports should read: with admission lanes active the
        witness hits/misses of concurrent admissions accumulate in per-lane
        slices (exact, no lost updates) and only the sum describes the
        whole cache.
        """
        merged = SolutionCacheStatistics()
        with self._lane_statistics_lock:
            sources = [self.statistics, *self._lane_statistics.values()]
        for field in fields(SolutionCacheStatistics):
            total = sum(getattr(source, field.name) for source in sources)
            setattr(merged, field.name, total)
        return merged

    # -- witness store -------------------------------------------------------

    def witness_for(self, partition: Partition) -> Witness | None:
        """The partition's witness, if still structurally current."""
        if not self.enable_witness:
            return None
        witness = self._witnesses.get(partition.partition_id)
        if witness is None:
            return None
        if witness.pending_ids != partition.transaction_ids():
            # The partition was merged or partially grounded since the
            # witness was stored; retire it.
            del self._witnesses[partition.partition_id]
            return None
        return witness

    def store_witness(
        self,
        partition: Partition,
        formula: Formula,
        substitution: Substitution,
        *,
        base: Witness | None = None,
    ) -> Witness | None:
        """Record ``substitution`` as the partition's witness for ``formula``.

        Args:
            partition: the partition the witness belongs to (its *current*
                pending ids become the structural signature).
            formula: the part of the composed body whose footprint must be
                computed — the full composed body normally, or just the new
                factor when ``base`` carries the footprint of everything
                before it.
            substitution: the satisfying substitution to cache.
            base: witness whose footprint ``formula``'s extends (fast-path
                extension: old factors keep their rows, since the extension
                never rebinds the old variables).
        """
        if not self.enable_witness:
            return None
        rows: set[RowKey] = set()
        relations: set[str] = set()
        monotone = not _has_negated_atoms(formula)
        if base is not None:
            rows.update(base.rows)
            relations.update(base.relations)
            monotone = monotone and base.monotone
        for atom in formula.atoms():
            instance = substitution.apply_atom(atom.as_body())
            if instance.is_ground():
                rows.add((instance.relation, instance.ground_values()))
            else:
                relations.add(instance.relation)
        witness = Witness(
            substitution=substitution,
            pending_ids=partition.transaction_ids(),
            rows=frozenset(rows),
            relations=frozenset(relations),
            monotone=monotone,
        )
        self._witnesses[partition.partition_id] = witness
        return witness

    def drop_witness(self, partition_id: int) -> None:
        """Forget the witness of a partition (merge, emptying, rejection)."""
        self._witnesses.pop(partition_id, None)

    def witnesses(self) -> dict[int, Witness]:
        """Snapshot of the stored witnesses (partition id → witness).

        Introspection for tests and diagnostics; no staleness check is
        applied (use :meth:`witness_for` for a structurally current one).
        """
        return dict(self._witnesses)

    def retain(self, partition_ids: Iterable[int]) -> None:
        """Drop every witness whose partition no longer exists.

        Called after merges: the merged-away partitions disappear from the
        manager, and without this their witnesses would linger in the store
        (leaking memory and polluting the invalidation counter).
        """
        live = frozenset(partition_ids)
        for partition_id in list(self._witnesses):
            if partition_id not in live:
                del self._witnesses[partition_id]

    def notify_deltas(self, deltas: Sequence[Delta]) -> None:
        """Invalidate witnesses whose footprint a committed delta touches.

        Called after blind writes commit and after grounded update portions
        execute.  Deltas that miss every witness's footprint leave the
        witnesses valid — this is the precise invalidation that lets the
        admission fast path skip re-verification most of the time.
        """
        if not deltas or not self._witnesses:
            return
        for partition_id, witness in list(self._witnesses.items()):
            if witness.touched_by(deltas):
                del self._witnesses[partition_id]
                self._stats.witness_invalidations += 1

    # -- verification --------------------------------------------------------

    def verify(self, formula: Formula, solution: Substitution | None) -> bool:
        """True if ``solution`` still satisfies ``formula`` over the database.

        Used after blind writes: the write may have removed the row the
        cached solution grounded on.
        """
        if solution is None:
            return False
        self._stats.verifications += 1
        return verify_solution(self.database, formula, solution)

    # -- extension / solving --------------------------------------------------

    def extend(
        self,
        base: Substitution | None,
        new_factor: Formula,
        required: Iterable[Variable],
    ) -> GroundingResult:
        """Extend ``base`` so that ``new_factor`` is also satisfied."""
        initial = base or Substitution.empty()
        result = self.search.find_one(new_factor, required=required, initial=initial)
        if result.satisfiable:
            self._stats.extension_hits += 1
        else:
            self._stats.extension_misses += 1
        return result

    def solve(
        self, formula: Formula, required: Iterable[Variable] | None = None
    ) -> GroundingResult:
        """Full grounding search over the composed body (cache miss path)."""
        self._stats.full_solves += 1
        result = self.search.find_one(formula, required=required)
        if not result.satisfiable:
            self._stats.failures += 1
        return result

    # -- admission flow --------------------------------------------------------

    def ensure(
        self,
        partition: Partition,
        new_factor: Formula | None = None,
        new_required: Iterable[Variable] = (),
    ) -> Substitution | None:
        """Ensure the partition (plus an optional new factor) is satisfiable.

        The fast path: when the partition has a structurally current witness
        that no delta has touched, the composed body is *not* re-verified —
        only ``new_factor`` is searched, extending the witness.  On a miss
        the seed flow (verify cached solution → extend → full solve) runs,
        so the fast path never changes which transactions are admitted.

        Args:
            partition: the partition whose invariant must hold.
            new_factor: factor contributed by a transaction being admitted
                (its body rewritten against the partition's accumulated
                updates); ``None`` when only re-validating.
            new_required: variables of the new factor that must be ground.

        Returns:
            A ground substitution witnessing satisfiability of the composed
            body (including the new factor when given), or ``None`` when the
            invariant cannot be maintained — in which case the caller must
            reject the transaction or write.
        """
        witness = self.witness_for(partition)
        probe = compute_admission(
            self.search,
            self.database,
            composed=partition.composed_formula(),
            cached_solution=partition.cached_solution,
            witness_substitution=None if witness is None else witness.substitution,
            new_factor=new_factor,
            new_required=frozenset(new_required),
            base_required=self._base_required(partition),
            enable_witness=self.enable_witness,
            config=self.search_config,
        )
        self.absorb_probe(probe)
        if (
            (new_factor is None or new_factor is TRUE)
            and not probe.used_witness
            and probe.substitution is not None
        ):
            # Re-validation refreshed or re-solved the whole composed body;
            # cache it as the partition's witness (full footprint).
            self.store_witness(
                partition, partition.composed_formula(), probe.substitution
            )
        return probe.substitution

    def absorb_probe(self, probe: AdmissionProbe) -> None:
        """Apply a probe's counters and witness flag to this cache.

        The writer-side half of a shipped admission search (and of the
        inline one — :meth:`ensure` funnels through here too, so counters
        are applied identically no matter where the search ran).  Lands in
        the active lane slice like any other counter update.
        """
        stats = self._stats
        stats.verifications += probe.verifications
        stats.extension_hits += probe.extension_hits
        stats.extension_misses += probe.extension_misses
        stats.full_solves += probe.full_solves
        stats.failures += probe.failures
        stats.witness_hits += probe.witness_hits
        stats.witness_misses += probe.witness_misses
        stats.fallback_searches += probe.fallback_searches
        stats.admission_nodes += probe.nodes
        if probe.method == "sampled":
            stats.sampled_admissions += 1
        self.last_used_witness = probe.used_witness
        self._local.last_method = probe.method
        self._local.last_exact = probe.exact
        self._local.last_exhausted_budget = probe.exhausted_budget

    @staticmethod
    def _base_required(partition: Partition) -> frozenset[Variable]:
        """Hard variables of every pending transaction of the partition."""
        if not partition.pending:
            return frozenset()
        return frozenset().union(
            *(entry.renamed.hard_variables() for entry in partition.pending)
        )
