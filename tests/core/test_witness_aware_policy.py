"""Witness-aware forced-grounding victim selection (ROADMAP item).

``GroundingStrategy.WITNESS_AWARE`` scores candidate victims by how many
cached witness rows their delete atoms unify with and grounds the cheapest
first.  Broadly quantified updates ("any seat") reach many witnessed rows
and therefore stay pending — which keeps the flexible transactions able to
rebind around later constant-pinned arrivals, so the witness fast path
serves more admissions than the paper's oldest-first order does on mixed
pinned/broad streams.
"""

from __future__ import annotations

import random

import pytest

from repro import GroundingPolicy, GroundingStrategy, QuantumConfig, QuantumDatabase


def make_qdb(strategy, *, k, seats=12):
    qdb = QuantumDatabase(config=QuantumConfig(k=k, strategy=strategy))
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows("Available", [(1, f"s{i}") for i in range(seats)])
    return qdb


def broad(user):
    return (
        f"-Available(1, ?s), +Bookings('{user}', 1, ?s) :-1 Available(1, ?s)"
    )


def pinned(user, seat):
    return (
        f"-Available(1, '{seat}'), +Bookings('{user}', 1, '{seat}')"
        f" :-1 Available(1, '{seat}')"
    )


def seeded_stream(seed, *, length=18, seats=12, pinned_ratio=0.5):
    rng = random.Random(seed)
    stream = []
    for i in range(length):
        if rng.random() < pinned_ratio:
            stream.append(pinned(f"u{i}", f"s{rng.randrange(seats)}"))
        else:
            stream.append(broad(f"u{i}"))
    return stream


def run(strategy, seed, *, k=2):
    qdb = make_qdb(strategy, k=k)
    decisions = [qdb.execute(t).committed for t in seeded_stream(seed)]
    report = qdb.statistics_report()
    return decisions, report


class TestVictimSelection:
    def test_prefers_victims_touching_fewest_witness_rows(self):
        """Directly: the pinned (narrow) victim is grounded, the broad one
        stays pending — the reverse of oldest-first."""
        qdb = make_qdb(GroundingStrategy.WITNESS_AWARE, k=2)
        qdb.execute(broad("early_broad"))
        qdb.execute(pinned("pinned", "s7"))
        policy = qdb.config.policy()
        partition = qdb.state.partitions.partitions[0]
        # The partition holds a current witness for the scorer to consult.
        assert partition.partition_id in qdb.state.cache.witnesses()
        victims = policy.victims(partition, cache=qdb.state.cache)
        # Within bounds: no victims yet.
        assert victims == []
        third = qdb.execute(broad("late_broad"))
        assert third.committed
        # k=2 forced exactly one grounding; the pinned transaction (cost 1:
        # its delete unifies only with its own seat row) was the victim,
        # not the oldest broad one (whose delete unifies with every
        # witnessed seat row of the partition).
        grounded = list(qdb.state.grounded_results.values())
        assert len(grounded) == 1
        assert grounded[0].transaction.updates[1].terms[0].value == "pinned"
        remaining = {
            e.original.updates[1].terms[0].value
            for e in qdb.state.pending_transactions()
        }
        assert remaining == {"early_broad", "late_broad"}

    def test_oldest_first_grounds_the_broad_transaction_instead(self):
        qdb = make_qdb(GroundingStrategy.OLDEST_FIRST, k=2)
        qdb.execute(broad("early_broad"))
        qdb.execute(pinned("pinned", "s7"))
        qdb.execute(broad("late_broad"))
        grounded = list(qdb.state.grounded_results.values())
        assert len(grounded) == 1
        assert grounded[0].transaction.updates[1].terms[0].value == "early_broad"

    def test_without_cache_degrades_to_oldest_first(self):
        # Admit under a loose bound, then evaluate a tighter witness-aware
        # policy by hand: without a cache it must pick the oldest victim.
        qdb = make_qdb(GroundingStrategy.WITNESS_AWARE, k=4)
        qdb.execute(broad("a"))
        qdb.execute(pinned("b", "s3"))
        partition = qdb.state.partitions.partitions[0]
        policy = GroundingPolicy(k=1, strategy=GroundingStrategy.WITNESS_AWARE)
        no_cache = policy.victims(partition)
        assert [v.sequence for v in no_cache] == [
            min(e.sequence for e in partition.pending)
        ]
        # With the cache the same policy picks the narrow (pinned) victim.
        with_cache = policy.victims(partition, cache=qdb.state.cache)
        assert [v.sequence for v in with_cache] == [
            max(e.sequence for e in partition.pending)
        ]


class TestFastPathHits:
    def test_more_witness_hits_than_oldest_first_on_seeded_stream(self):
        """The headline property: on a mixed pinned/broad seeded stream the
        witness-aware order keeps more admissions on the fast path."""
        seed = 21
        _, oldest = run(GroundingStrategy.OLDEST_FIRST, seed)
        _, aware = run(GroundingStrategy.WITNESS_AWARE, seed)
        assert aware["cache.witness_hits"] > oldest["cache.witness_hits"], (
            aware["cache.witness_hits"],
            oldest["cache.witness_hits"],
        )
        # The strategies admit the same number of transactions here — the
        # gain is purely in how much re-search admission needed.
        assert aware["state.admitted"] == oldest["state.admitted"]

    @pytest.mark.parametrize("seed", [9, 15, 18, 21, 26])
    def test_never_fewer_admissions_on_winning_seeds(self, seed):
        _, oldest = run(GroundingStrategy.OLDEST_FIRST, seed)
        _, aware = run(GroundingStrategy.WITNESS_AWARE, seed)
        assert aware["cache.witness_hits"] >= oldest["cache.witness_hits"]
        assert aware["state.admitted"] >= oldest["state.admitted"]
