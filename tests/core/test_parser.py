"""Tests for the Datalog-like transaction parser and formatter."""

from __future__ import annotations

import pytest

from repro.core.parser import format_transaction, parse_transaction
from repro.errors import InvalidTransactionError, ParseError
from repro.logic.atoms import AtomKind
from repro.logic.terms import Constant, Variable

MICKEY = (
    "-Available(f1, s1), +Bookings('Mickey', f1, s1) "
    ":-1 Available(f1, s1), [Bookings('Goofy', f1, s2)], [Adjacent(s1, s2)]"
)


class TestParsing:
    def test_paper_running_example(self):
        txn = parse_transaction(MICKEY)
        assert len(txn.updates) == 2
        assert txn.updates[0].kind is AtomKind.DELETE
        assert txn.updates[1].kind is AtomKind.INSERT
        assert txn.updates[1].terms[0] == Constant("Mickey")
        assert len(txn.body) == 3
        assert [a.optional for a in txn.body] == [False, True, True]
        assert txn.choose == 1

    def test_lowercase_identifiers_are_variables(self):
        txn = parse_transaction("+R(x, y) :-1 S(x, y)")
        assert txn.body[0].terms == (Variable("x"), Variable("y"))

    def test_uppercase_identifiers_are_constants(self):
        txn = parse_transaction("+R(Mickey, x) :-1 S(Mickey, x)")
        assert txn.body[0].terms[0] == Constant("Mickey")

    def test_question_mark_forces_variable(self):
        txn = parse_transaction("+R(?Seat) :-1 S(?Seat)")
        assert txn.body[0].terms[0] == Variable("Seat")

    def test_numeric_and_boolean_literals(self):
        txn = parse_transaction("+R(123, -4, 2.5, true, null) :-1 S(x)")
        values = [t.value for t in txn.updates[0].terms]
        assert values == [123, -4, 2.5, True, None]

    def test_quoted_strings_with_escapes(self):
        txn = parse_transaction(r"+R('O\'Hare') :-1 S(x)")
        assert txn.updates[0].terms[0] == Constant("O'Hare")

    def test_metadata_passthrough(self):
        txn = parse_transaction(
            "+R(x) :-1 S(x)", transaction_id=77, client="Mickey", partner="Goofy"
        )
        assert txn.transaction_id == 77
        assert txn.client == "Mickey"
        assert txn.partner == "Goofy"


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",  # nothing at all
            "+R(x) S(x)",  # missing :-1
            "R(x) :-1 S(x)",  # update atom without +/-
            "+R(x) :-1",  # empty body
            "+R(x :-1 S(x)",  # unbalanced parenthesis
            "+R(x) :-1 S(x) trailing(",  # trailing garbage
            "+?R(x) :-1 S(x)",  # ? on a relation name
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_transaction(text)

    def test_range_restriction_enforced(self):
        with pytest.raises(InvalidTransactionError):
            parse_transaction("+R(x, y) :-1 S(x)")

    def test_choose_other_than_one_rejected(self):
        with pytest.raises(InvalidTransactionError):
            parse_transaction("+R(x) :-2 S(x)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            MICKEY,
            "+R(x) :-1 S(x)",
            "-A(2, s3), +B('G', 2, s3) :-1 A(2, s3)",
            "+R('it''s', 3.5, true) :-1 S(x)".replace("''", r"\'"),
        ],
    )
    def test_format_then_parse(self, text):
        original = parse_transaction(text)
        rendered = format_transaction(original)
        reparsed = parse_transaction(rendered)
        assert reparsed.body == original.body
        assert reparsed.updates == original.updates
        assert reparsed.choose == original.choose

    def test_format_preserves_optional_brackets(self):
        rendered = format_transaction(parse_transaction(MICKEY))
        assert rendered.count("[") == 2
