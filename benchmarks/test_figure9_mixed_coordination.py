"""Figure 9 — coordination percentage vs. read percentage.

Regenerates the Figure 9 series: coordination decreases as the read fraction
grows, because reads force pre-emptive grounding before partners arrive.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure8 import default_parameters, paper_parameters
from repro.experiments.figure9 import run_figure9
from repro.experiments.report import format_table

PARAMETERS = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_figure9_coordination_vs_reads(benchmark):
    result = benchmark.pedantic(lambda: run_figure9(PARAMETERS), rounds=1, iterations=1)
    report("Figure 9", format_table(["Read %", "k", "Coordination %"], result.rows(), precision=1))
    percentages = sorted(PARAMETERS.read_percentages)
    largest_k = max(PARAMETERS.ks)
    series = result.series_for(largest_k)
    # At 0% reads, the largest k coordinates (near) everything; a read-heavy
    # workload forces pre-emptive grounding and visibly hurts coordination.
    # (Small-k series are noisy at the scaled-down default sizes, so the
    # monotone-decline check is asserted on the largest k only.)
    assert series[0][0] == percentages[0] and series[0][1] >= 90.0
    assert series[-1][1] <= series[0][1]
    assert series[-1][1] < 100.0
