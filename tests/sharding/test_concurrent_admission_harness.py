"""Randomized linearization harness for the lane-parallel admission pipeline.

The headline claim of the router-first concurrent admission pipeline
(:mod:`repro.sharding.admission_lane`) is *concurrency without decision
drift*: for any arrival sequence, running admissions on per-shard lanes
(with cross-shard arrivals as epoch barriers) must produce decisions,
partition contents, grounding valuations and final store state
**bit-identical** to the serialized writer — no matter how the lanes
interleave.

This harness attacks that claim with seeded randomness on three axes:

* **streams** — seeded arrival sequences mixing pinned bookings (the
  single-shard common case), wildcard bookings (cross-shard barriers),
  entangled partner pairs (the partner-aware rung) and overbooked flights
  (rejections and forced groundings), at tunable cross-shard ratios;
* **schedules** — a barrier-injecting scheduler: seeded jitter in the
  lane workers randomizes interleavings, and a seeded injector forces
  extra epoch barriers at arbitrary stream positions (escalation must
  never change outcomes, so *any* barrier placement must be invisible);
* **backends** — both shard executor strategies (``thread`` and
  ``process``), since the grounding fan-out at barriers and at the final
  ``ground_all`` runs on them.

Across the parametrizations below the harness replays well over 200
seeded streams per run (each compared fingerprint-by-fingerprint against
the serialized writer), which is the PR's acceptance bar.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import QuantumConfig, QuantumDatabase, parse_transaction

#: Thread-backend sweep: 3 cross-shard ratios x 60 seeds = 180 streams.
THREAD_RATIOS = (0.0, 0.15, 0.4)
THREAD_SEEDS = 60
#: Process-backend sweep: 2 ratios x 12 seeds = 24 streams (worker pools
#: make each stream pricier; the backend only differs at plan fan-out).
PROCESS_RATIOS = (0.0, 0.3)
PROCESS_SEEDS = 12

FLIGHTS = 4
SEATS = 3


def make_qdb(*, shards, lanes=False, backend="thread", k=3, search=None):
    kwargs = {} if search is None else {"search": search}
    qdb = QuantumDatabase(
        config=QuantumConfig(
            k=k, shards=shards, admission_lanes=lanes, shard_backend=backend, **kwargs
        )
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, FLIGHTS + 1) for i in range(SEATS)],
    )
    return qdb


def pinned(user, flight):
    return (
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def wildcard(user):
    return (
        f"-Available(?f, ?s), +Bookings('{user}', ?f, ?s)"
        " :-1 Available(?f, ?s)"
    )


def seeded_stream(
    seed,
    *,
    length=14,
    cross_ratio=0.15,
    partner_ratio=0.2,
):
    """One seeded arrival stream (parsed transactions, arrival order).

    ``cross_ratio`` of arrivals are wildcards (route cross-shard, hence
    epoch barriers); ``partner_ratio`` of draws emit an entangled pair
    pinned to one flight (the partner-aware lane rung); the rest are
    pinned single bookings.  Overbooking relative to ``k`` and the seat
    supply produces rejections and forced groundings.
    """
    rng = random.Random(seed)
    specs: list[tuple[str, str, str | None]] = []
    index = 0
    while len(specs) < length:
        user = f"u{seed}_{index}"
        index += 1
        roll = rng.random()
        if roll < cross_ratio:
            specs.append((wildcard(user), user, None))
        elif roll < cross_ratio + partner_ratio:
            flight = rng.randrange(1, FLIGHTS + 1)
            first, second = f"{user}a", f"{user}b"
            specs.append((pinned(first, flight), first, second))
            specs.append((pinned(second, flight), second, first))
        else:
            flight = rng.randrange(1, FLIGHTS + 1)
            specs.append((pinned(user, flight), user, None))
    specs = specs[:length]
    rng.shuffle(specs)
    return [
        parse_transaction(text, client=client, partner=partner)
        for text, client, partner in specs
    ]


def jitter_scheduler(seed):
    """Deterministic per-(slot, lane) jitter to randomize interleavings."""

    def hook(slot, lane_id):
        time.sleep(((slot * 2654435761 + lane_id * 40503 + seed) % 7) * 3e-4)

    return hook


def barrier_injector(seed, ratio=0.12):
    """Seeded injector forcing extra epoch barriers at stream positions."""
    rng = random.Random(seed ^ 0x5EED)
    picks = {slot for slot in range(512) if rng.random() < ratio}

    def inject(slot, _transaction):
        return slot in picks

    return inject


def run_stream(
    transactions, *, shards, lanes, backend="thread", scheduler=None, search=None
):
    """Run one stream to completion and fingerprint everything observable.

    The fingerprint is exactly what the acceptance criteria name: the
    accept/reject decision vector, the partition contents, the
    ``BENCH_admission.json``-visible invariants (admitted / rejected /
    merges / pending), every grounding valuation (admission-time and
    final), and the final extensional store state.
    """
    qdb = make_qdb(shards=shards, lanes=lanes, backend=backend, search=search)
    if scheduler is not None:
        controller = qdb.admission_controller()
        assert controller is not None
        jitter, injector = scheduler
        controller.before_admit = jitter
        controller.barrier_injector = injector
    results = qdb.commit_batch(transactions)
    decisions = [r.committed for r in results]
    partitions = sorted(
        p.transaction_ids() for p in qdb.state.partitions.partitions
    )
    pending = sorted(
        e.transaction_id for e in qdb.state.pending_transactions()
    )
    report = qdb.statistics_report()
    invariants = {
        "admitted": report["state.admitted"],
        "rejected": report["state.rejected"],
        "merges": report["partitions.merges"],
        "pending": qdb.pending_count,
    }
    qdb.ground_all()
    valuations = {
        tid: record.valuation
        for tid, record in qdb.state.grounded_results.items()
    }
    store = {
        name: sorted(tuple(row.values) for row in qdb.table(name))
        for name in ("Available", "Bookings")
    }
    qdb.close()
    return {
        "decisions": decisions,
        "partitions": partitions,
        "pending": pending,
        "invariants": invariants,
        "valuations": valuations,
        "store": store,
    }


def assert_linearized(reference, observed, context):
    """Every fingerprint facet must match the serialized writer exactly."""
    for facet in ("decisions", "partitions", "pending", "invariants"):
        assert observed[facet] == reference[facet], (context, facet)
    assert observed["valuations"] == reference["valuations"], (
        context,
        "valuations",
    )
    assert observed["store"] == reference["store"], (context, "store")


@pytest.mark.parametrize("cross_ratio", THREAD_RATIOS)
def test_linearization_thread_backend(cross_ratio):
    """Lane-parallel == serialized, over seeded streams and schedules."""
    for seed in range(THREAD_SEEDS):
        transactions = seeded_stream(seed, cross_ratio=cross_ratio)
        reference = run_stream(
            transactions, shards=4, lanes=False, backend="thread"
        )
        observed = run_stream(
            transactions,
            shards=4,
            lanes=True,
            backend="thread",
            scheduler=(jitter_scheduler(seed), barrier_injector(seed)),
        )
        assert_linearized(
            reference, observed, (cross_ratio, seed, "thread")
        )


@pytest.mark.parametrize("cross_ratio", PROCESS_RATIOS)
def test_linearization_process_backend(cross_ratio):
    """Same property on the process shard backend (plan shipping)."""
    for seed in range(PROCESS_SEEDS):
        transactions = seeded_stream(seed + 1000, cross_ratio=cross_ratio)
        reference = run_stream(
            transactions, shards=2, lanes=False, backend="process"
        )
        observed = run_stream(
            transactions,
            shards=2,
            lanes=True,
            backend="process",
            scheduler=(jitter_scheduler(seed), barrier_injector(seed)),
        )
        assert_linearized(
            reference, observed, (cross_ratio, seed, "process")
        )


def every_nth_cross_shard_stream(seed, n, *, length=14):
    """Seeded stream where every ``n``-th arrival is a wildcard barrier."""
    rng = random.Random(seed)
    transactions = []
    for index in range(length):
        user = f"n{seed}_{index}"
        if index % n == n - 1:
            text, client, partner = wildcard(user), user, None
        else:
            flight = rng.randrange(1, FLIGHTS + 1)
            text, client, partner = pinned(user, flight), user, None
        transactions.append(
            parse_transaction(text, client=client, partner=partner)
        )
    return transactions


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("n", [3, 5])
def test_epoch_barriers_every_nth_arrival(n, backend):
    """Property: streams with a cross-shard arrival every Nth position make
    identical decisions at shards=1/2/4 (lanes on) and on both backends.

    This is the epoch-barrier stress shape: lanes repeatedly fill with
    single-shard work and are drained by the periodic wildcard, so the
    barrier lifecycle (fill → drain → serialized merge → refill) runs many
    times per stream.
    """
    seeds = range(6) if backend == "thread" else range(3)
    for seed in seeds:
        transactions = every_nth_cross_shard_stream(seed, n)
        reference = run_stream(
            transactions, shards=1, lanes=False, backend="thread"
        )
        for shards in (2, 4):
            observed = run_stream(
                transactions,
                shards=shards,
                lanes=True,
                backend=backend,
                scheduler=(jitter_scheduler(seed), barrier_injector(seed)),
            )
            # shards=1 has no shard ownership, so partition fingerprints,
            # decisions, valuations and the store must all still agree.
            assert_linearized(
                reference, observed, (n, backend, seed, shards)
            )


def test_all_barriers_schedule_is_the_serialized_writer():
    """Forcing a barrier at *every* arrival degenerates to the serialized
    writer — the two extremes of the scheduler lattice must agree."""
    transactions = seeded_stream(777, cross_ratio=0.2)
    reference = run_stream(transactions, shards=4, lanes=False)
    observed = run_stream(
        transactions,
        shards=4,
        lanes=True,
        scheduler=(lambda *_: None, lambda *_: True),
    )
    assert_linearized(reference, observed, "all-barriers")


def test_duplicate_partner_keys_stay_deterministic():
    """Two in-flight arrivals with the *same* (client, partner) key must
    serialize on one lane (or a barrier): the entanglement registry keeps
    one waiting entry per key, so which duplicate a later reverse partner
    matches depends on registration order — the lanes must reproduce the
    serialized writer's order exactly, including the grounded pair."""
    specs = [
        # T1 and T2 share the key (A, B) but pin different flights (so
        # atom routing alone would happily put them on different lanes);
        # T3 completes the pair and must match T2 — the last registered —
        # exactly as on the serialized writer.
        (pinned("A1", 1), "A", "B"),
        (pinned("A2", 2), "A", "B"),
        (pinned("B1", 2), "B", "A"),
        # Unrelated traffic to keep the lanes busy around them.
        (pinned("x1", 3), "x1", None),
        (pinned("x2", 4), "x2", None),
    ]
    transactions = [
        parse_transaction(text, client=client, partner=partner)
        for text, client, partner in specs
    ]
    reference = run_stream(transactions, shards=4, lanes=False)
    for schedule_seed in range(6):
        observed = run_stream(
            transactions,
            shards=4,
            lanes=True,
            scheduler=(
                jitter_scheduler(schedule_seed),
                barrier_injector(schedule_seed),
            ),
        )
        assert_linearized(reference, observed, ("dup-partners", schedule_seed))


def test_entangled_pairs_ride_the_lanes():
    """Same-flight partner pairs take the partner-aware lane rung (not a
    blanket barrier), and coordination outcomes stay identical."""
    transactions = []
    for i in range(8):
        flight = (i % FLIGHTS) + 1
        a, b = f"pa{i}", f"pb{i}"
        transactions.append(
            parse_transaction(pinned(a, flight), client=a, partner=b)
        )
        transactions.append(
            parse_transaction(pinned(b, flight), client=b, partner=a)
        )
    reference = run_stream(transactions, shards=4, lanes=False)

    qdb = make_qdb(shards=4, lanes=True)
    results = qdb.commit_batch(transactions)
    controller = qdb.admission_controller()
    assert controller is not None
    # The pairs were lane-dispatched, not serialized behind barriers.
    assert controller.statistics.lane_dispatches > 0
    assert controller.statistics.barrier_arrivals == 0
    decisions = [r.committed for r in results]
    qdb.ground_all()
    valuations = {
        tid: record.valuation
        for tid, record in qdb.state.grounded_results.items()
    }
    qdb.close()
    assert decisions == reference["decisions"]
    assert valuations == reference["valuations"]
