"""Grounding policies: when and which pending transactions to force-ground.

The semantics of quantum databases "allows the reduction of uncertainty
through grounding at any time; therefore, we keep the size of the composed
bodies small by forcibly grounding and executing some pending resource
transactions as needed.  Concretely, we ground transactions to keep the
maximum number of pending transactions in each partition below a parameter
k; when grounding, we start with the oldest transactions based on their
arrival time in the system" (Section 4).

:class:`GroundingPolicy` captures the ``k`` bound and the victim-selection
strategy.  The default matches the paper (oldest first); a newest-first
strategy is provided for the ablation benchmark that quantifies how much the
choice matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import QuantumError
from repro.logic.atoms import Atom, AtomKind
from repro.logic.unification import unifiable
from repro.relational.planner import MYSQL_JOIN_LIMIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition
    from repro.core.quantum_state import PendingTransaction
    from repro.core.solution_cache import SolutionCache


class GroundingStrategy(enum.Enum):
    """Victim-selection order for forced grounding.

    ``OLDEST_FIRST`` / ``NEWEST_FIRST`` are the paper's arrival-time
    orders.  ``WITNESS_AWARE`` scores each candidate victim by how many
    cached witness rows its update portion could invalidate (a delete atom
    that unifies with a witnessed row is a potential invalidation) and
    grounds the cheapest victims first, ties broken oldest-first.  Broadly
    quantified updates — "any seat" — unify with many witnessed rows and
    therefore stay pending, which keeps the flexible transactions able to
    rebind around later constant-pinned arrivals instead of freezing their
    choices early; the witness-cache fast path stays hot for longer (see
    ``tests/core/test_witness_aware_policy.py``).
    """

    OLDEST_FIRST = "OLDEST_FIRST"
    NEWEST_FIRST = "NEWEST_FIRST"
    WITNESS_AWARE = "WITNESS_AWARE"


@dataclass(frozen=True)
class GroundingPolicy:
    """Policy bounding the number of pending transactions per partition.

    Attributes:
        k: maximum number of pending transactions allowed per partition.
            The paper sweeps k over {20, 30, 40} and uses the maximum value
            61 (MySQL's join limit) for the arrival-order experiment.
        strategy: which pending transactions are grounded first when the
            bound is exceeded.
    """

    k: int = MYSQL_JOIN_LIMIT
    strategy: GroundingStrategy = GroundingStrategy.OLDEST_FIRST

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QuantumError("the grounding bound k must be at least 1")

    def victims(
        self,
        partition: "Partition",
        cache: "SolutionCache | None" = None,
    ) -> list["PendingTransaction"]:
        """Pending transactions that must be grounded to restore the bound.

        Returns the transactions to ground, in the order they should be
        grounded, so that at most ``k`` remain pending afterwards.  Empty
        when the partition is already within bounds.

        Args:
            partition: the partition exceeding the bound.
            cache: the solution cache, consulted by the ``WITNESS_AWARE``
                strategy to score victims by the cached witness rows their
                updates could invalidate.  Without a cache the strategy
                degrades to oldest-first.
        """
        excess = len(partition) - self.k
        if excess <= 0:
            return []
        ordered = sorted(partition.pending, key=lambda entry: entry.sequence)
        if self.strategy is GroundingStrategy.NEWEST_FIRST:
            return list(reversed(ordered[-excess:]))
        if self.strategy is GroundingStrategy.WITNESS_AWARE and cache is not None:
            witness_rows = self._witnessed_rows(partition, cache)
            ordered.sort(
                key=lambda entry: (
                    self._invalidation_cost(entry, witness_rows),
                    entry.sequence,
                )
            )
        return ordered[:excess]

    @staticmethod
    def _witnessed_rows(
        partition: "Partition", cache: "SolutionCache"
    ) -> list[Atom]:
        """The rows the partition's own witness grounds on, as ground atoms.

        Only the victim partition's witness can contribute: a row in
        *another* partition's footprint is a ground instance of that
        partition's atoms, so a victim's delete unifying with it would
        make the two partitions unifiable — contradicting the partition
        independence invariant.  Scoring therefore stays O(one witness).
        """
        witness = cache.witness_for(partition)
        if witness is None:
            return []
        return [Atom.body(table, values) for table, values in witness.rows]

    @staticmethod
    def _invalidation_cost(
        entry: "PendingTransaction", witness_rows: Sequence[Atom]
    ) -> int:
        """Cached witness rows the entry's delete atoms could touch.

        A delete atom that unifies with a witnessed row *could* remove it
        when the grounding is executed; the more rows a victim's updates
        reach, the more cached fast-path state its forced grounding puts at
        risk.  (Inserts never invalidate the monotone witnesses composed
        bodies produce, so only deletes are scored.)
        """
        cost = 0
        for update in entry.renamed.updates:
            if update.kind is not AtomKind.DELETE:
                continue
            probe = update.as_body()
            for row in witness_rows:
                if unifiable(probe, row):
                    cost += 1
        return cost

    def within_bound(self, partition: "Partition") -> bool:
        """True if the partition respects the ``k`` bound."""
        return len(partition) <= self.k
