"""Tests for the pluggable admission-search subsystem.

Covers the redesigned :class:`AdmissionSearchConfig` API, the undoable
trail, the branch-and-bound searcher's decision equivalence with plain
backtracking, the per-shape fast paths, the opt-in sampling estimator's
determinism, and the typed node-budget outcome.
"""

from __future__ import annotations

import pytest

from repro.errors import QuantumError
from repro.logic.atoms import Atom
from repro.logic.formula import (
    AtomFormula,
    Equality,
    Negation,
    conjunction,
    disjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.relational.database import Database
from repro.solver.bnb import find_one_bnb
from repro.solver.fastpath import find_one_fastpath
from repro.solver.grounding import GroundingSearch
from repro.solver.sampling import sample_find_one
from repro.solver.strategy import (
    AdmissionSearchConfig,
    SamplingConfig,
    dispatch_find_one,
)
from repro.solver.undo import Trail, TrailBindings

F, S, S2, P, W = (Variable(n) for n in ("f", "s", "s2", "p", "w"))


def atom(relation, terms):
    return AtomFormula(Atom.body(relation, terms))


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    database.create_table(
        "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
    )
    for seat in ("1A", "1B", "1C"):
        database.insert("Available", (1, seat))
    database.insert("Bookings", ("Goofy", 1, "1B"))
    for left, right in (("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")):
        database.insert("Adjacent", (1, left, right))
    return database


# ---------------------------------------------------------------------------
# Config validation (the redesigned API surface)
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_default_is_seed_behaviour(self):
        config = AdmissionSearchConfig()
        assert config.strategy == "backtracking"
        assert config.node_budget is None
        assert config.sampling is None
        assert not config.fastpath_enabled

    def test_fastpath_defaults_follow_strategy(self):
        assert AdmissionSearchConfig(strategy="bnb").fastpath_enabled
        assert not AdmissionSearchConfig(strategy="backtracking").fastpath_enabled
        assert AdmissionSearchConfig(strategy="backtracking", fastpath=True).fastpath_enabled
        assert not AdmissionSearchConfig(strategy="bnb", fastpath=False).fastpath_enabled

    def test_unknown_strategy_rejected(self):
        with pytest.raises(QuantumError):
            AdmissionSearchConfig(strategy="simulated-annealing")

    @pytest.mark.parametrize("budget", [0, -1, 1.5, "10"])
    def test_bad_node_budget_rejected(self, budget):
        with pytest.raises(QuantumError):
            AdmissionSearchConfig(node_budget=budget)

    def test_bad_sampling_rejected(self):
        with pytest.raises(QuantumError):
            AdmissionSearchConfig(sampling="yes")
        with pytest.raises(QuantumError):
            SamplingConfig(threshold=0)
        with pytest.raises(QuantumError):
            SamplingConfig(samples=-3)
        with pytest.raises(QuantumError):
            SamplingConfig(seed=True)

    def test_frozen(self):
        config = AdmissionSearchConfig()
        with pytest.raises(Exception):
            config.strategy = "bnb"


# ---------------------------------------------------------------------------
# Trail / undoable bindings
# ---------------------------------------------------------------------------


class TestTrail:
    def test_undo_restores_bindings(self):
        bindings = TrailBindings(None)
        mark = bindings.trail.mark()
        assert bindings.unify(S, Constant("1A"))
        assert bindings.walk(S) == Constant("1A")
        bindings.trail.undo_to(mark)
        assert bindings.walk(S) is S

    def test_initial_bindings_survive_undo(self):
        bindings = TrailBindings(Substitution({F: Constant(1)}))
        mark = bindings.trail.mark()
        assert bindings.unify(S, Constant("1B"))
        bindings.trail.undo_to(mark)
        assert bindings.walk(F) == Constant(1)

    def test_max_depth_tracks_high_water_mark(self):
        bindings = TrailBindings(None)
        assert isinstance(bindings.trail, Trail)
        assert bindings.trail.max_depth == 0
        bindings.unify(S, Constant("x"))
        bindings.unify(F, Constant("y"))
        assert bindings.trail.max_depth == 2
        bindings.trail.undo_to(0)
        assert bindings.trail.max_depth == 2  # high-water, not current
        assert bindings.trail.mark() == 0

    def test_unify_conflicting_constants_fails(self):
        bindings = TrailBindings(None)
        assert bindings.unify(S, Constant("a"))
        assert not bindings.unify(S, Constant("b"))

    def test_alias_chain_walks(self):
        bindings = TrailBindings(None)
        assert bindings.unify(S, S2)
        assert bindings.unify(S2, Constant("z"))
        assert bindings.walk(S) == Constant("z")
        assert bindings.snapshot().apply_term(S) == Constant("z")


# ---------------------------------------------------------------------------
# BnB equivalence: identical decisions, never more nodes
# ---------------------------------------------------------------------------


def _shapes(db):
    return [
        atom("Available", [F, S]),
        atom("Available", [2, S]),
        conjunction(
            [
                atom("Bookings", ["Goofy", F, S2]),
                atom("Adjacent", [F, S, S2]),
                atom("Available", [F, S]),
            ]
        ),
        conjunction([atom("Available", [F, S]), Equality(S, Constant("1C"))]),
        conjunction(
            [
                atom("Available", [1, S]),
                atom("Available", [1, S2]),
                Negation(Equality(S, S2)),
            ]
        ),
        conjunction(
            [
                atom("Available", [1, S2]),
                disjunction([atom("Available", [2, S]), Equality(S, S2)]),
            ]
        ),
    ]


class TestBnbEquivalence:
    def test_decisions_and_substitutions_match_backtracking(self, db):
        for formula in _shapes(db):
            required = formula.free_variables()
            bt = GroundingSearch(db).find_one(formula, required=required)
            bnb = find_one_bnb(GroundingSearch(db), formula, required=required)
            assert bt.satisfiable == bnb.satisfiable, formula
            if bt.satisfiable:
                assert bt.substitution.restrict(required) == bnb.substitution.restrict(
                    required
                ), formula

    def test_never_expands_more_nodes(self, db):
        for formula in _shapes(db):
            required = formula.free_variables()
            bt_search = GroundingSearch(db)
            bt_search.find_one(formula, required=required)
            bnb_search = GroundingSearch(db)
            find_one_bnb(bnb_search, formula, required=required)
            assert bnb_search.totals.nodes <= bt_search.totals.nodes, formula

    def test_initial_substitution_respected(self, db):
        initial = Substitution({S: Constant("1B")})
        result = find_one_bnb(
            GroundingSearch(db), atom("Available", [1, S]), initial=initial
        )
        assert result.satisfiable and result.valuation()["s"] == "1B"
        conflicting = Substitution({S: Constant("9Z")})
        assert not find_one_bnb(
            GroundingSearch(db), atom("Available", [1, S]), initial=conflicting
        ).satisfiable

    def test_prune_counter_moves_on_forward_check(self, db):
        # Joining with an empty relation prunes before enumerating seats.
        search = GroundingSearch(db)
        formula = conjunction([atom("Available", [1, S]), atom("Bookings", [P, 2, S])])
        result = find_one_bnb(search, formula)
        assert not result.satisfiable
        assert search.totals.prunes >= 1

    def test_undo_depth_reported(self, db):
        search = GroundingSearch(db)
        formula = conjunction(
            [atom("Available", [F, S]), atom("Adjacent", [F, S, S2])]
        )
        result = find_one_bnb(search, formula)
        assert result.satisfiable
        assert search.totals.undo_depth >= 2

    def test_node_budget_sets_exhausted_flag(self, db):
        search = GroundingSearch(db)
        # Needs several descents to solve; a budget of one node cannot.
        formula = conjunction(
            [
                atom("Available", [F, S]),
                atom("Adjacent", [F, S, S2]),
                atom("Available", [F, S2]),
            ]
        )
        result = find_one_bnb(search, formula, node_budget=1)
        assert not result.satisfiable
        assert result.statistics.exhausted_budget
        # Unbounded, the same formula is satisfiable.
        assert find_one_bnb(GroundingSearch(db), formula).satisfiable


# ---------------------------------------------------------------------------
# Per-shape fast paths
# ---------------------------------------------------------------------------


class TestFastpath:
    def test_conjunctive_shape_hits_and_matches(self, db):
        formula = conjunction(
            [
                atom("Bookings", ["Goofy", F, S2]),
                atom("Adjacent", [F, S, S2]),
                atom("Available", [F, S]),
            ]
        )
        required = formula.free_variables()
        search = GroundingSearch(db)
        fast = find_one_fastpath(search, formula, required=required)
        assert fast is not None and fast.satisfiable
        assert search.totals.fastpath_hits == 1
        bt = GroundingSearch(db).find_one(formula, required=required)
        assert fast.substitution.restrict(required) == bt.substitution.restrict(
            required
        )

    def test_existential_shape_hits(self, db):
        formula = disjunction(
            [atom("Available", [2, S]), atom("Available", [1, S])]
        )
        search = GroundingSearch(db)
        fast = find_one_fastpath(search, formula, required=[S])
        assert fast is not None and fast.satisfiable
        assert fast.valuation()["s"] in {"1A", "1B", "1C"}

    def test_negation_shape_declines(self, db):
        formula = conjunction(
            [atom("Available", [1, S]), Negation(Equality(S, Constant("1A")))]
        )
        search = GroundingSearch(db)
        assert find_one_fastpath(search, formula, required=[S]) is None
        assert search.totals.fastpath_hits == 0

    def test_dispatch_prefers_fastpath_under_bnb(self, db):
        config = AdmissionSearchConfig(strategy="bnb")
        result, method = dispatch_find_one(
            GroundingSearch(db), config, atom("Available", [1, S]), required=[S]
        )
        assert result.satisfiable and method == "fastpath"

    def test_dispatch_falls_through_to_bnb(self, db):
        config = AdmissionSearchConfig(strategy="bnb")
        formula = conjunction(
            [atom("Available", [1, S]), Negation(Equality(S, Constant("1A")))]
        )
        result, method = dispatch_find_one(
            GroundingSearch(db), config, formula, required=[S]
        )
        assert result.satisfiable and method == "bnb"

    def test_dispatch_none_config_is_backtracking(self, db):
        result, method = dispatch_find_one(
            GroundingSearch(db), None, atom("Available", [1, S]), required=[S]
        )
        assert result.satisfiable and method == "backtracking"


# ---------------------------------------------------------------------------
# Sampling estimator
# ---------------------------------------------------------------------------


class TestSampling:
    def test_deterministic_under_fixed_seed(self, db):
        formula = conjunction(
            [atom("Available", [F, S]), atom("Adjacent", [F, S, S2])]
        )
        sampling = SamplingConfig(threshold=1, samples=4, seed=11)
        runs = [
            sample_find_one(GroundingSearch(db), formula, sampling=sampling)
            for _ in range(3)
        ]
        assert all(r.satisfiable == runs[0].satisfiable for r in runs)
        assert all(r.substitution == runs[0].substitution for r in runs)

    def test_different_seed_may_pick_different_witness(self, db):
        # Not asserting divergence (seeds can collide), only that every
        # seed still yields a *genuine* witness.
        formula = atom("Available", [1, S])
        for seed in range(5):
            result = sample_find_one(
                GroundingSearch(db),
                formula,
                sampling=SamplingConfig(threshold=1, samples=4, seed=seed),
            )
            assert result.satisfiable
            assert result.valuation()["s"] in {"1A", "1B", "1C"}

    def test_accepts_only_with_verified_grounding(self, db):
        result = sample_find_one(
            GroundingSearch(db),
            atom("Available", [2, S]),
            sampling=SamplingConfig(threshold=1, samples=8, seed=0),
        )
        assert not result.satisfiable  # no row, no lucky descent

    def test_samples_counter_moves(self, db):
        search = GroundingSearch(db)
        sample_find_one(
            search,
            atom("Available", [2, S]),
            sampling=SamplingConfig(threshold=1, samples=6, seed=0),
        )
        assert search.totals.samples == 6

    def test_dispatch_never_samples(self, db):
        # dispatch_find_one is the exact-search dispatcher; sampling engages
        # only at compute_admission's full-solve step, behind the explicit
        # SamplingConfig opt-in.
        config = AdmissionSearchConfig(
            strategy="bnb", sampling=SamplingConfig(threshold=1, samples=2, seed=0)
        )
        search = GroundingSearch(db)
        _result, method = dispatch_find_one(
            search, config, atom("Available", [1, S]), required=[S]
        )
        assert method in {"fastpath", "bnb"}
        assert search.totals.samples == 0
