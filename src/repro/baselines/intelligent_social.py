"""The "intelligent social" (IS) baseline (Section 5.2).

"Such a user first issues a query to check whether his/her friend has an
existing reservation.  If so, he books the adjacent seat, and if not he
books a seat with a free adjacent seat.  The IS workload simulates the kind
of coordination that is achievable without using a quantum database."

The IS client runs directly against the relational store (no quantum
state): every booking is assigned eagerly at submission time, so a user
whose friend arrives later can only *hope* that the seat they kept free
next to them is still free when the friend books.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.database import Database
from repro.relational.query import ConjunctiveQuery, Var


@dataclass
class ISBooking:
    """Outcome of one intelligent-social booking attempt.

    Attributes:
        client: the booking user.
        partner: the friend the user wants to sit next to (may be None).
        flight: booked flight, or None when no seat was available.
        seat: booked seat, or None when no seat was available.
        adjacent_to_partner: True when the booked seat is adjacent to an
            existing booking of the partner at booking time.
    """

    client: str
    partner: str | None
    flight: Any = None
    seat: Any = None
    adjacent_to_partner: bool = False

    @property
    def succeeded(self) -> bool:
        """True if a seat was booked."""
        return self.seat is not None


class IntelligentSocialClient:
    """Client-side coordination over an ordinary database.

    Args:
        database: the extensional store with ``Available``, ``Bookings`` and
            ``Adjacent`` tables (see :mod:`repro.workloads.flights`).
        available_table / bookings_table / adjacency_table: table-name
            overrides for custom schemas.
    """

    def __init__(
        self,
        database: Database,
        *,
        available_table: str = "Available",
        bookings_table: str = "Bookings",
        adjacency_table: str = "Adjacent",
    ) -> None:
        self.database = database
        self.available_table = available_table
        self.bookings_table = bookings_table
        self.adjacency_table = adjacency_table
        self.bookings: list[ISBooking] = []

    # -- queries -------------------------------------------------------------

    def _partner_booking(self, partner: str, flight: Any | None) -> dict[str, Any] | None:
        """The partner's existing booking, if any (optionally on a flight)."""
        query = ConjunctiveQuery(select=["s"] if flight is not None else ["f", "s"], limit=1)
        flight_term = Var("f") if flight is None else flight
        query.add_atom(self.bookings_table, [partner, flight_term, Var("s")])
        result = self.database.execute(query).first()
        if result is None:
            return None
        if flight is not None:
            result = dict(result)
            result["f"] = flight
        return result

    def _adjacent_available(self, flight: Any, seat: Any) -> dict[str, Any] | None:
        """An available seat adjacent to ``seat`` on ``flight``."""
        query = ConjunctiveQuery(select=["s"], limit=1)
        query.add_atom(self.adjacency_table, [flight, Var("s"), seat])
        query.add_atom(self.available_table, [flight, Var("s")])
        return self.database.execute(query).first()

    def _seat_with_free_neighbour(self, flight: Any | None) -> dict[str, Any] | None:
        """An available seat that still has an available adjacent seat."""
        query = ConjunctiveQuery(select=["s"] if flight is not None else ["f", "s"], limit=1)
        flight_term = Var("f") if flight is None else flight
        query.add_atom(self.available_table, [flight_term, Var("s")])
        query.add_atom(self.adjacency_table, [flight_term, Var("s"), Var("s2")])
        query.add_atom(self.available_table, [flight_term, Var("s2")])
        result = self.database.execute(query).first()
        if result is not None and flight is not None:
            result = dict(result)
            result["f"] = flight
        return result

    def _any_available(self, flight: Any | None) -> dict[str, Any] | None:
        """Any available seat (optionally on a specific flight)."""
        query = ConjunctiveQuery(select=["s"] if flight is not None else ["f", "s"], limit=1)
        flight_term = Var("f") if flight is None else flight
        query.add_atom(self.available_table, [flight_term, Var("s")])
        result = self.database.execute(query).first()
        if result is not None and flight is not None:
            result = dict(result)
            result["f"] = flight
        return result

    # -- booking -------------------------------------------------------------

    def book(
        self, client: str, partner: str | None = None, *, flight: Any | None = None
    ) -> ISBooking:
        """Book one seat for ``client``, coordinating with ``partner`` if possible.

        Follows the paper's IS strategy exactly: check the friend's booking
        first; book the adjacent seat if one is free; otherwise book a seat
        with a free neighbour (keeping a spot open for the friend); otherwise
        take any seat; give up only when the flight is full.
        """
        booking = ISBooking(client=client, partner=partner)
        choice: dict[str, Any] | None = None
        if partner is not None:
            partner_booking = self._partner_booking(partner, flight)
            if partner_booking is not None:
                adjacent = self._adjacent_available(
                    partner_booking["f"], partner_booking["s"]
                )
                if adjacent is not None:
                    choice = {"f": partner_booking["f"], "s": adjacent["s"]}
                    booking.adjacent_to_partner = True
        if choice is None:
            choice = self._seat_with_free_neighbour(flight)
        if choice is None:
            choice = self._any_available(flight)
        if choice is None:
            self.bookings.append(booking)
            return booking
        booking.flight = choice["f"]
        booking.seat = choice["s"]
        with self.database.begin() as txn:
            txn.delete(self.available_table, (booking.flight, booking.seat))
            txn.insert(self.bookings_table, (client, booking.flight, booking.seat))
        self.bookings.append(booking)
        return booking

    # -- reporting -------------------------------------------------------------

    def coordinated_pairs(self) -> int:
        """Number of users whose final seat is adjacent to their partner's.

        Computed against the *final* database state, which is the fair
        comparison with the quantum database (the IS user may get lucky:
        their partner can land next to them even without planning).
        """
        coordinated = 0
        for booking in self.bookings:
            if not booking.succeeded or booking.partner is None:
                continue
            query = ConjunctiveQuery(select=["s2"], limit=1)
            query.add_atom(
                self.adjacency_table, [booking.flight, booking.seat, Var("s2")]
            )
            query.add_atom(
                self.bookings_table, [booking.partner, booking.flight, Var("s2")]
            )
            if self.database.execute(query):
                coordinated += 1
        return coordinated

    def coordination_percentage(self) -> float:
        """Percentage of partnered bookings that ended up adjacent."""
        partnered = [b for b in self.bookings if b.partner is not None]
        if not partnered:
            return 0.0
        return 100.0 * self.coordinated_pairs() / len(partnered)
