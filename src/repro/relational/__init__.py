"""Relational storage substrate for the quantum database reproduction.

The CIDR 2013 prototype is a Java middle tier layered over MySQL/InnoDB.  We
do not have MySQL (and the point of this reproduction is to be
self-contained), so this subpackage provides the extensional store the
quantum middle tier needs:

* key-enforced tables with secondary hash indexes (:mod:`.table`,
  :mod:`.index`),
* a conjunctive query facility with ``LIMIT`` support, a greedy bounded-depth
  join-order planner (the analogue of MySQL's ``optimizer_search_depth``
  knob) and pipelined index-nested-loop execution (:mod:`.query`,
  :mod:`.planner`, :mod:`.executor`),
* insert/delete/update statements (:mod:`.dml`),
* transactions with undo and a write-ahead log plus recovery
  (:mod:`.transaction`, :mod:`.wal`, :mod:`.recovery`),
* a :class:`~repro.relational.database.Database` facade tying it together.

The public names re-exported here form the stable API used by the rest of
the library and by applications that want to populate the extensional store
directly.
"""

from repro.relational.conditions import (
    ColumnRef,
    Comparison,
    Condition,
    Conjunction,
    Constant,
    Disjunction,
    Negation,
)
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.dml import Delete, Insert, Update
from repro.relational.index import HashIndex
from repro.relational.planner import Planner, PlannerConfig
from repro.relational.query import ConjunctiveQuery, QueryAtom, QueryResult
from repro.relational.recovery import recover_database
from repro.relational.row import Row
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.transaction import Transaction
from repro.relational.wal import LogRecord, WriteAheadLog

__all__ = [
    "ColumnRef",
    "Column",
    "Comparison",
    "Condition",
    "ConjunctiveQuery",
    "Conjunction",
    "Constant",
    "DataType",
    "Database",
    "Delete",
    "Disjunction",
    "HashIndex",
    "Insert",
    "LogRecord",
    "Negation",
    "Planner",
    "PlannerConfig",
    "QueryAtom",
    "QueryResult",
    "Row",
    "Table",
    "TableSchema",
    "Transaction",
    "Update",
    "WriteAheadLog",
    "recover_database",
]
