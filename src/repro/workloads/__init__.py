"""Workload and data generators for the evaluation section.

The paper's experiments run over an "artificially generated database of
flights" and a "workload of simulated entangled resource transactions"
modelling a social travel application; this subpackage regenerates both:

* :mod:`.flights` — flight databases (seats in rows of three, adjacency
  pairs, configurable size);
* :mod:`.arrival_orders` — the four arrival orders of Table 1;
* :mod:`.entangled_workload` — coordination-pair transaction streams;
* :mod:`.mixed` — mixed read / resource-transaction workloads (Figures 8
  and 9);
* :mod:`.calendar` — the calendar-management scenario from the
  introduction, used by the examples and the CSP-based ablation.
"""

from repro.workloads.arrival_orders import ArrivalOrder, expected_max_pending, order_arrivals
from repro.workloads.entangled_workload import (
    CoordinationPair,
    EntangledWorkload,
    generate_workload,
)
from repro.workloads.flights import FlightDatabaseSpec, create_flight_tables, populate_flights
from repro.workloads.mixed import MixedWorkload, Operation, OperationKind, generate_mixed_workload

__all__ = [
    "ArrivalOrder",
    "CoordinationPair",
    "EntangledWorkload",
    "FlightDatabaseSpec",
    "MixedWorkload",
    "Operation",
    "OperationKind",
    "create_flight_tables",
    "expected_max_pending",
    "generate_mixed_workload",
    "generate_workload",
    "order_arrivals",
    "populate_flights",
]
