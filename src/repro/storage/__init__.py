"""The log-structured durability engine (PR 8).

Segmented write-ahead logging for the relational store underneath the
quantum database: CRC-framed records in sealed append-only segments, a
manifest with atomic rename-based updates, a checkpoint *lineage* (a
periodic full-snapshot ``CHECKPOINT_BASE`` chained with churn-sized
``CHECKPOINT_DELTA`` records), and a background compactor that rewrites
sealed segments without ever blocking the writer.  See
``docs/architecture.md`` ("Durability engine") for the design and the
pause-bound argument.

Quickstart::

    from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover

    config = DurabilityConfig(mode="segmented", directory="wal-dir")
    db.wal = SegmentedWriteAheadLog("wal-dir", config)   # fresh store
    ...
    db2 = recover("wal-dir", make_schema)                # after a crash

or, for a server, pass the config instead of ``wal_path``::

    ServerConfig(durability=DurabilityConfig(mode="segmented", directory="wal-dir"))
"""

from repro.storage.compactor import Compactor
from repro.storage.config import DurabilityConfig
from repro.storage.engine import DurabilityStatistics, SegmentedWriteAheadLog
from repro.storage.manifest import Manifest
from repro.storage.recovery import recover
from repro.storage.segment import LogSegment, SegmentWriter

__all__ = [
    "Compactor",
    "DurabilityConfig",
    "DurabilityStatistics",
    "LogSegment",
    "Manifest",
    "SegmentWriter",
    "SegmentedWriteAheadLog",
    "recover",
]
