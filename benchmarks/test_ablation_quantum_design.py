"""Ablations of the quantum database's own design choices.

Two ablations the paper's design discussion calls out:

* **grounding victim order** — the prototype grounds the *oldest* pending
  transactions when the k bound is hit; grounding the newest instead
  sacrifices exactly the transactions that are still waiting for their
  partners, so coordination should not improve and forced groundings of
  fresh requests should hurt when partners are far apart;
* **serializability mode** — semantic serializability grounds only the
  transactions a collapse actually needs, while strict (arrival-order)
  serializability drags the whole prefix along; both admit the same
  transactions, but strict leaves fewer pending transactions (fewer future
  possible worlds) after the same reads.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.grounding_policy import GroundingStrategy
from repro.core.serializability import SerializabilityMode
from repro.experiments.report import format_table
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = (
    FlightDatabaseSpec(num_flights=1, rows_per_flight=20)
    if BENCH_SCALE == "paper"
    else FlightDatabaseSpec(num_flights=1, rows_per_flight=6)
)
SMALL_K = 4

ANY_SEAT = "-Available({f}, ?s), +Bookings('{name}', {f}, ?s) :-1 Available({f}, ?s)"


def run_with_strategy(strategy: GroundingStrategy, k: int = SMALL_K):
    workload = generate_workload(SPEC, ArrivalOrder.IN_ORDER, seed=0)
    database = build_flight_database(SPEC)
    qdb = QuantumDatabase(database, QuantumConfig(k=k, strategy=strategy))
    for transaction in workload:
        qdb.execute(transaction)
    qdb.ground_all()
    from repro.experiments.runner import coordinated_users_in

    return coordinated_users_in(database, workload), workload.max_possible_coordinations


def test_ablation_grounding_victim_order(benchmark):
    def run():
        oldest = run_with_strategy(GroundingStrategy.OLDEST_FIRST)
        newest = run_with_strategy(GroundingStrategy.NEWEST_FIRST)
        unbounded = run_with_strategy(GroundingStrategy.OLDEST_FIRST, k=10_000)
        return oldest, newest, unbounded

    (oldest, newest, unbounded) = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("oldest-first, small k (paper)", oldest[0], oldest[1], 100.0 * oldest[0] / oldest[1]),
        ("newest-first, small k", newest[0], newest[1], 100.0 * newest[0] / newest[1]),
        ("oldest-first, unbounded k", unbounded[0], unbounded[1], 100.0 * unbounded[0] / unbounded[1]),
    ]
    report(
        "Ablation: forced grounding under the k bound (In Order arrivals)",
        format_table(["configuration", "coordinated", "max", "%"], rows, precision=1),
    )
    # With an unbounded k the system coordinates everything; a small k can
    # only lose coordination (forced grounding fixes seats before partners
    # arrive), never gain it.  How much is lost — and which victim order
    # loses less — depends on the arrival pattern and scale, so only the
    # direction is asserted.
    assert unbounded[0] == unbounded[1]
    assert oldest[0] <= unbounded[0]
    assert newest[0] <= unbounded[0]


def test_ablation_serializability_mode(benchmark):
    flight = SPEC.flight_numbers()[0]

    def run():
        remaining = {}
        for mode in SerializabilityMode:
            qdb = QuantumDatabase(
                build_flight_database(SPEC), QuantumConfig(serializability=mode)
            )
            for i in range(6):
                qdb.execute(ANY_SEAT.format(f=flight, name=f"user{i}"))
            # A read touching only the *last* user's booking arrives.
            qdb.read("Bookings", ["user5", None, None])
            remaining[mode] = qdb.pending_count
        return remaining

    remaining = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: serializability mode (pending left after a targeted read)",
        format_table(
            ["mode", "still pending"],
            [(mode.value, count) for mode, count in remaining.items()],
        ),
    )
    # Semantic serializability preserves strictly more deferred choices.
    assert remaining[SerializabilityMode.SEMANTIC] > remaining[SerializabilityMode.STRICT]
    assert remaining[SerializabilityMode.STRICT] == 0
    assert remaining[SerializabilityMode.SEMANTIC] == 5
