#!/usr/bin/env python
"""Perf-regression gate over the committed ``BENCH_admission.json``.

``make smoke`` regenerates ``BENCH_admission.json`` from the sharded
admission benchmark; this script compares the fresh file against the
baseline committed at ``HEAD`` and fails (exit code 1) when the admission
path regressed:

* **decision divergence** — a sweep point's admitted/rejected/transaction
  counts differ from the baseline's.  Decisions are deterministic, so any
  divergence is a correctness bug, never noise; this always fails.
* **throughput regression** — a sweep point's *normalized* admission
  throughput (its ``admission_txn_per_s`` relative to the same run's
  unsharded baseline point) dropped by more than the tolerance, default
  30%.  Lane-parallel sweep points (``lanes: true`` — the router-first
  concurrent admission pipeline) gate exactly like the serialized ones,
  so CI catches concurrency regressions in the lane scheduler too; the
  shipped-admission points (process backend with lanes on) gate with a
  wider throughput band (see ``SHIPPED_TOLERANCE``) because their
  per-admission IPC hop is timing-bimodal on small CI boxes, while their
  decision counters keep gating strictly.  Normalizing within the run is
  what makes the gate meaningful on
  CI runners whose absolute speed differs arbitrarily from the machine
  that produced the committed numbers; pass ``--absolute`` to compare raw
  txn/s instead when both files come from the same machine.

* **latency regression** — the ``"network"`` section (emitted by the TCP
  load benchmark) carries commit-latency percentiles per concurrent-client
  count.  A shared latency point whose p95, normalized by the same run's
  anchor throughput (a machine-speed proxy: latency times machine speed is
  roughly machine-invariant), grew by more than ``LATENCY_TOLERANCE``
  (50%) fails the gate; network throughput gates with the standard
  tolerance, and the point's decision counters gate strictly.  Unknown
  keys in any result are ignored, so the format can keep growing without
  tripping older baselines.

* **durability regression** — the ``"durability"`` section (emitted by
  ``make recoverbench``, the segmented-WAL recovery benchmark) carries
  cold-restart recovery time and the max delta-checkpoint pause.  Both
  gate with the same anchor normalization as the latency points and fail
  beyond ``DURABILITY_TOLERANCE`` (50%); additionally the fresh run must
  show compaction actually reclaiming bytes and its delta checkpoint
  pause staying below the legacy full-snapshot fold it replaces — the
  two structural claims of the segmented engine, gated so they cannot
  silently rot.  Two more structural claims gate on every fresh point
  that carries the fields, baseline or not: the group-fsync window must
  keep windowed ``fsyncs_per_commit`` below 1, and with incremental
  bases the writer must fold at most the first base
  (``writer_base_folds <= 1``) while the compaction pass synthesized at
  least one (``bases_synthesized >= 1``).

* **admission-search regression** — the ``"search"`` section (emitted by
  ``make searchbench``, the admission-search strategy benchmark) compares
  branch-and-bound against the seed backtracking searcher.  Two claims
  are structural and fail on every fresh run that violates them,
  baseline or not: the strategies decided every transaction identically
  (``decisions_match``), and bnb expanded at most
  ``SEARCH_NODES_RATIO_BOUND`` of backtracking's admission-search nodes.
  Against the baseline, the fast-path hit rate must not drop beyond the
  throughput tolerance, and the sampled-admission latency — anchor-
  normalized like every other millisecond quantity — must not grow
  beyond ``LATENCY_TOLERANCE``.

Sweep points present on only one side are reported but never fail the
gate: the grid may legitimately grow (a new backend) or shrink across PRs.
Runs with different workload scales (``"smoke"`` for ``-m smoke`` runs,
else ``REPRO_BENCH_SCALE``) or workload parameters **fail the gate**:
their numbers are not comparable, and a mis-scaled committed baseline
would otherwise disarm every comparison silently (exactly the bug this
gate once had — it *skipped* on mismatch, so a ``"default"``-scale
baseline turned the gate into an exit-0 no-op on every CI run).  The
committed baseline must be a ``make smoke`` run, since that is what CI
regenerates; re-baseline by committing the fresh file.  The only
skip-as-success left is the genuine first-commit case where no baseline
exists at ``HEAD`` at all.  ``--require-points N`` additionally fails
the gate when fewer than N sweep points were actually compared, so CI
can reject any outcome where the gate silently had nothing to do.

Used as ``make gate`` (part of ``make check``), so the gate runs
identically on a developer laptop and in the CI workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_admission.json"
DEFAULT_TOLERANCE = 0.30

#: Throughput tolerance for shipped-admission sweep points (process
#: backend with lanes on).  Those points pay one worker round trip per
#: admission, and on the 1-2 core boxes CI lands on that makes their
#: wall-clock bimodal — run-to-run swings of 2x are routine while every
#: other point stays within a few percent.  Their decisions and
#: round-trip counters still gate strictly; only the throughput band
#: widens, enough to absorb scheduler bimodality but not an
#: order-of-magnitude collapse (e.g. a per-admission pool respawn).
SHIPPED_TOLERANCE = 0.75

#: Maximum tolerated relative p95 commit-latency growth on the network
#: load points.  Latency tails over real sockets are noisier than bulk
#: throughput (one delayed scheduling round lands whole-hog in the p95),
#: so the band is wider than the throughput default — but a latency
#: doubling still fails.
LATENCY_TOLERANCE = 0.50

#: Maximum tolerated relative growth of the durability points' recovery
#: time and max delta-checkpoint pause (anchor-normalized, like the
#: latency points).  Single-digit-millisecond pauses are scheduling-noisy
#: on shared CI boxes, so the band matches the latency one.
DURABILITY_TOLERANCE = 0.50

#: Absolute floor (raw milliseconds) under which the delta-checkpoint
#: pause growth check never fails.  The pause is a ~1ms quantity at smoke
#: scale and a *max* over every checkpoint in the run, so one delayed
#: scheduling slice anywhere can multiply it — a purely relative band
#: flaps on loaded boxes no matter which run is committed as the
#: baseline.  The effective floor is the larger of this constant and
#: half the same run's legacy full-snapshot pause: the engine's claim is
#: the pause staying materially below the fold it replaced, so only a
#: fresh pause that has lost most of that advantage re-arms the band
#: (and one that reaches the fold fails the structural delta-below-legacy
#: check regardless).
PAUSE_NOISE_FLOOR_MS = 5.0

#: Structural bound on the admission-search points: branch-and-bound must
#: expand at most this fraction of the backtracking run's admission-search
#: nodes.  Node counts are deterministic (same workload, same algorithm),
#: so this is a hard acceptance bar, not a noise band — a fresh run above
#: it fails even against an identical baseline.
SEARCH_NODES_RATIO_BOUND = 0.5


def tolerance_for(key: tuple[int, str, bool], default: float) -> float:
    """The throughput-drop tolerance applied to one sweep point."""
    _shards, backend, lanes = key
    if backend == "process" and lanes:
        return max(default, SHIPPED_TOLERANCE)
    return default


def load_fresh(path: Path) -> dict:
    """The freshly emitted benchmark file (written by ``make smoke``)."""
    return json.loads(path.read_text())


def load_baseline(explicit: str | None) -> dict | None:
    """The committed baseline: an explicit file, or ``HEAD``'s copy."""
    if explicit is not None:
        return json.loads(Path(explicit).read_text())
    try:
        shown = subprocess.run(
            ["git", "show", f"HEAD:{BENCH_JSON.name}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return json.loads(shown.stdout)


def point_key(result: dict) -> tuple[int, str, bool]:
    """Identity of one sweep point: ``(shards, backend, lanes)``.

    Baselines written before the backend dimension existed default to the
    backend their shard count implied; baselines written before the
    lane-parallel admission pipeline default to ``lanes=False`` — so lane
    rows gate independently of their serialized siblings.
    """
    shards = int(result["shards"])
    default = "unsharded" if shards == 1 else "thread"
    return (
        shards,
        str(result.get("backend", default)),
        bool(result.get("lanes", False)),
    )


def indexed(payload: dict) -> dict[tuple[int, str, bool], dict]:
    return {point_key(result): result for result in payload.get("results", [])}


#: Sweep point every other point's throughput is normalized against.
ANCHOR_KEY = (1, "unsharded", False)


def normalized_throughput(
    points: dict[tuple[int, str, bool], dict], key: tuple[int, str, bool]
) -> float | None:
    """A point's admission throughput relative to its run's anchor point."""
    baseline = points.get(ANCHOR_KEY)
    if baseline is None or key not in points:
        return None
    denominator = float(baseline["admission_txn_per_s"])
    if denominator <= 0:
        return None
    return float(points[key]["admission_txn_per_s"]) / denominator


def network_points(payload: dict) -> dict[int, dict]:
    """The TCP load sweep, keyed by concurrent-client count.

    Baselines written before the network layer existed simply have no
    ``"network"`` section — an empty mapping, which the gate reports as
    new points rather than failing.
    """
    section = payload.get("network") or {}
    return {int(result["clients"]): result for result in section.get("results", [])}


def normalized_ms(
    value: float | None, points: dict[tuple[int, str, bool], dict]
) -> float | None:
    """A millisecond quantity scaled by the run's anchor throughput.

    Latency times machine speed is roughly machine-invariant, so scaling
    each file's milliseconds by its own anchor ``admission_txn_per_s``
    lets a slow CI runner gate against a baseline recorded on a fast
    laptop — the same trick normalized throughput uses, applied to
    quantities where *higher* is worse (commit p95, recovery time,
    checkpoint pause).
    """
    anchor = points.get(ANCHOR_KEY)
    if anchor is None or value is None:
        return None
    speed = float(anchor["admission_txn_per_s"])
    if speed <= 0:
        return None
    return float(value) * speed


def normalized_latency(
    result: dict, points: dict[tuple[int, str, bool], dict]
) -> float | None:
    """p95 commit latency scaled by the run's anchor throughput."""
    return normalized_ms(result.get("p95_ms"), points)


def durability_points(payload: dict) -> dict[tuple[int, int], dict]:
    """The recovery-benchmark sweep, keyed by ``(store_rows, churn_rows)``.

    Baselines written before the segmented durability engine existed have
    no ``"durability"`` section — an empty mapping, reported as new points
    rather than failed.
    """
    section = payload.get("durability") or {}
    return {
        (int(result["store_rows"]), int(result["churn_rows"])): result
        for result in section.get("results", [])
    }


def search_points(payload: dict) -> dict[tuple[int, int], dict]:
    """The admission-search sweep, keyed by ``(num_flights, rows_per_flight)``.

    Baselines written before the strategy subsystem existed have no
    ``"search"`` section — an empty mapping, reported as new points rather
    than failed.
    """
    section = payload.get("search") or {}
    return {
        (int(result["num_flights"]), int(result["rows_per_flight"])): result
        for result in section.get("results", [])
    }


def missing_anchor(
    points: dict[tuple[int, str, bool], dict], label: str
) -> str | None:
    """A failure message when a non-empty run lacks a usable anchor point.

    Normalized gating divides every point by the run's ``(1, "unsharded",
    False)`` throughput; without that anchor every comparison would be
    silently skipped, which is indistinguishable from "everything passed".
    An empty results list is fine (nothing to normalize), as is gating in
    ``--absolute`` mode (the caller skips this check).
    """
    if not points:
        return None
    anchor = points.get(ANCHOR_KEY)
    if anchor is None:
        return f"{label} run has sweep points but no {ANCHOR_KEY} anchor"
    if float(anchor["admission_txn_per_s"]) <= 0:
        return f"{label} run's {ANCHOR_KEY} anchor has non-positive throughput"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="maximum tolerated relative throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON file (default: HEAD's BENCH_admission.json)",
    )
    parser.add_argument(
        "--fresh",
        default=str(BENCH_JSON),
        help="freshly emitted JSON file (default: repo BENCH_admission.json)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw txn/s instead of run-normalized throughput",
    )
    parser.add_argument(
        "--require-points",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fail unless at least N sweep points were actually compared "
            "(rejects the no-baseline and zero-shared-points outcomes)"
        ),
    )
    args = parser.parse_args(argv)

    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        print(f"bench gate: {fresh_path} missing — run `make smoke` first")
        return 1
    fresh = load_fresh(fresh_path)
    baseline = load_baseline(args.baseline)
    if baseline is None:
        if args.require_points > 0:
            print(
                "bench gate: FAIL — no committed baseline found but "
                f"--require-points {args.require_points} demands a comparison"
            )
            return 1
        print("bench gate: no committed baseline found; nothing to compare")
        return 0
    if fresh.get("scale") != baseline.get("scale"):
        print(
            "bench gate: FAIL — scale mismatch "
            f"({baseline.get('scale')!r} -> {fresh.get('scale')!r}); the "
            "committed baseline must be a `make smoke` run (commit the fresh "
            "file to re-baseline)"
        )
        return 1
    if fresh.get("workload") != baseline.get("workload"):
        print(
            "bench gate: FAIL — workload mismatch: baseline "
            f"{baseline.get('workload')} vs fresh {fresh.get('workload')}; "
            "numbers are not comparable (commit the fresh file to re-baseline)"
        )
        return 1

    fresh_points = indexed(fresh)
    base_points = indexed(baseline)
    if not args.absolute:
        anchor_failures = [
            message
            for message in (
                missing_anchor(base_points, "baseline"),
                missing_anchor(fresh_points, "fresh"),
            )
            if message is not None
        ]
        if anchor_failures:
            for message in anchor_failures:
                print(
                    f"bench gate: FAIL — {message}; normalized throughput "
                    "gating would silently skip every point"
                )
            return 1
    shared = sorted(set(fresh_points) & set(base_points))
    only_base = sorted(set(base_points) - set(fresh_points))
    only_fresh = sorted(set(fresh_points) - set(base_points))
    for key in only_base:
        print(f"bench gate: note — baseline point {key} no longer swept")
    for key in only_fresh:
        print(f"bench gate: note — new sweep point {key} (no baseline)")

    failures: list[str] = []
    for key in shared:
        fresh_result = fresh_points[key]
        base_result = base_points[key]
        for field in ("transactions", "admitted", "rejected"):
            if fresh_result.get(field) != base_result.get(field):
                failures.append(
                    f"{key}: decisions diverged — {field} "
                    f"{base_result.get(field)} -> {fresh_result.get(field)}"
                )
        if args.absolute:
            base_value = float(base_result["admission_txn_per_s"])
            fresh_value = float(fresh_result["admission_txn_per_s"])
        else:
            base_norm = normalized_throughput(base_points, key)
            fresh_norm = normalized_throughput(fresh_points, key)
            if base_norm is None or fresh_norm is None:
                continue
            base_value, fresh_value = base_norm, fresh_norm
        if base_value <= 0:
            continue
        drop = 1.0 - fresh_value / base_value
        label = "txn/s" if args.absolute else "normalized throughput"
        print(
            f"bench gate: {key} {label} {base_value:.2f} -> {fresh_value:.2f}"
            f" ({-drop:+.1%})"
        )
        tolerance = tolerance_for(key, args.tolerance)
        if drop > tolerance:
            failures.append(
                f"{key}: {label} regressed {drop:.1%} "
                f"(tolerance {tolerance:.0%})"
            )

    # -- network load points (commit-latency percentiles over TCP) ----------
    fresh_net = network_points(fresh)
    base_net = network_points(baseline)
    shared_net = sorted(set(fresh_net) & set(base_net))
    for clients in sorted(set(base_net) - set(fresh_net)):
        print(f"bench gate: note — baseline network point {clients} clients no longer swept")
    for clients in sorted(set(fresh_net) - set(base_net)):
        print(f"bench gate: note — new network point {clients} clients (no baseline)")
    if shared_net:
        fresh_net_scale = (fresh.get("network") or {}).get("scale")
        base_net_scale = (baseline.get("network") or {}).get("scale")
        if fresh_net_scale != base_net_scale:
            print(
                "bench gate: FAIL — network scale mismatch "
                f"({base_net_scale!r} -> {fresh_net_scale!r}); commit the "
                "fresh file to re-baseline"
            )
            return 1
    compared_net = 0
    for clients in shared_net:
        fresh_result = fresh_net[clients]
        base_result = base_net[clients]
        if fresh_result.get("workload") != base_result.get("workload"):
            failures.append(
                f"network {clients} clients: workload mismatch — "
                f"{base_result.get('workload')} vs {fresh_result.get('workload')}"
            )
            continue
        for field in ("transactions", "admitted", "rejected"):
            if fresh_result.get(field) != base_result.get(field):
                failures.append(
                    f"network {clients} clients: decisions diverged — {field} "
                    f"{base_result.get(field)} -> {fresh_result.get(field)}"
                )
        compared_net += 1
        # Throughput: same normalization and tolerance as the admission
        # sweep (the anchor is the run's unsharded in-process point).
        if args.absolute:
            base_tp = float(base_result["throughput_txn_per_s"])
            fresh_tp = float(fresh_result["throughput_txn_per_s"])
        else:
            base_anchor = base_points.get(ANCHOR_KEY)
            fresh_anchor = fresh_points.get(ANCHOR_KEY)
            if base_anchor is None or fresh_anchor is None:
                base_tp = fresh_tp = None
            else:
                base_tp = float(base_result["throughput_txn_per_s"]) / float(
                    base_anchor["admission_txn_per_s"]
                )
                fresh_tp = float(fresh_result["throughput_txn_per_s"]) / float(
                    fresh_anchor["admission_txn_per_s"]
                )
        if base_tp is not None and base_tp > 0:
            drop = 1.0 - fresh_tp / base_tp
            print(
                f"bench gate: network {clients} clients throughput "
                f"{base_tp:.2f} -> {fresh_tp:.2f} ({-drop:+.1%})"
            )
            if drop > args.tolerance:
                failures.append(
                    f"network {clients} clients: throughput regressed "
                    f"{drop:.1%} (tolerance {args.tolerance:.0%})"
                )
        # Latency: p95 normalized by the run's machine-speed anchor;
        # growth beyond LATENCY_TOLERANCE fails.
        if args.absolute:
            base_p95 = base_result.get("p95_ms")
            fresh_p95 = fresh_result.get("p95_ms")
        else:
            base_p95 = normalized_latency(base_result, base_points)
            fresh_p95 = normalized_latency(fresh_result, fresh_points)
        if base_p95 and fresh_p95:
            growth = float(fresh_p95) / float(base_p95) - 1.0
            print(
                f"bench gate: network {clients} clients p95 "
                f"{float(base_p95):.2f} -> {float(fresh_p95):.2f} ({growth:+.1%})"
            )
            if growth > LATENCY_TOLERANCE:
                failures.append(
                    f"network {clients} clients: p95 latency grew "
                    f"{growth:.1%} (tolerance {LATENCY_TOLERANCE:.0%})"
                )

    # -- durability points (segmented-WAL recovery benchmark) ---------------
    fresh_dur = durability_points(fresh)
    base_dur = durability_points(baseline)
    shared_dur = sorted(set(fresh_dur) & set(base_dur))
    for key in sorted(set(base_dur) - set(fresh_dur)):
        print(
            f"bench gate: note — baseline durability point {key} no longer swept"
        )
    for key in sorted(set(fresh_dur) - set(base_dur)):
        print(f"bench gate: note — new durability point {key} (no baseline)")
    if shared_dur:
        fresh_dur_scale = (fresh.get("durability") or {}).get("scale")
        base_dur_scale = (baseline.get("durability") or {}).get("scale")
        if fresh_dur_scale != base_dur_scale:
            print(
                "bench gate: FAIL — durability scale mismatch "
                f"({base_dur_scale!r} -> {fresh_dur_scale!r}); commit the "
                "fresh file to re-baseline"
            )
            return 1
    compared_dur = 0
    # Structural claims of the group-fsync window and incremental bases:
    # they hold on every fresh point carrying the fields, baseline or not
    # (older baselines without the fields gate nothing here).
    for key, fresh_result in sorted(fresh_dur.items()):
        fsyncs_per_commit = fresh_result.get("fsyncs_per_commit")
        if fsyncs_per_commit is not None and float(fsyncs_per_commit) >= 1.0:
            failures.append(
                f"durability {key}: windowed fsyncs-per-commit "
                f"{float(fsyncs_per_commit):.3f} is not below 1 — the "
                "group-fsync window stopped batching commits"
            )
        writer_folds = fresh_result.get("writer_base_folds")
        if writer_folds is not None and float(writer_folds) > 1:
            failures.append(
                f"durability {key}: the writer folded {writer_folds} full "
                "bases — with incremental bases only the first fold may "
                "run on the writer"
            )
        synthesized = fresh_result.get("bases_synthesized")
        if (
            writer_folds is not None
            and synthesized is not None
            and float(synthesized) < 1
        ):
            failures.append(
                f"durability {key}: no base was synthesized off the writer"
            )
    for key in shared_dur:
        fresh_result = fresh_dur[key]
        base_result = base_dur[key]
        if fresh_result.get("checkpoints") != base_result.get("checkpoints"):
            failures.append(
                f"durability {key}: run shape diverged — checkpoints "
                f"{base_result.get('checkpoints')} -> "
                f"{fresh_result.get('checkpoints')}"
            )
            continue
        compared_dur += 1
        # The engine's structural claims hold in every fresh run: sealed
        # segments keep getting reclaimed, and the delta checkpoint pause
        # stays below the legacy full-snapshot fold it replaced.
        if float(fresh_result.get("bytes_reclaimed", 0)) <= 0:
            failures.append(
                f"durability {key}: compaction reclaimed no bytes"
            )
        delta_pause = fresh_result.get("max_delta_pause_ms")
        legacy_pause = fresh_result.get("legacy_pause_ms")
        if (
            delta_pause is not None
            and legacy_pause is not None
            and float(delta_pause) >= float(legacy_pause)
        ):
            failures.append(
                f"durability {key}: delta checkpoint pause "
                f"{float(delta_pause):.2f}ms is not below the legacy "
                f"full-snapshot pause {float(legacy_pause):.2f}ms"
            )
        for field, label in (
            ("recovery_ms", "recovery time"),
            ("max_delta_pause_ms", "max delta checkpoint pause"),
        ):
            if args.absolute:
                base_value = base_result.get(field)
                fresh_value = fresh_result.get(field)
            else:
                base_value = normalized_ms(base_result.get(field), base_points)
                fresh_value = normalized_ms(fresh_result.get(field), fresh_points)
            if not base_value or not fresh_value:
                continue
            growth = float(fresh_value) / float(base_value) - 1.0
            print(
                f"bench gate: durability {key} {label} "
                f"{float(base_value):.2f} -> {float(fresh_value):.2f} "
                f"({growth:+.1%})"
            )
            if growth > DURABILITY_TOLERANCE:
                raw_fresh = fresh_result.get(field)
                if field == "max_delta_pause_ms" and raw_fresh is not None:
                    floor = PAUSE_NOISE_FLOOR_MS
                    if legacy_pause is not None:
                        floor = max(floor, 0.5 * float(legacy_pause))
                    if float(raw_fresh) <= floor:
                        print(
                            f"bench gate: note — durability {key} {label} "
                            f"{float(raw_fresh):.2f}ms is within the "
                            f"{floor:.1f}ms scheduling-noise floor; "
                            "growth not gated"
                        )
                        continue
                failures.append(
                    f"durability {key}: {label} grew {growth:.1%} "
                    f"(tolerance {DURABILITY_TOLERANCE:.0%})"
                )

    # -- admission-search points (strategy benchmark) -----------------------
    fresh_search = search_points(fresh)
    base_search = search_points(baseline)
    shared_search = sorted(set(fresh_search) & set(base_search))
    for key in sorted(set(base_search) - set(fresh_search)):
        print(f"bench gate: note — baseline search point {key} no longer swept")
    for key in sorted(set(fresh_search) - set(base_search)):
        print(f"bench gate: note — new search point {key} (no baseline)")
    if shared_search:
        fresh_search_scale = (fresh.get("search") or {}).get("scale")
        base_search_scale = (baseline.get("search") or {}).get("scale")
        if fresh_search_scale != base_search_scale:
            print(
                "bench gate: FAIL — search scale mismatch "
                f"({base_search_scale!r} -> {fresh_search_scale!r}); commit "
                "the fresh file to re-baseline"
            )
            return 1
    compared_search = 0
    # The two structural claims gate on every fresh point, baseline or not:
    # identical decisions across strategies, and the node-ratio bound.
    for key, fresh_result in sorted(fresh_search.items()):
        if not fresh_result.get("decisions_match", False):
            failures.append(
                f"search {key}: bnb and backtracking decisions diverged"
            )
        ratio = fresh_result.get("nodes_ratio")
        if ratio is not None and float(ratio) > SEARCH_NODES_RATIO_BOUND:
            failures.append(
                f"search {key}: admission-node ratio {float(ratio):.3f} "
                f"exceeds the {SEARCH_NODES_RATIO_BOUND} bound"
            )
    for key in shared_search:
        fresh_result = fresh_search[key]
        base_result = base_search[key]
        for field in ("transactions", "admitted", "rejected"):
            if fresh_result.get(field) != base_result.get(field):
                failures.append(
                    f"search {key}: decisions diverged — {field} "
                    f"{base_result.get(field)} -> {fresh_result.get(field)}"
                )
        compared_search += 1
        # Fast-path hit rate: a drop beyond the throughput tolerance means
        # the per-shape dispatch stopped answering searches it used to.
        base_rate = float(base_result.get("fastpath_hit_rate") or 0.0)
        fresh_rate = float(fresh_result.get("fastpath_hit_rate") or 0.0)
        if base_rate > 0:
            drop = 1.0 - fresh_rate / base_rate
            print(
                f"bench gate: search {key} fastpath hit rate "
                f"{base_rate:.3f} -> {fresh_rate:.3f} ({-drop:+.1%})"
            )
            if drop > args.tolerance:
                failures.append(
                    f"search {key}: fastpath hit rate dropped {drop:.1%} "
                    f"(tolerance {args.tolerance:.0%})"
                )
        # Sampled-admission latency: anchor-normalized milliseconds, the
        # same machine-speed trick as the network and durability points.
        if args.absolute:
            base_ms = base_result.get("sampled_admission_ms")
            fresh_ms = fresh_result.get("sampled_admission_ms")
        else:
            base_ms = normalized_ms(
                base_result.get("sampled_admission_ms"), base_points
            )
            fresh_ms = normalized_ms(
                fresh_result.get("sampled_admission_ms"), fresh_points
            )
        if base_ms and fresh_ms:
            growth = float(fresh_ms) / float(base_ms) - 1.0
            print(
                f"bench gate: search {key} sampled-admission latency "
                f"{float(base_ms):.2f} -> {float(fresh_ms):.2f} ({growth:+.1%})"
            )
            if growth > LATENCY_TOLERANCE:
                failures.append(
                    f"search {key}: sampled-admission latency grew "
                    f"{growth:.1%} (tolerance {LATENCY_TOLERANCE:.0%})"
                )

    if failures:
        for failure in failures:
            print(f"bench gate: FAIL — {failure}")
        return 1
    total_compared = len(shared) + compared_net + compared_dur + compared_search
    if total_compared < args.require_points:
        print(
            f"bench gate: FAIL — only {total_compared} sweep points compared, "
            f"--require-points demands {args.require_points}"
        )
        return 1
    print(
        f"bench gate: OK ({len(shared)} admission points, "
        f"{compared_net} network points, {compared_dur} durability points "
        f"and {compared_search} search points within tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
