"""Value domain of the relational substrate.

The quantum database only needs a small, SQL-ish set of scalar types:
integers, floats, strings, booleans and NULL.  Types are used for two
purposes:

* validating values on insert (``Column`` declarations carry a
  :class:`DataType`), and
* coercing literals written in textual resource transactions into canonical
  Python values.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError

#: Python types admissible as column values, per DataType.
_PY_TYPES = {
    "INTEGER": (int,),
    "FLOAT": (float, int),
    "TEXT": (str,),
    "BOOLEAN": (bool,),
}


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    #: ANY accepts any scalar value; used by tables created on the fly by
    #: workload generators and by the pending-transactions metadata table.
    ANY = "ANY"

    def validate(self, value: Any, *, column: str = "<anonymous>") -> Any:
        """Return ``value`` coerced to this type, or raise.

        ``None`` is always accepted (NULL).  ``FLOAT`` accepts ints and
        coerces them to float.  ``BOOLEAN`` is strict (no 0/1 coercion) so
        that key comparisons remain unambiguous.

        Raises:
            TypeMismatchError: if the value does not conform.
        """
        if value is None:
            return None
        if self is DataType.ANY:
            if isinstance(value, (int, float, str, bool)):
                return value
            raise TypeMismatchError(
                f"column {column!r}: unsupported value type {type(value).__name__}"
            )
        allowed = _PY_TYPES[self.value]
        # bool is a subclass of int; keep the domains disjoint.
        if self is not DataType.BOOLEAN and isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column!r}: boolean value supplied for {self.value} column"
            )
        if not isinstance(value, allowed):
            raise TypeMismatchError(
                f"column {column!r}: expected {self.value}, got "
                f"{type(value).__name__} ({value!r})"
            )
        if self is DataType.FLOAT:
            return float(value)
        return value

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the narrowest :class:`DataType` for a Python value."""
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.TEXT
        return cls.ANY


def coerce_literal(text: str) -> Any:
    """Parse a literal token from a textual transaction into a Python value.

    Quoted strings become ``str``; ``true``/``false`` become booleans;
    otherwise integers, then floats, are attempted; a bare token falls back
    to being a string (convenient for names such as ``Mickey``).
    """
    stripped = text.strip()
    if len(stripped) >= 2 and stripped[0] in "'\"" and stripped[-1] == stripped[0]:
        return stripped[1:-1]
    lowered = stripped.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "none"):
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped
