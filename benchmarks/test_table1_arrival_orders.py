"""Table 1 — arrival orders and maximum pending transactions.

Regenerates Table 1: for each arrival order, the analytic bound from the
paper and the maximum number of simultaneously pending transactions measured
when the workload runs through the quantum database.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.report import format_table
from repro.experiments.table1 import default_parameters, paper_parameters, run_table1
from repro.workloads.arrival_orders import ArrivalOrder

SPEC = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_table1_max_pending(benchmark):
    rows = benchmark.pedantic(lambda: run_table1(SPEC), rounds=1, iterations=1)
    report(
        "Table 1",
        format_table(
            ["Order", "Paper bound", "Simulated max", "Measured max"],
            [
                (r.order.value, r.expected_bound, r.simulated_max_pending, r.measured_max_pending)
                for r in rows
            ],
        ),
    )
    by_order = {row.order: row for row in rows}
    pairs = SPEC.seats_per_flight // 2
    # Alternate keeps at most one transaction pending (plus the transient
    # admission of the partner itself).
    assert by_order[ArrivalOrder.ALTERNATE].measured_max_pending <= 2
    # In Order and Reverse Order keep about half the workload pending.
    for order in (ArrivalOrder.IN_ORDER, ArrivalOrder.REVERSE_ORDER):
        assert by_order[order].measured_max_pending >= pairs
    # Random sits in between.
    assert (
        by_order[ArrivalOrder.ALTERNATE].measured_max_pending
        <= by_order[ArrivalOrder.RANDOM].measured_max_pending
        <= by_order[ArrivalOrder.IN_ORDER].measured_max_pending + 1
    )
