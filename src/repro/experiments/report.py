"""Plain-text rendering of experiment results (tables and series).

The paper reports its results as figures; without a plotting dependency the
harnesses print the same data as aligned text tables and simple series
listings, which is enough to check the shapes (who wins, where the
crossovers are).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], *, precision: int = 3
) -> str:
    """Render rows as an aligned text table."""

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str, points: Sequence[tuple[Any, Any]], *, precision: int = 3
) -> str:
    """Render an (x, y) series with a title line."""
    lines = [title]
    for x, y in points:
        if isinstance(y, float):
            lines.append(f"  {x}: {y:.{precision}f}")
        else:
            lines.append(f"  {x}: {y}")
    return "\n".join(lines)


def downsample(series: Sequence[float], points: int = 10) -> list[tuple[int, float]]:
    """Pick ``points`` evenly spaced (index, value) samples from a series."""
    if not series:
        return []
    if len(series) <= points:
        return list(enumerate(series, start=1))
    step = len(series) / points
    samples = []
    for i in range(1, points + 1):
        index = min(len(series) - 1, int(round(i * step)) - 1)
        samples.append((index + 1, series[index]))
    return samples


def print_report(title: str, body: str) -> None:
    """Print a titled report block."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
