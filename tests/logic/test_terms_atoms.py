"""Tests for terms and relational atoms."""

from __future__ import annotations

import pytest

from repro.errors import LogicError
from repro.logic.atoms import Atom, AtomKind, atoms_variables
from repro.logic.terms import Constant, Variable, as_term, fresh_variable, is_ground


class TestTerms:
    def test_variable_identity(self):
        assert Variable("s1") == Variable("s1")
        assert Variable("s1") != Variable("s2")
        assert hash(Variable("s1")) == hash(Variable("s1"))

    def test_variable_requires_name(self):
        with pytest.raises(LogicError):
            Variable("")

    def test_constant_wraps_values(self):
        assert Constant(5).value == 5
        assert Constant("Mickey") == Constant("Mickey")

    def test_constant_rejects_nested_terms(self):
        with pytest.raises(LogicError):
            Constant(Variable("x"))

    def test_as_term(self):
        assert as_term(5) == Constant(5)
        assert as_term(Variable("x")) == Variable("x")
        assert as_term(Constant("y")) == Constant("y")

    def test_fresh_variables_unique(self):
        names = {fresh_variable().name for _ in range(100)}
        assert len(names) == 100

    def test_is_ground(self):
        assert is_ground(Constant(1))
        assert not is_ground(Variable("x"))

    def test_rename(self):
        assert Variable("s").rename("@3") == Variable("s@3")


class TestAtoms:
    def test_constructors_and_kinds(self):
        body = Atom.body("Available", [Variable("f"), Variable("s")])
        insert = Atom.insert("Bookings", ["Mickey", Variable("f"), Variable("s")])
        delete = Atom.delete("Available", [Variable("f"), Variable("s")])
        assert body.kind is AtomKind.BODY
        assert insert.kind is AtomKind.INSERT
        assert delete.kind is AtomKind.DELETE

    def test_plain_values_coerced_to_constants(self):
        atom = Atom.body("Bookings", ["Mickey", 123, Variable("s")])
        assert atom.terms[0] == Constant("Mickey")
        assert atom.terms[1] == Constant(123)

    def test_optional_only_for_body(self):
        Atom("R", (Constant(1),), AtomKind.BODY, optional=True)
        with pytest.raises(LogicError):
            Atom("R", (Constant(1),), AtomKind.INSERT, optional=True)

    def test_variables_and_constants(self):
        atom = Atom.body("R", [Variable("x"), 1, Variable("x"), "a"])
        assert atom.variables() == {Variable("x")}
        assert atom.constants() == {Constant(1), Constant("a")}

    def test_ground_values(self):
        atom = Atom.insert("R", [1, "a"])
        assert atom.is_ground()
        assert atom.ground_values() == (1, "a")
        with pytest.raises(LogicError):
            Atom.body("R", [Variable("x")]).ground_values()

    def test_rename_variables(self):
        atom = Atom.body("R", [Variable("x"), 1])
        renamed = atom.rename_variables("@7")
        assert renamed.terms[0] == Variable("x@7")
        assert renamed.terms[1] == Constant(1)

    def test_as_body_strips_kind_and_optional(self):
        insert = Atom.insert("R", [1])
        assert insert.as_body().kind is AtomKind.BODY
        optional = Atom.body("R", [1], optional=True)
        assert optional.as_body().optional is False

    def test_atoms_variables(self):
        atoms = [
            Atom.body("R", [Variable("x"), Variable("y")]),
            Atom.body("S", [Variable("y"), Variable("z")]),
        ]
        assert atoms_variables(atoms) == {Variable("x"), Variable("y"), Variable("z")}

    def test_arity_and_repr(self):
        atom = Atom.delete("Available", [Variable("f"), Variable("s")])
        assert atom.arity == 2
        assert repr(atom).startswith("-Available(")

    def test_empty_relation_rejected(self):
        with pytest.raises(LogicError):
            Atom.body("", [1])
