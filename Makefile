# Developer entry points for the quantum-database reproduction.
#
#   make check   - tier-1 test suite plus a ~10 second benchmark smoke pass
#   make test    - tier-1 test suite only (tests/)
#   make smoke   - the smoke-marked benchmark subset (-m smoke)
#   make bench   - the full benchmark suite (regenerates every figure/table)
#
# Set REPRO_BENCH_SCALE=paper for the paper-sized benchmark parameters.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: check test smoke bench

check: test smoke

test:
	$(PYTEST) -x -q tests

smoke:
	$(PYTEST) -q benchmarks -m smoke

bench:
	$(PYTEST) -q benchmarks
