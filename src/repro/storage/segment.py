"""Append-only log segments with CRC-framed records.

A segment file is a sequence of frames::

    +----------------+----------------+------------------+
    | length (4B BE) | CRC32 (4B BE)  | payload (length) |
    +----------------+----------------+------------------+

where the payload is one UTF-8 JSON line produced by
:meth:`repro.relational.wal.LogRecord.to_json`.  The CRC covers the
payload only; the length prefix makes a torn trailing write detectable
(not enough bytes for the header or payload) and the CRC catches a frame
whose bytes landed but were damaged.  :func:`scan_frames` walks a
segment's bytes and reports the first point of damage together with the
length of the clean prefix, so recovery can truncate a torn tail while
treating damage inside a *sealed* segment as corruption.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

SEGMENT_SUFFIX = ".walseg"

_HEADER = struct.Struct(">II")


def segment_file_name(index: int, generation: int = 0) -> str:
    """Canonical file name of segment ``index`` at ``generation``.

    Compaction bumps the generation: the rewritten file gets a new name,
    so the swap is a manifest update plus a delete, never an in-place
    overwrite of bytes recovery might still need.
    """
    return f"segment-{index:08d}.g{generation}{SEGMENT_SUFFIX}"


@dataclass
class LogSegment:
    """One segment's manifest entry (metadata, not file contents).

    Attributes:
        index: position in the log's segment chain (monotonic, never
            reused).
        generation: compaction generation (0 = as written by the logger).
        name: file name inside the engine directory.
        sealed: True once the segment stopped accepting appends.
        records: record count (maintained for the live tail; authoritative
            after sealing).
        size: byte size of the framed records.
        compacted_at_lsn: the checkpoint LSN this segment was last
            compacted against (sealed segments only); the compactor skips
            segments already compacted at the current checkpoint.
    """

    index: int
    generation: int = 0
    name: str = ""
    sealed: bool = False
    records: int = 0
    size: int = 0
    compacted_at_lsn: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            self.name = segment_file_name(self.index, self.generation)

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "generation": self.generation,
            "name": self.name,
            "sealed": self.sealed,
            "records": self.records,
            "size": self.size,
            "compacted_at_lsn": self.compacted_at_lsn,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LogSegment":
        return cls(
            index=payload["index"],
            generation=payload["generation"],
            name=payload["name"],
            sealed=payload["sealed"],
            records=payload["records"],
            size=payload["size"],
            compacted_at_lsn=payload.get("compacted_at_lsn", 0),
        )


def encode_frame(payload: bytes) -> bytes:
    """Frame one record payload (length + CRC32 header)."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ScanResult:
    """Outcome of :func:`scan_frames`.

    Attributes:
        payloads: the decoded record payloads of the clean prefix.
        clean_length: byte offset up to which the segment is undamaged
            (truncating the file here removes exactly the damage).
        damage: ``None`` for a fully clean segment, else a description of
            the first damaged frame.
    """

    payloads: list[bytes] = field(default_factory=list)
    clean_length: int = 0
    damage: str | None = None


def scan_frames(data: bytes) -> ScanResult:
    """Walk a segment's bytes frame by frame, stopping at the first damage.

    Damage is any of: a truncated header, a payload shorter than its
    declared length (both the shape of a torn trailing write), or a CRC
    mismatch (a frame whose bytes landed damaged).  Scanning stops there —
    bytes past a damaged frame cannot be trusted even if they happen to
    re-align.
    """
    result = ScanResult()
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            result.damage = (
                f"truncated frame header at offset {offset} "
                f"({total - offset} trailing bytes)"
            )
            return result
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if total - start < length:
            result.damage = (
                f"truncated frame payload at offset {offset} "
                f"(declared {length} bytes, {total - start} present)"
            )
            return result
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            result.damage = f"CRC mismatch in frame at offset {offset}"
            return result
        result.payloads.append(payload)
        offset = start + length
        result.clean_length = offset
    return result


class SegmentWriter:
    """Appends framed records to one live (unsealed) segment file.

    The writer only ever appends; sealing is a property of the manifest
    entry, enforced by the engine (which stops writing and opens the next
    segment).  ``records`` / ``size`` mirror the manifest entry so seal
    thresholds are checked without stat calls.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self._file = open(self.path, "ab")
        self.size = self._file.tell()
        self.records = 0  # caller seeds this from its recovery scan
        #: Byte offset covered by the last ``os.fsync`` — bytes past this
        #: watermark are flushed to the OS at best and may be lost in a
        #: machine crash (group-fsync windows rely on exactly that being
        #: the only exposure).
        self.synced_size = self.size

    def append(self, payload: bytes) -> None:
        frame = encode_frame(payload)
        self._file.write(frame)
        self.size += len(frame)
        self.records += 1

    def flush(self) -> None:
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            self.synced_size = self.size

    def sync(self) -> None:
        """Flush and ``os.fsync`` unconditionally (group-window syncs)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self.synced_size = self.size

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.fsync:
                # flush() alone leaves the final records in the page cache;
                # a close must honor the same durability promise as every
                # flush before it.
                os.fsync(self._file.fileno())
                self.synced_size = self.size
            self._file.close()
