"""A write-ahead log for the relational store.

The quantum database achieves durability of *pending* resource transactions
by serialising them into a pending-transactions table before commit (paper,
Section 4, "Recovery").  That table lives in the ordinary relational store,
so the store itself needs a recovery story: this module provides a minimal
physiological WAL — ordered records of row-level inserts and deletes tagged
with transaction ids and commit/abort markers — plus a pluggable "stable
storage" sink that recovery replays.

Three properties matter to the session layer built on top
(:mod:`repro.server`, see ``docs/architecture.md``):

* **Thread/loop-safety** — every mutation of the log happens under one
  internal lock, because the asyncio writer task and the grounding
  executor's apply phase may touch the log from different threads (never
  concurrently for the same record, but interleaved across records).
* **Group commit** — when a durable sink is attached, buffered records are
  flushed once per COMMIT/ABORT marker, so a batch persisted in a single
  store transaction costs a single durability flush regardless of how many
  rows it wrote.
* **Checkpoints** — :meth:`WriteAheadLog.checkpoint` folds the whole log
  into one CHECKPOINT record carrying a database snapshot, bounding the
  recovery replay work for long-running servers (graceful shutdown calls
  it; see :meth:`repro.relational.database.Database.checkpoint`).
"""

from __future__ import annotations

import enum
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import RecoveryError


class LogRecordType(enum.Enum):
    """Kinds of WAL records.

    ``CHECKPOINT`` is the legacy monolithic fold (one record carrying a full
    snapshot, the rest of the log discarded).  The segmented durability
    engine (:mod:`repro.storage`) instead writes a *checkpoint lineage*:
    a periodic ``CHECKPOINT_BASE`` (full snapshot) chained with
    ``CHECKPOINT_DELTA`` records carrying only the rows changed since the
    previous checkpoint, so the checkpoint pause is proportional to churn,
    not store size.
    """

    BEGIN = "BEGIN"
    INSERT = "INSERT"
    DELETE = "DELETE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    CHECKPOINT = "CHECKPOINT"
    CHECKPOINT_BASE = "CHECKPOINT_BASE"
    CHECKPOINT_DELTA = "CHECKPOINT_DELTA"


#: Record types that restore a full snapshot during replay.  The legacy
#: fold and the segmented engine's base checkpoints replay identically.
SNAPSHOT_CHECKPOINT_TYPES = frozenset(
    (LogRecordType.CHECKPOINT, LogRecordType.CHECKPOINT_BASE)
)

#: Every checkpoint-family record type (snapshot carriers plus deltas).
CHECKPOINT_TYPES = frozenset(
    (*SNAPSHOT_CHECKPOINT_TYPES, LogRecordType.CHECKPOINT_DELTA)
)


@dataclass(frozen=True)
class LogRecord:
    """A single WAL record.

    Attributes:
        lsn: log sequence number (monotonically increasing).
        record_type: the record kind.
        transaction_id: id of the transaction that produced the record
            (0 for CHECKPOINT records, which belong to no transaction).
        table: affected table (INSERT/DELETE records only).
        values: affected row values (INSERT/DELETE records only).
        snapshot: full extensional state (CHECKPOINT/CHECKPOINT_BASE records
            only): table name → list of row-value tuples.
        delta: net row changes since the previous checkpoint in the lineage
            (CHECKPOINT_DELTA records only): table name →
            ``{"delete": [rows gone], "insert": [rows new]}``.  Replay
            applies the deletes before the inserts.
    """

    lsn: int
    record_type: LogRecordType
    transaction_id: int
    table: str | None = None
    values: tuple[Any, ...] | None = None
    snapshot: Mapping[str, Sequence[Sequence[Any]]] | None = None
    delta: Mapping[str, Mapping[str, Sequence[Sequence[Any]]]] | None = None

    def to_json(self) -> str:
        """Serialise the record to a JSON line (for durability tests)."""
        payload: dict[str, Any] = {
            "lsn": self.lsn,
            "type": self.record_type.value,
            "txn": self.transaction_id,
            "table": self.table,
            "values": list(self.values) if self.values is not None else None,
        }
        if self.snapshot is not None:
            payload["snapshot"] = {
                name: [list(row) for row in rows]
                for name, rows in self.snapshot.items()
            }
        if self.delta is not None:
            payload["delta"] = {
                name: {
                    op: [list(row) for row in rows]
                    for op, rows in ops.items()
                }
                for name, ops in self.delta.items()
            }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Parse a record previously produced by :meth:`to_json`."""
        try:
            data = json.loads(line)
            snapshot = data.get("snapshot")
            delta = data.get("delta")
            return cls(
                lsn=data["lsn"],
                record_type=LogRecordType(data["type"]),
                transaction_id=data["txn"],
                table=data["table"],
                values=tuple(data["values"]) if data["values"] is not None else None,
                snapshot={
                    name: [tuple(row) for row in rows]
                    for name, rows in snapshot.items()
                }
                if snapshot is not None
                else None,
                delta={
                    name: {
                        op: [tuple(row) for row in rows]
                        for op, rows in ops.items()
                    }
                    for name, ops in delta.items()
                }
                if delta is not None
                else None,
            )
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise RecoveryError(f"malformed log record: {line!r}") from exc


class WalSink:
    """Stable-storage interface for WAL records.

    The in-memory log is the source of truth for replay within a process;
    a sink makes the records survive the process.  Implementations must
    support appending a serialized record, flushing buffered appends (the
    durability point), and atomically resetting to a new record sequence
    (used by :meth:`WriteAheadLog.checkpoint`).
    """

    def append(self, line: str) -> None:
        """Buffer one serialized record."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make all buffered records durable."""
        raise NotImplementedError

    def reset(self, lines: Iterable[str]) -> None:
        """Replace the sink's contents with ``lines`` (checkpoint/truncate)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""


class FileWalSink(WalSink):
    """A JSON-lines file sink.

    Args:
        path: file to append records to (created if missing).
        fsync: when True, :meth:`flush` additionally calls ``os.fsync`` so
            the group-commit durability point survives OS crashes, not just
            process crashes.  Off by default — the reproduction's tests
            simulate crashes at process granularity.

    Attributes:
        flushes: group-commit flushes performed (one per COMMIT/ABORT
            marker when attached to a :class:`WriteAheadLog`).
        fsyncs: ``os.fsync`` calls performed (``fsync=True`` only).  Both
            counters surface as ``durability.flushes`` / ``durability.fsyncs``
            in ``statistics_report()``.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self.flushes = 0
        self.fsyncs = 0
        self._file = open(self.path, "a", encoding="utf-8")

    def append(self, line: str) -> None:
        self._file.write(line + "\n")

    def flush(self) -> None:
        self._file.flush()
        self.flushes += 1
        if self.fsync:
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    def reset(self, lines: Iterable[str]) -> None:
        self._file.close()
        self._file = open(self.path, "w", encoding="utf-8")
        for line in lines:
            self._file.write(line + "\n")
        self.flush()

    def close(self) -> None:
        self._file.close()

    def read_text(self) -> str:
        """The sink's current contents (for :meth:`WriteAheadLog.load`)."""
        with open(self.path, "r", encoding="utf-8") as handle:
            return handle.read()


class WriteAheadLog:
    """An append-only write-ahead log with optional stable storage.

    The log survives "crashes" simulated by discarding the
    :class:`~repro.relational.database.Database` object while keeping the
    log; :func:`repro.relational.recovery.recover_database` then rebuilds the
    store.  Attach a :class:`WalSink` to also survive process crashes; the
    sink is flushed once per COMMIT/ABORT marker (group commit), so batched
    store transactions amortise the durability write.

    All methods are safe to call from multiple threads: the session layer's
    writer loop and its grounding executor both produce records (never for
    the same store transaction at the same time, but interleaved).
    """

    def __init__(self, sink: WalSink | None = None) -> None:
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._lock = threading.Lock()
        self._sink = sink
        #: Longest observed checkpoint pause in milliseconds (see
        #: :meth:`note_checkpoint_pause`).
        self.max_checkpoint_pause_ms = 0.0

    # -- stable storage -----------------------------------------------------

    @property
    def sink(self) -> WalSink | None:
        """The attached stable-storage sink, if any."""
        return self._sink

    def attach_sink(self, sink: WalSink) -> None:
        """Attach stable storage, seeding it with the current records."""
        with self._lock:
            self._sink = sink
            sink.reset(record.to_json() for record in self._records)

    def flush(self) -> None:
        """Force the durability point (normally reached per commit marker)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    # -- append -------------------------------------------------------------

    def append(
        self,
        record_type: LogRecordType,
        transaction_id: int,
        table: str | None = None,
        values: Sequence[Any] | None = None,
        snapshot: Mapping[str, Sequence[Sequence[Any]]] | None = None,
    ) -> LogRecord:
        """Append a record and return it."""
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                transaction_id=transaction_id,
                table=table,
                values=tuple(values) if values is not None else None,
                snapshot=snapshot,
            )
            self._next_lsn += 1
            self._records.append(record)
            if self._sink is not None:
                self._sink.append(record.to_json())
                # Group commit: one durability flush per transaction outcome
                # marker, covering every record buffered since the last one.
                if record_type in (LogRecordType.COMMIT, LogRecordType.ABORT):
                    self._sink.flush()
            return record

    def log_begin(self, transaction_id: int) -> LogRecord:
        """Record the start of a transaction."""
        return self.append(LogRecordType.BEGIN, transaction_id)

    def log_insert(
        self, transaction_id: int, table: str, values: Sequence[Any]
    ) -> LogRecord:
        """Record a row insert."""
        return self.append(LogRecordType.INSERT, transaction_id, table, values)

    def log_delete(
        self, transaction_id: int, table: str, values: Sequence[Any]
    ) -> LogRecord:
        """Record a row delete."""
        return self.append(LogRecordType.DELETE, transaction_id, table, values)

    def log_commit(self, transaction_id: int) -> LogRecord:
        """Record a transaction commit (the durability point)."""
        return self.append(LogRecordType.COMMIT, transaction_id)

    def log_abort(self, transaction_id: int) -> LogRecord:
        """Record a transaction abort."""
        return self.append(LogRecordType.ABORT, transaction_id)

    # -- read ---------------------------------------------------------------

    def records(self) -> tuple[LogRecord, ...]:
        """All records in LSN order."""
        with self._lock:
            return tuple(self._records)

    def committed_transaction_ids(self) -> frozenset[int]:
        """Ids of all transactions with a COMMIT record."""
        with self._lock:
            return frozenset(
                r.transaction_id
                for r in self._records
                if r.record_type is LogRecordType.COMMIT
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records())

    # -- persistence --------------------------------------------------------

    def dump(self) -> str:
        """Serialise the whole log as JSON lines."""
        return "\n".join(record.to_json() for record in self.records())

    @classmethod
    def load(cls, text: str, sink: WalSink | None = None) -> "WriteAheadLog":
        """Rebuild a log from :meth:`dump` output (or a sink's contents)."""
        log = cls(sink)
        records = [
            LogRecord.from_json(line) for line in text.splitlines() if line.strip()
        ]
        records.sort(key=lambda r: r.lsn)
        log._records = records
        log._next_lsn = (records[-1].lsn if records else 0) + 1
        return log

    # -- truncation / checkpoints -------------------------------------------

    def wants_delta_checkpoint(self) -> bool:
        """True when the log would rather take a delta checkpoint.

        The monolithic log only knows full-snapshot folds, so this is
        always False here.  :class:`repro.storage.SegmentedWriteAheadLog`
        overrides it: once a base snapshot exists (and until the configured
        base cadence is due again) it answers True, and
        :meth:`~repro.relational.database.Database.checkpoint` then calls
        :meth:`checkpoint_delta` *without* building a full snapshot — that
        skip is what makes the checkpoint pause proportional to churn.
        """
        return False

    def checkpoint_delta(self):
        """Write a delta checkpoint (segmented engine only)."""
        raise NotImplementedError(
            "delta checkpoints need the segmented durability engine "
            "(repro.storage); the monolithic WriteAheadLog only folds full "
            "snapshots"
        )

    def note_checkpoint_pause(self, pause_ms: float, *, delta: bool = False) -> None:
        """Record an observed checkpoint pause (writer-blocking time).

        :meth:`Database.checkpoint` measures the wall time of the whole
        operation — including building the snapshot, the dominant cost for
        full checkpoints — and reports it here.  The monolithic log keeps
        only the maximum; the segmented engine additionally splits base
        from delta pauses for the recovery benchmark's pause-bound gate.
        """
        if pause_ms > self.max_checkpoint_pause_ms:
            self.max_checkpoint_pause_ms = pause_ms

    def truncate(self) -> None:
        """Discard all records (used after a full snapshot)."""
        with self._lock:
            self._records.clear()
            if self._sink is not None:
                self._sink.reset(())

    def checkpoint(
        self, snapshot: Mapping[str, Sequence[Sequence[Any]]]
    ) -> LogRecord:
        """Fold the log into a single CHECKPOINT record carrying ``snapshot``.

        Every record logged so far is discarded — its effects are captured
        by the snapshot — so recovery replays the snapshot restore plus only
        the records appended *after* the checkpoint.  LSNs keep increasing
        across checkpoints, preserving the total order of surviving records.

        Returns:
            The CHECKPOINT record.
        """
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=LogRecordType.CHECKPOINT,
                transaction_id=0,
                snapshot={name: tuple(rows) for name, rows in snapshot.items()},
            )
            self._next_lsn += 1
            self._records = [record]
            if self._sink is not None:
                self._sink.reset((record.to_json(),))
            return record
