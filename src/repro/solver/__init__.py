"""Satisfiability machinery.

The quantum database must maintain the invariant that every composed
transaction body has at least one grounding over the extensional database.
The paper's prototype checks this with ``LIMIT 1`` SQL joins and discusses
SMT solvers as future work.  This subpackage provides:

* :mod:`.grounding` — the workhorse: a backtracking grounding search that
  evaluates a composed-body :class:`~repro.logic.formula.Formula` directly
  against a :class:`~repro.relational.database.Database`, using its indexes
  for candidate generation.  This is the direct analogue of the paper's
  ``LIMIT 1`` probes and is what :class:`~repro.core.quantum_database.QuantumDatabase`
  uses.
* :mod:`.csp` / :mod:`.propagation` / :mod:`.backtracking` — a generic
  finite-domain constraint-satisfaction solver (AC-3 + MRV backtracking),
  used by the calendar example and the ablation benches.
* :mod:`.sat` / :mod:`.randomsat` — a small DPLL SAT solver and a random
  k-SAT generator, used to reproduce the Section 6 discussion of
  satisfiability phase transitions.
"""

from repro.solver.backtracking import BacktrackingSolver
from repro.solver.csp import Constraint, CSP, Domain
from repro.solver.grounding import GroundingSearch, GroundingResult
from repro.solver.propagation import ac3, forward_check
from repro.solver.randomsat import random_ksat
from repro.solver.sat import Clause, CNF, DPLLSolver, Literal

__all__ = [
    "BacktrackingSolver",
    "CNF",
    "CSP",
    "Clause",
    "Constraint",
    "DPLLSolver",
    "Domain",
    "GroundingResult",
    "GroundingSearch",
    "Literal",
    "ac3",
    "forward_check",
    "random_ksat",
]
