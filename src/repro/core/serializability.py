"""Serializability modes for deferred grounding (Sections 2 and 3.2.3).

When a pending transaction ``Ti`` must be grounded (because of a read, a
check-in, or the arrival of its coordination partner), the system has two
options:

* **STRICT** (classical, arrival-order serializability): ground and execute
  every pending transaction that arrived before ``Ti`` in its partition,
  then ``Ti`` itself.  The transactions are serialized exactly in commit
  order, but values are fixed earlier than necessary, shrinking the space of
  future possible worlds.

* **SEMANTIC** (the paper's preferred mode): try to move ``Ti`` to the front
  of the partition's serialization order.  The paper's "practical strategy
  is to check only the ordering where the transaction under consideration is
  moved to the front of the current ordering"; if the reordered composed
  body is still satisfiable over the current database, only ``Ti`` is
  grounded now and everything else stays pending.  If the reorder check
  fails, the system falls back to the strict prefix.

:func:`grounding_plan` computes which pending transactions must be grounded
and in which order, given the mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition
    from repro.core.quantum_state import PendingTransaction


class SerializabilityMode(enum.Enum):
    """Serializability guarantee for deferred grounding."""

    STRICT = "STRICT"
    SEMANTIC = "SEMANTIC"


@dataclass(frozen=True)
class GroundingPlan:
    """The outcome of planning a grounding request.

    Attributes:
        to_ground: pending transactions to ground now, in execution order.
        remaining_order: the serialization order of the transactions that
            stay pending afterwards.
        reordered: True when the semantic mode successfully moved the target
            transactions ahead of earlier arrivals.
    """

    to_ground: tuple["PendingTransaction", ...]
    remaining_order: tuple["PendingTransaction", ...]
    reordered: bool = False


def strict_plan(
    partition: "Partition", targets: Sequence["PendingTransaction"]
) -> GroundingPlan:
    """Arrival-order plan: ground every transaction up to the latest target."""
    if not targets:
        return GroundingPlan((), tuple(partition.pending), False)
    ordered = list(partition.pending)
    last_index = max(ordered.index(t) for t in targets)
    prefix = tuple(ordered[: last_index + 1])
    rest = tuple(ordered[last_index + 1 :])
    return GroundingPlan(prefix, rest, False)


def semantic_plan(
    partition: "Partition",
    targets: Sequence["PendingTransaction"],
    reorder_is_satisfiable: Callable[[Sequence["PendingTransaction"]], bool],
) -> GroundingPlan:
    """Front-of-order plan with a satisfiability check, else strict fallback.

    Args:
        partition: the partition being grounded.
        targets: the transactions that must be grounded now.
        reorder_is_satisfiable: callback receiving a candidate serialization
            order (targets first, then the rest in arrival order) and
            returning whether its composed body is satisfiable over the
            current database.
    """
    if not targets:
        return GroundingPlan((), tuple(partition.pending), False)
    ordered = list(partition.pending)
    target_set = {t.transaction_id for t in targets}
    fronted = [t for t in ordered if t.transaction_id in target_set]
    rest = [t for t in ordered if t.transaction_id not in target_set]
    if fronted == ordered[: len(fronted)]:
        # Targets already form the prefix: nothing to reorder.
        return GroundingPlan(tuple(fronted), tuple(rest), False)
    candidate = fronted + rest
    if reorder_is_satisfiable(candidate):
        return GroundingPlan(tuple(fronted), tuple(rest), True)
    return strict_plan(partition, targets)


def grounding_plan(
    mode: SerializabilityMode,
    partition: "Partition",
    targets: Sequence["PendingTransaction"],
    reorder_is_satisfiable: Callable[[Sequence["PendingTransaction"]], bool],
) -> GroundingPlan:
    """Dispatch to :func:`strict_plan` or :func:`semantic_plan` by ``mode``."""
    if mode is SerializabilityMode.STRICT:
        return strict_plan(partition, targets)
    return semantic_plan(partition, targets, reorder_is_satisfiable)
