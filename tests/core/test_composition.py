"""Tests for transaction composition (Lemma 3.4 / Theorem 3.5 / Figure 3)."""

from __future__ import annotations


from repro.core.composition import (
    CompositionReport,
    compose_pair,
    compose_sequence,
    rewrite_atom_against_updates,
)
from repro.core.parser import parse_transaction
from repro.core.worlds import enumerate_possible_worlds
from repro.logic.atoms import Atom
from repro.logic.formula import AtomFormula, Conjunction, Disjunction, Negation, TRUE
from repro.logic.terms import Variable
from repro.relational.database import Database
from repro.solver.grounding import GroundingSearch

# The three transactions of Figure 3 (a).
T1 = parse_transaction("-B(M, 1, s1), +A(1, s1) :-1 B(M, 1, s1)")
T2 = parse_transaction("-A(f2, s2), +B(D, f2, s2) :-1 A(f2, s2)")
T3 = parse_transaction("-A(2, s3), +B(G, 2, s3) :-1 A(2, s3)")


def figure3_database(*, mickey_booked: bool = True, flight2_seats: int = 1) -> Database:
    database = Database()
    database.create_table("A", ["f", "s"], key=["f", "s"])
    database.create_table("B", ["p", "f", "s"], key=["f", "s"])
    if mickey_booked:
        database.insert("B", ("M", 1, "9Z"))
    for i in range(flight2_seats):
        database.insert("A", (2, f"2{chr(ord('A') + i)}"))
    return database


class TestRewriteAtom:
    def test_insert_adds_disjunct(self):
        atom = Atom.body("A", [Variable("f2"), Variable("s2")])
        factor = rewrite_atom_against_updates(atom, list(T1.updates))
        assert isinstance(factor, Disjunction)
        assert len(factor.parts) == 2
        assert isinstance(factor.parts[0], AtomFormula)

    def test_delete_adds_negated_predicate(self):
        atom = Atom.body("A", [2, Variable("s3")])
        factor = rewrite_atom_against_updates(atom, list(T2.updates))
        # The delete -A(f2, s2) unifies, the insert +B(...) does not.
        assert isinstance(factor, Conjunction)
        assert any(isinstance(p, Negation) for p in factor.parts)

    def test_unrelated_updates_leave_atom_untouched(self):
        atom = Atom.body("C", [Variable("x")])
        factor = rewrite_atom_against_updates(atom, list(T1.updates))
        assert isinstance(factor, AtomFormula)


class TestFigure3:
    def test_t12_structure(self):
        body = compose_pair(T1, T2)
        # B(M,1,s1) ∧ {A(f2,s2) ∨ {(f2 = 1) ∧ (s1 = s2)}}
        text = repr(body)
        assert "B(" in text and "A(" in text
        assert "∨" in text
        assert "¬" not in text  # the delete of T1 does not unify with A(f2,s2)

    def test_t123_structure(self):
        body = compose_sequence([T1, T2, T3])
        text = repr(body)
        assert text.count("∨") == 1  # only the T1-insert alternative
        assert "¬" in text  # the T2 delete exclusion for T3's atom

    def test_equivalence_with_sequential_execution(self):
        # Satisfiability of the composed body over D must coincide with the
        # existence of a consistent sequential execution (possible worlds).
        scenarios = [
            figure3_database(mickey_booked=True, flight2_seats=1),
            figure3_database(mickey_booked=True, flight2_seats=0),
            figure3_database(mickey_booked=False, flight2_seats=3),
        ]
        for database in scenarios:
            composed = compose_sequence([T1, T2, T3])
            satisfiable = GroundingSearch(database).exists(composed)
            worlds = enumerate_possible_worlds(database, [T1, T2, T3])
            assert satisfiable == bool(worlds)

    def test_t12_grounds_on_released_seat(self):
        # Mickey cancels seat 9Z; Donald (unconstrained) can take exactly it
        # when nothing else is available.
        database = figure3_database(mickey_booked=True, flight2_seats=0)
        composed = compose_sequence([T1, T2])
        result = GroundingSearch(database).find_one(
            composed, required=[Variable("s1"), Variable("f2"), Variable("s2")]
        )
        assert result.satisfiable
        valuation = result.valuation()
        assert valuation["f2"] == 1 and valuation["s2"] == valuation["s1"] == "9Z"

    def test_t3_cannot_reuse_seat_deleted_by_t2(self):
        # Only one seat on flight 2: if Donald's unconstrained booking takes
        # it, Goofy's flight-2 booking must fail — unless Donald grounds on
        # flight 1 (Mickey's released seat).  The composed body forces the
        # consistent choice.
        database = figure3_database(mickey_booked=True, flight2_seats=1)
        composed = compose_sequence([T1, T2, T3])
        result = GroundingSearch(database).find_one(
            composed, required=[Variable("f2"), Variable("s2"), Variable("s3")]
        )
        assert result.satisfiable
        valuation = result.valuation()
        assert not (valuation["f2"] == 2 and valuation["s2"] == valuation["s3"])


class TestCompositionOptions:
    def test_optional_atoms_excluded_by_default(self):
        mickey = parse_transaction(
            "-Av(f, s), +Bk(M, f, s) :-1 Av(f, s), [Bk(G, f, s2)], [Adj(s, s2)]"
        )
        hard_only = compose_sequence([mickey])
        with_optional = compose_sequence([mickey], include_optional=True)
        assert len(hard_only.atoms()) == 1
        assert len(with_optional.atoms()) == 3

    def test_empty_sequence_composes_to_true(self):
        assert compose_sequence([]) is TRUE

    def test_rename_keeps_namespaces_apart(self):
        first = parse_transaction("-A(s), +B(s) :-1 A(s)")
        second = parse_transaction("-A(s), +C(s) :-1 A(s)")
        composed = compose_sequence([first, second], rename=True)
        names = {v.name for v in composed.free_variables()}
        assert len(names) == 2
        assert all("@" in name for name in names)

    def test_report_counts_atoms(self):
        report = CompositionReport.build([T1, T2, T3])
        assert report.transaction_ids == (
            T1.transaction_id,
            T2.transaction_id,
            T3.transaction_id,
        )
        assert report.atom_count == len(compose_sequence([T1, T2, T3]).atoms())
