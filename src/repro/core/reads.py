"""Read handling: requests, modes, and collapse semantics (Section 3.2.2).

A read against a quantum database "may have a different value depending on
the possible world that it occurs in", so the system must decide how much
uncertainty to expose.  The paper describes three options and adopts the
third:

1. ``EXPOSE_ALL`` — return all possible values across possible worlds;
2. ``PEEK`` — return one possible value without fixing it;
3. ``COLLAPSE`` — pick one value and fix it, collapsing part of the quantum
   state so that the programmer sees an ordinary database with read
   repeatability.

:class:`ReadRequest` describes a read as a conjunction of relational atom
patterns with a projection; :class:`ReadMode` selects the semantics.  The
actual orchestration (identifying affected pending transactions via
unification, grounding them, and evaluating the query) lives in
:class:`~repro.core.quantum_database.QuantumDatabase`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import QuantumError
from repro.logic.atoms import Atom, AtomKind
from repro.logic.terms import Constant, Variable
from repro.relational.query import ConjunctiveQuery, Var


class ReadMode(enum.Enum):
    """How much uncertainty a read exposes."""

    COLLAPSE = "COLLAPSE"
    PEEK = "PEEK"
    EXPOSE_ALL = "EXPOSE_ALL"


@dataclass(frozen=True)
class ReadRequest:
    """A read query: a conjunction of atom patterns plus a projection.

    Attributes:
        atoms: the patterns; variables join across atoms as usual.
        select: variable names to return; all variables when omitted.
        limit: maximum number of answers; unlimited when omitted.
        mode: the read semantics (default: collapse, as in the paper).
    """

    atoms: tuple[Atom, ...]
    select: tuple[str, ...] | None = None
    limit: int | None = None
    mode: ReadMode = ReadMode.COLLAPSE

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QuantumError("a read request needs at least one atom")
        for atom in self.atoms:
            if atom.kind is not AtomKind.BODY:
                raise QuantumError(f"read atoms must be body atoms, got {atom!r}")

    @classmethod
    def single(
        cls,
        relation: str,
        terms: Sequence[Any],
        *,
        select: Sequence[str] | None = None,
        limit: int | None = None,
        mode: ReadMode = ReadMode.COLLAPSE,
    ) -> "ReadRequest":
        """Convenience constructor for a single-atom read.

        ``None`` terms are treated as wildcards: each becomes a fresh
        variable named after its column position (``_0``, ``_1``, ...), so
        ``ReadRequest.single("Bookings", ["Mickey", None, None])`` reads
        Mickey's flight and seat.
        """
        resolved = [
            Variable(f"_{position}") if term is None else term
            for position, term in enumerate(terms)
        ]
        return cls(
            atoms=(Atom.body(relation, resolved),),
            select=tuple(select) if select is not None else None,
            limit=limit,
            mode=mode,
        )

    def variables(self) -> tuple[str, ...]:
        """Names of the variables bound by the request, in first-use order."""
        seen: list[str] = []
        for atom in self.atoms:
            for term in atom.terms:
                if isinstance(term, Variable) and term.name not in seen:
                    seen.append(term.name)
        return tuple(seen)

    def to_query(self) -> ConjunctiveQuery:
        """Translate the request into a relational conjunctive query."""
        query = ConjunctiveQuery(
            select=list(self.select) if self.select is not None else list(self.variables()),
            limit=self.limit,
        )
        for atom in self.atoms:
            query.add_atom(atom.relation, [_to_query_term(t) for t in atom.terms])
        return query


def _to_query_term(term: Variable | Constant) -> Any:
    if isinstance(term, Variable):
        return Var(term.name)
    return term.value
