"""Shutdown ordering on sharded servers: drain, join executors, checkpoint.

``QuantumServer.shutdown()`` on a ``shards=N`` database must (in order)
drain the admission queue — completing any grounding whose plans are in
flight on the shard executors and any commit batch whose admissions are in
flight on the per-shard admission lanes — then join those executors
(thread pools, process pools and lane workers alike) and fold the WAL into
a checkpoint, all without deadlocking.  Every test runs under
``asyncio.wait_for`` so an ordering bug fails loudly instead of hanging
the suite.

The lane-parallel regression tests at the bottom pin that
``SessionBackpressure`` and ``GroundingTimeout`` semantics are unchanged
when the drain loop admits through per-shard lanes, and that a shutdown
racing a lane-parallel drain leaves no orphaned pending entries (every
pending transaction durable, every durable row pending).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    QuantumConfig,
    QuantumDatabase,
    QuantumServer,
    ServerConfig,
    parse_transaction,
)
from repro.errors import GroundingTimeout, QuantumError, SessionBackpressure
from repro.relational.wal import LogRecordType

BACKENDS = ("thread", "process")


def make_qdb(*, backend, shards=2, k=16, flights=6, seats=3, lanes=False):
    qdb = QuantumDatabase(
        config=QuantumConfig(
            k=k, shards=shards, shard_backend=backend, admission_lanes=lanes
        )
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, flights + 1) for i in range(seats)],
    )
    return qdb


def booking(user, flight):
    return parse_transaction(
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_close_while_plans_in_flight(backend):
    """Shutdown drains a queued ground-all whose plans fan out per shard."""

    async def main():
        qdb = make_qdb(backend=backend)
        server = await QuantumServer(qdb).start()
        async with server.session(client="loader") as session:
            for flight in range(1, 7):
                result = await session.commit(booking(f"u{flight}", flight))
                assert result.committed
        assert qdb.pending_count == 6
        # Enqueue the grounding but shut down before awaiting it: FIFO
        # ordering puts the shutdown sentinel behind it, so the drain loop
        # must fan the plans out to the shard executors (starting them
        # lazily, mid-shutdown) and apply them before the server exits.
        ground_task = asyncio.create_task(server.ground_all())
        await asyncio.sleep(0)
        await server.shutdown()
        grounded = await ground_task
        assert len(grounded) == 6
        assert qdb.pending_count == 0
        # Executors were joined (thread and process pools alike) ...
        assert not any(shard.started for shard in qdb.state.partitions.shards)
        # ... the WAL was folded into a checkpoint ...
        records = list(qdb.database.wal.records())
        assert records and records[0].record_type is LogRecordType.CHECKPOINT
        # ... and the server no longer accepts work.
        with pytest.raises(QuantumError):
            await server.ground_all()
        return qdb

    asyncio.run(asyncio.wait_for(main(), timeout=60))


@pytest.mark.parametrize("backend", BACKENDS)
def test_shutdown_idempotent_after_grounding(backend):
    """A second shutdown (and a post-shutdown close) is a no-op."""

    async def main():
        qdb = make_qdb(backend=backend)
        async with QuantumServer(qdb) as server:
            async with server.session(client="c") as session:
                for flight in (1, 2, 3):
                    await session.commit(booking(f"v{flight}", flight))
                await session.ground(
                    [t.transaction_id for t in qdb.state.pending_transactions()]
                )
        await server.shutdown()  # idempotent
        qdb.close()  # executors already joined; also idempotent
        assert qdb.pending_count == 0

    asyncio.run(asyncio.wait_for(main(), timeout=60))


@pytest.mark.parametrize("lanes", [False, True])
def test_grounding_timeout_resolves_submitter_without_wedging_writer(lanes):
    """A hung plan resolves the submitter with GroundingTimeout; the writer
    keeps serving later work and shutdown still completes.  Identical with
    the admission lanes on: explicit grounds run at writer serialization
    points, outside the lanes, and the timeout path is untouched."""

    async def main():
        qdb = make_qdb(backend="thread", lanes=lanes)
        server = await QuantumServer(
            qdb, ServerConfig(grounding_timeout_s=0.05)
        ).start()
        async with server.session(client="c") as session:
            for flight in (1, 2):
                await session.commit(booking(f"w{flight}", flight))
            original = qdb.state.plan_grounding

            def hung_plan(partition, targets, *, forced=False):
                import time

                time.sleep(0.3)
                return original(partition, targets, forced=forced)

            qdb.state.plan_grounding = hung_plan
            with pytest.raises(GroundingTimeout):
                await session.ground(
                    [t.transaction_id for t in qdb.state.pending_transactions()]
                )
            # The timeout applied nothing: both transactions stay pending,
            # and the writer is alive — admission (which never touches the
            # stuck plan executors) proceeds immediately.
            assert qdb.pending_count == 2
            result = await session.commit(booking("w3", 3))
            assert result.committed
            # Once the hung plans actually drain off the shard workers, a
            # retry grounds everything normally.
            qdb.state.plan_grounding = original
            await asyncio.sleep(0.4)
            grounded = await session.ground(
                [t.transaction_id for t in qdb.state.pending_transactions()]
            )
            assert len(grounded) == 3
        await server.shutdown()

    asyncio.run(asyncio.wait_for(main(), timeout=60))


def pending_store_ids(qdb):
    """Transaction ids persisted in the pending-transactions table."""
    return sorted(
        transaction.transaction_id
        for _sequence, transaction in qdb.pending_store.restore()
    )


def state_pending_ids(qdb):
    """Transaction ids still pending in the in-memory quantum state."""
    return sorted(
        entry.transaction_id for entry in qdb.state.pending_transactions()
    )


def test_backpressure_semantics_unchanged_with_lanes():
    """SessionBackpressure fires at enqueue time, before any lane sees the
    work — the quota accounting must be byte-for-byte the unsharded one."""

    async def main():
        qdb = make_qdb(backend="thread", lanes=True)
        config = ServerConfig(session_quota=2)
        async with QuantumServer(qdb, config) as server:
            session = server.session(client="flooder")
            futures = [
                asyncio.ensure_future(session.commit(booking(f"b{i}", 1)))
                for i in range(4)
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            refused = [
                r for r in results if isinstance(r, SessionBackpressure)
            ]
            accepted = [r for r in results if not isinstance(r, Exception)]
            # The quota refused the overflow before it reached the queue
            # (and hence before any lane), exactly as without lanes.
            assert len(refused) == 2
            assert len(accepted) == 2
            assert server.statistics.backpressure_rejections == 2
            assert session.statistics.backpressure == 2
            await session.close()
        qdb.close()

    asyncio.run(asyncio.wait_for(main(), timeout=60))


@pytest.mark.parametrize("backend", BACKENDS)
def test_close_while_lanes_draining_leaves_no_orphans(backend):
    """Shutdown racing a lane-parallel drain: the in-flight commit batch
    completes on its lanes, the single group-commit durability write runs,
    and afterwards the pending store and the in-memory pending set agree
    exactly — no orphaned entry on either side."""

    async def main():
        qdb = make_qdb(backend=backend, lanes=True, flights=6, seats=3)
        server = await QuantumServer(qdb).start()
        sessions = [server.session(client=f"c{i}") for i in range(3)]
        futures = []
        for i in range(18):
            session = sessions[i % len(sessions)]
            futures.append(
                asyncio.create_task(
                    session.commit(booking(f"u{i}", (i % 6) + 1))
                )
            )
        # Let the writer start draining (the commit run fans out onto the
        # admission lanes), then shut down immediately: the sentinel lands
        # behind the batch, which must complete — lanes included — first.
        await asyncio.sleep(0)
        await server.shutdown()
        results = await asyncio.gather(*futures, return_exceptions=True)
        commits = [
            r for r in results if not isinstance(r, BaseException)
        ]
        assert commits, "at least the first drained run must have committed"
        # No orphans in either direction: everything pending in memory is
        # durable, everything durable is still pending.
        assert pending_store_ids(qdb) == state_pending_ids(qdb)
        # Lane workers and shard executors were all released.
        assert qdb._admission is None or qdb._admission.closed
        assert not any(shard.started for shard in qdb.state.partitions.shards)
        # The WAL was folded into a checkpoint as usual.
        records = list(qdb.database.wal.records())
        assert records and records[0].record_type is LogRecordType.CHECKPOINT
        qdb.close()

    asyncio.run(asyncio.wait_for(main(), timeout=60))


def test_lane_parallel_drain_matches_serialized_decisions():
    """The server's group-commit drain admits through the lanes; decisions
    and session-visible results must match the lanes-off server bit for
    bit on the same arrival order."""

    async def run_server(lanes):
        qdb = make_qdb(backend="thread", lanes=lanes, flights=5, seats=3, k=4)
        decisions = []
        async with QuantumServer(qdb) as server:
            async with server.session(client="driver") as session:
                # Submit in bursts so the writer drains real batches.
                for burst in range(4):
                    futures = [
                        asyncio.ensure_future(
                            session.commit(
                                booking(f"s{burst}_{i}", (i % 5) + 1)
                            )
                        )
                        for i in range(6)
                    ]
                    for result in await asyncio.gather(*futures):
                        decisions.append(result.committed)
        report = qdb.statistics_report()
        qdb.close()
        return decisions, report

    async def main():
        serial_decisions, _serial_report = await run_server(False)
        lane_decisions, lane_report = await run_server(True)
        assert lane_decisions == serial_decisions
        # The lane pipeline actually ran (this is not a vacuous pass).
        assert lane_report["admission.batches"] >= 1
        assert (
            lane_report["admission.lane_dispatches"]
            + lane_report["admission.barrier_arrivals"]
        ) > 0

    asyncio.run(asyncio.wait_for(main(), timeout=60))
