"""End-to-end integration tests across the whole stack.

These scenarios exercise the full pipeline — workload generation, the
quantum middle tier, the relational store, recovery, and the baselines — in
one place, the way the examples and experiment harnesses do.
"""

from __future__ import annotations


from repro import (
    QuantumConfig,
    QuantumDatabase,
    SerializabilityMode,
    make_adjacent_seat_request,
)
from repro.baselines.intelligent_social import IntelligentSocialClient
from repro.core.recovery import PendingTransactionStore
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.relational.recovery import recover_database
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import (
    FlightDatabaseSpec,
    booked_adjacent_pairs,
    build_flight_database,
    create_flight_tables,
)


class TestEndToEndScenario:
    def test_full_flight_all_users_seated_and_coordinated(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        workload = generate_workload(spec, ArrivalOrder.REVERSE_ORDER, seed=11)
        database = build_flight_database(spec)
        qdb = QuantumDatabase(database, QuantumConfig(k=61))
        for transaction in workload:
            assert qdb.execute(transaction).committed
        qdb.ground_all()
        # Everyone has a seat and the flight is exactly full.
        assert len(database.table("Bookings")) == spec.total_seats
        assert len(database.table("Available")) == 0
        # The seating geometry allows one adjacent pair per row (the paper's
        # "maximum possible coordination"); deferred grounding achieves it.
        pairs = booked_adjacent_pairs(database)
        coordinated = sum(
            2 for pair in workload.pairs if frozenset(pair.members()) in pairs
        )
        assert coordinated == workload.max_possible_coordinations

    def test_quantum_never_loses_to_is_on_reverse_order(self):
        # At this tiny scale the IS heuristic can occasionally tie; the
        # strict gap (the paper's Figure 6 / Table 2 claim) is asserted at
        # benchmark scale in benchmarks/test_table2_coordination_vs_k.py.
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        workload = generate_workload(spec, ArrivalOrder.REVERSE_ORDER, seed=3)
        quantum = run_quantum_entangled(workload, k=12)
        baseline = run_is_entangled(workload)
        assert quantum.coordination_percentage == 100.0
        assert baseline.coordination_percentage <= quantum.coordination_percentage

    def test_mixed_flexible_and_pinned_requests(self):
        spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=2)
        database = build_flight_database(spec)
        qdb = QuantumDatabase(database)
        flights = spec.flight_numbers()
        # Fill flight 0 with pinned requests, then let flexible users overflow
        # onto flight 1.
        for index in range(spec.seats_per_flight):
            assert qdb.execute(
                f"-Available({flights[0]}, ?s), +Bookings('pinned{index}', {flights[0]}, ?s) "
                f":-1 Available({flights[0]}, ?s)"
            ).committed
        flexible = [
            qdb.execute(
                f"-Available(?f, ?s), +Bookings('flex{index}', ?f, ?s) :-1 Available(?f, ?s)"
            )
            for index in range(spec.seats_per_flight)
        ]
        assert all(result.committed for result in flexible)
        qdb.ground_all()
        seated_on = {
            row["passenger"]: row["flight"] for row in qdb.table("Bookings")
        }
        assert all(
            seated_on[f"flex{index}"] == flights[1]
            for index in range(spec.seats_per_flight)
        )

    def test_crash_recovery_mid_workload(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=3)
        database = build_flight_database(spec)
        qdb = QuantumDatabase(database, QuantumConfig())
        workload = generate_workload(spec, ArrivalOrder.IN_ORDER, seed=5)
        half = len(workload) // 2
        for transaction in workload.transactions[:half]:
            qdb.execute(transaction)

        def schema_factory():
            fresh = build_flight_database(spec)
            # Recovery replays the WAL onto empty schemas; the initial load is
            # itself in the WAL, so start from bare tables.
            fresh = type(fresh)()
            create_flight_tables(fresh)
            PendingTransactionStore(fresh)
            return fresh

        restored_store = recover_database(schema_factory, database.wal)
        recovered = QuantumDatabase.recover(restored_store, qdb.config)
        assert recovered.pending_count == qdb.pending_count
        # Finish the workload on the recovered instance.
        for transaction in workload.transactions[half:]:
            assert recovered.execute(transaction).committed
        recovered.ground_all()
        assert len(recovered.table("Bookings")) == 2 * len(workload.pairs)

    def test_strict_vs_semantic_admission_equivalence(self):
        # Both modes admit the same transactions; they differ in how much
        # they ground when collapsing, not in the commit guarantee.
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=2)
        workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=9)
        outcomes = {}
        for mode in SerializabilityMode:
            qdb = QuantumDatabase(
                build_flight_database(spec), QuantumConfig(serializability=mode)
            )
            outcomes[mode] = [qdb.execute(t).committed for t in workload]
        assert outcomes[SerializabilityMode.STRICT] == outcomes[SerializabilityMode.SEMANTIC]

    def test_is_baseline_shares_database_with_quantum_reads(self):
        # The IS client and the quantum database can coexist on one store;
        # the pending transaction's guarantee must survive the walk-up booking.
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=2)
        database = build_flight_database(spec)
        qdb = QuantumDatabase(database)
        flight = spec.flight_numbers()[0]
        qdb.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=flight))
        client = IntelligentSocialClient(database)
        booking = client.book("Walkup", None, flight=flight)
        assert booking.succeeded
        record = qdb.ground_all()[0]
        assert record.valuation["s"] != booking.seat
