"""Table schemas: column declarations and key constraints.

The paper assumes (Section 3.2.1) that every relation appearing in the
``FOLLOWED BY`` clause of a resource transaction has a key, i.e. satisfies
set semantics.  Our schema objects make the key explicit: if a schema does
not declare a primary key, the whole row acts as the key (pure set
semantics), which is exactly the normalization fallback the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.datatypes import DataType


@dataclass(frozen=True)
class Column:
    """A single column declaration.

    Attributes:
        name: column name, unique within its table.
        datatype: accepted value domain.
        nullable: whether NULL is admissible (key columns never are).
    """

    name: str
    datatype: DataType = DataType.ANY
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")

    def validate(self, value: Any) -> Any:
        """Validate ``value`` against this column's type and nullability."""
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is not nullable")
        return self.datatype.validate(value, column=self.name)


class TableSchema:
    """Schema of a single table: ordered columns plus an optional key.

    Args:
        name: table name, unique within a database catalog.
        columns: ordered column declarations.  Strings are accepted as a
            shorthand for ``Column(name)`` with type ``ANY``.
        key: names of the primary-key columns.  When omitted or empty the
            entire row is the key (set semantics).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column | str],
        key: Sequence[str] | None = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(
            col if isinstance(col, Column) else Column(col) for col in columns
        )
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names: {names}")
        self._positions: dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}

        key_names = tuple(key) if key else tuple(names)
        for k in key_names:
            if k not in self._positions:
                raise SchemaError(f"key column {k!r} not in table {name!r}")
        self.key: tuple[str, ...] = key_names
        self.key_positions: tuple[int, ...] = tuple(self._positions[k] for k in key_names)

    # -- introspection ------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def position(self, column: str) -> int:
        """Return the 0-based position of ``column``.

        Raises:
            UnknownColumnError: if the column does not exist.
        """
        try:
            return self._positions[column]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def has_column(self, column: str) -> bool:
        """True if ``column`` is declared on this table."""
        return column in self._positions

    # -- validation ---------------------------------------------------------

    def validate_values(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate a positional value tuple against the schema."""
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return tuple(col.validate(v) for col, v in zip(self.columns, values))

    def values_from_mapping(self, mapping: Mapping[str, Any]) -> tuple[Any, ...]:
        """Build a positional value tuple from a column-name mapping."""
        unknown = set(mapping) - set(self.column_names)
        if unknown:
            raise UnknownColumnError(
                f"table {self.name!r} has no columns {sorted(unknown)}"
            )
        return self.validate_values(
            tuple(mapping.get(name) for name in self.column_names)
        )

    def key_of(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Project a validated value tuple onto the primary-key columns."""
        return tuple(values[i] for i in self.key_positions)

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(c.name for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}], key={list(self.key)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.key))
