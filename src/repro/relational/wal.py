"""A write-ahead log for the relational store.

The quantum database achieves durability of *pending* resource transactions
by serialising them into a pending-transactions table before commit (paper,
Section 4, "Recovery").  That table lives in the ordinary relational store,
so the store itself needs a recovery story: this module provides a minimal
physiological WAL — ordered records of row-level inserts and deletes tagged
with transaction ids and commit/abort markers — plus an in-memory "stable
storage" abstraction that recovery replays.

The log is deliberately simple (no checkpoints, no fuzzy snapshots): its job
in the reproduction is to make the crash-recovery path of the quantum
database testable end-to-end, not to compete with InnoDB.
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import RecoveryError


class LogRecordType(enum.Enum):
    """Kinds of WAL records."""

    BEGIN = "BEGIN"
    INSERT = "INSERT"
    DELETE = "DELETE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"


@dataclass(frozen=True)
class LogRecord:
    """A single WAL record.

    Attributes:
        lsn: log sequence number (monotonically increasing).
        record_type: the record kind.
        transaction_id: id of the transaction that produced the record.
        table: affected table (INSERT/DELETE records only).
        values: affected row values (INSERT/DELETE records only).
    """

    lsn: int
    record_type: LogRecordType
    transaction_id: int
    table: str | None = None
    values: tuple[Any, ...] | None = None

    def to_json(self) -> str:
        """Serialise the record to a JSON line (for durability tests)."""
        return json.dumps(
            {
                "lsn": self.lsn,
                "type": self.record_type.value,
                "txn": self.transaction_id,
                "table": self.table,
                "values": list(self.values) if self.values is not None else None,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Parse a record previously produced by :meth:`to_json`."""
        try:
            data = json.loads(line)
            return cls(
                lsn=data["lsn"],
                record_type=LogRecordType(data["type"]),
                transaction_id=data["txn"],
                table=data["table"],
                values=tuple(data["values"]) if data["values"] is not None else None,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise RecoveryError(f"malformed log record: {line!r}") from exc


class WriteAheadLog:
    """An append-only, in-memory write-ahead log.

    The log survives "crashes" simulated by discarding the
    :class:`~repro.relational.database.Database` object while keeping the
    log; :func:`repro.relational.recovery.recover_database` then rebuilds the
    store.  The log can also round-trip through JSON lines to exercise real
    persistence in tests.
    """

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._lsn = itertools.count(1)

    # -- append -------------------------------------------------------------

    def append(
        self,
        record_type: LogRecordType,
        transaction_id: int,
        table: str | None = None,
        values: Sequence[Any] | None = None,
    ) -> LogRecord:
        """Append a record and return it."""
        record = LogRecord(
            lsn=next(self._lsn),
            record_type=record_type,
            transaction_id=transaction_id,
            table=table,
            values=tuple(values) if values is not None else None,
        )
        self._records.append(record)
        return record

    def log_begin(self, transaction_id: int) -> LogRecord:
        """Record the start of a transaction."""
        return self.append(LogRecordType.BEGIN, transaction_id)

    def log_insert(
        self, transaction_id: int, table: str, values: Sequence[Any]
    ) -> LogRecord:
        """Record a row insert."""
        return self.append(LogRecordType.INSERT, transaction_id, table, values)

    def log_delete(
        self, transaction_id: int, table: str, values: Sequence[Any]
    ) -> LogRecord:
        """Record a row delete."""
        return self.append(LogRecordType.DELETE, transaction_id, table, values)

    def log_commit(self, transaction_id: int) -> LogRecord:
        """Record a transaction commit (the durability point)."""
        return self.append(LogRecordType.COMMIT, transaction_id)

    def log_abort(self, transaction_id: int) -> LogRecord:
        """Record a transaction abort."""
        return self.append(LogRecordType.ABORT, transaction_id)

    # -- read ---------------------------------------------------------------

    def records(self) -> tuple[LogRecord, ...]:
        """All records in LSN order."""
        return tuple(self._records)

    def committed_transaction_ids(self) -> frozenset[int]:
        """Ids of all transactions with a COMMIT record."""
        return frozenset(
            r.transaction_id
            for r in self._records
            if r.record_type is LogRecordType.COMMIT
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    # -- persistence --------------------------------------------------------

    def dump(self) -> str:
        """Serialise the whole log as JSON lines."""
        return "\n".join(record.to_json() for record in self._records)

    @classmethod
    def load(cls, text: str) -> "WriteAheadLog":
        """Rebuild a log from :meth:`dump` output."""
        log = cls()
        records = [
            LogRecord.from_json(line) for line in text.splitlines() if line.strip()
        ]
        records.sort(key=lambda r: r.lsn)
        log._records = records
        last = records[-1].lsn if records else 0
        log._lsn = itertools.count(last + 1)
        return log

    def truncate(self) -> None:
        """Discard all records (used after a full snapshot)."""
        self._records.clear()
