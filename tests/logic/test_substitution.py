"""Tests for substitutions: application, composition, merging."""

from __future__ import annotations

import pytest

from repro.errors import SubstitutionError
from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestBasics:
    def test_empty(self):
        theta = Substitution.empty()
        assert len(theta) == 0
        assert theta.apply_term(X) == X

    def test_identity_bindings_dropped(self):
        theta = Substitution({X: X})
        assert len(theta) == 0

    def test_plain_values_coerced(self):
        theta = Substitution({X: 5})
        assert theta[X] == Constant(5)

    def test_non_variable_key_rejected(self):
        with pytest.raises(SubstitutionError):
            Substitution({"x": 5})  # type: ignore[dict-item]

    def test_from_valuation_and_back(self):
        theta = Substitution.from_valuation({"x": 1, "y": "a"})
        assert theta.as_valuation() == {"x": 1, "y": "a"}

    def test_as_valuation_requires_ground(self):
        theta = Substitution({X: Y})
        with pytest.raises(SubstitutionError):
            theta.as_valuation()

    def test_is_ground(self):
        assert Substitution({X: 1}).is_ground()
        assert not Substitution({X: Y}).is_ground()


class TestApplication:
    def test_apply_chases_chains(self):
        theta = Substitution({X: Y, Y: Constant(3)})
        assert theta.apply_term(X) == Constant(3)

    def test_apply_atom(self):
        theta = Substitution({X: 1, Y: "a"})
        atom = Atom.body("R", [X, Y, Z])
        applied = theta.apply_atom(atom)
        assert applied.terms == (Constant(1), Constant("a"), Z)

    def test_callable_shorthand(self):
        theta = Substitution({X: 1})
        assert theta(X) == Constant(1)
        assert theta(Atom.body("R", [X])).is_ground()


class TestCombination:
    def test_bind_conflict_detected(self):
        theta = Substitution({X: 1})
        with pytest.raises(SubstitutionError):
            theta.bind(X, 2)

    def test_bind_same_value_ok(self):
        theta = Substitution({X: 1})
        assert theta.bind(X, 1) == theta

    def test_merge(self):
        theta = Substitution({X: 1}).merge(Substitution({Y: 2}))
        assert theta.as_valuation() == {"x": 1, "y": 2}

    def test_merge_conflict(self):
        with pytest.raises(SubstitutionError):
            Substitution({X: 1}).merge(Substitution({X: 2}))

    def test_compose_definition(self):
        # compose: first self, then other (ν = ν' ∘ θ).
        theta = Substitution({X: Y})
        nu_prime = Substitution({Y: Constant(7)})
        composed = theta.compose(nu_prime)
        assert composed.apply_term(X) == Constant(7)
        assert composed.apply_term(Y) == Constant(7)

    def test_restrict(self):
        theta = Substitution({X: 1, Y: 2})
        restricted = theta.restrict([X])
        assert X in restricted and Y not in restricted

    def test_equality_and_hash(self):
        assert Substitution({X: 1}) == Substitution({X: 1})
        assert hash(Substitution({X: 1})) == hash(Substitution({X: 1}))
        assert Substitution({X: 1}) != Substitution({X: 2})
