"""Tests for partitioning, the solution cache, grounding policy and recovery."""

from __future__ import annotations

import pytest

from repro.core.grounding_policy import GroundingPolicy, GroundingStrategy
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.recovery import PENDING_TABLE, PendingTransactionStore
from repro.errors import QuantumError
from repro.relational.recovery import recover_database
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database
from tests.conftest import make_tiny_flight_db

ANY_SEAT = "-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s) :-1 Available({flight}, ?s)"


def two_flight_db():
    spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=2, first_flight_number=100)
    return build_flight_database(spec)


class TestPartitioning:
    def test_independent_flights_get_separate_partitions(self):
        qdb = QuantumDatabase(two_flight_db())
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=101))
        assert len(qdb.state.partitions) == 2

    def test_same_flight_shares_a_partition(self):
        qdb = QuantumDatabase(two_flight_db())
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=100))
        assert len(qdb.state.partitions) == 1
        assert qdb.state.partitions.partitions[0].transaction_ids()

    def test_flexible_request_merges_partitions(self):
        qdb = QuantumDatabase(two_flight_db())
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=101))
        # Donald does not care which flight: his atoms unify with both.
        qdb.execute(
            "-Available(?f, ?s), +Bookings('Donald', ?f, ?s) :-1 Available(?f, ?s)"
        )
        assert len(qdb.state.partitions) == 1
        assert qdb.state.partitions.statistics.merges == 1

    def test_partition_dropped_when_emptied(self):
        qdb = QuantumDatabase(two_flight_db())
        result = qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.ground([result.transaction_id])
        assert len(qdb.state.partitions) == 0


class TestSolutionCache:
    def test_extension_hit_on_compatible_arrival(self):
        qdb = QuantumDatabase(make_tiny_flight_db())
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        stats = qdb.state.cache.statistics
        assert stats.extension_hits >= 1

    def test_full_solve_when_extension_fails(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=2))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        # Third user cannot fit: the cache records a failed full solve.
        result = qdb.execute(ANY_SEAT.format(name="Pluto", flight=123))
        assert not result.committed
        assert qdb.state.cache.statistics.failures >= 1

    def test_cached_solution_revalidated_after_write(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        partition = qdb.state.partitions.partitions[0]
        cached_before = partition.cached_solution
        assert cached_before is not None
        # Delete the exact seat the cached solution used; the write passes
        # (other seats remain) but the cache must be refreshed.
        seat_value = [v for v in cached_before.as_valuation().values() if isinstance(v, str)][0]
        qdb.delete("Available", (123, seat_value))
        assert partition.cached_solution is not None
        assert qdb.state.cache.verify(
            partition.composed_formula(), partition.cached_solution
        )


class TestWitnessCache:
    """The per-partition witness store behind the admission fast path."""

    def _witness(self, qdb):
        partition = qdb.state.partitions.partitions[0]
        return partition, qdb.state.cache.witness_for(partition)

    def test_admission_stores_witness_with_footprint(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        partition, witness = self._witness(qdb)
        assert witness is not None
        assert witness.pending_ids == partition.transaction_ids()
        assert witness.substitution == partition.cached_solution
        # The footprint is the Available row the grounding sits on.
        assert any(table == "Available" for table, _values in witness.rows)
        assert witness.monotone

    def test_second_admission_skips_composed_body_verification(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        stats = qdb.cache_statistics
        verifications_before = stats.verifications
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        assert stats.witness_hits >= 1
        assert stats.verifications == verifications_before

    def test_delete_of_witness_row_forces_research(self):
        """A delete that removes the witnessed row must trigger a re-solve —
        never a stale accept (regression guard for the fast path)."""
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        partition, witness = self._witness(qdb)
        [(_, (flight, seat))] = [
            (table, values) for table, values in witness.rows if table == "Available"
        ]
        solves_before = qdb.cache_statistics.full_solves
        qdb.delete("Available", (flight, seat))
        # The touched witness forced a full re-check of the composed body.
        assert qdb.cache_statistics.full_solves > solves_before
        _partition, refreshed = self._witness(qdb)
        assert refreshed is not None
        assert (flight, seat) not in {values for _t, values in refreshed.rows}
        # The refreshed guarantee is real: Mickey holds one of the two
        # remaining seats, so exactly one more passenger fits.
        assert qdb.execute(ANY_SEAT.format(name="Goofy", flight=123)).committed
        assert not qdb.execute(ANY_SEAT.format(name="Minnie", flight=123)).committed

    def test_delete_of_last_resource_rejected_not_stale_accepted(self):
        from repro.errors import WriteRejected

        qdb = QuantumDatabase(make_tiny_flight_db(seats=1))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        _partition, witness = self._witness(qdb)
        [(flight, seat)] = [values for table, values in witness.rows if table == "Available"]
        with pytest.raises(WriteRejected):
            qdb.delete("Available", (flight, seat))
        # The rejected write rolled back; Mickey's guarantee still grounds.
        record = qdb.check_in(qdb.state.pending_transactions()[0].transaction_id) \
            if qdb.state.pending_transactions() else None
        assert record is None or record.valuation

    def test_delete_missing_witness_row_is_fast_skipped(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        _partition, witness = self._witness(qdb)
        witnessed = {values for table, values in witness.rows if table == "Available"}
        other = next(
            (123, f"1{letter}")
            for letter in "ABC"
            if (123, f"1{letter}") not in witnessed
        )
        verifications_before = qdb.cache_statistics.verifications
        invalidations_before = qdb.cache_statistics.witness_invalidations
        qdb.delete("Available", other)
        # The write provably missed the witness footprint: no verification,
        # no invalidation, witness still live.
        assert qdb.cache_statistics.verifications == verifications_before
        assert qdb.cache_statistics.witness_invalidations == invalidations_before
        assert self._witness(qdb)[1] is not None

    def test_insert_never_invalidates_monotone_witness(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=2))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        invalidations_before = qdb.cache_statistics.witness_invalidations
        qdb.insert("Available", (123, "1Z"))
        assert qdb.cache_statistics.witness_invalidations == invalidations_before
        assert self._witness(qdb)[1] is not None

    def test_merge_retires_witnesses(self):
        qdb = QuantumDatabase(two_flight_db())
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=101))
        qdb.execute(
            "-Available(?f, ?s), +Bookings('Donald', ?f, ?s) :-1 Available(?f, ?s)"
        )
        assert len(qdb.state.partitions) == 1
        partition, witness = self._witness(qdb)
        # The post-merge witness covers exactly the merged pending sequence.
        assert witness is not None
        assert witness.pending_ids == partition.transaction_ids()

    def test_grounding_keeps_other_partitions_witness(self):
        qdb = QuantumDatabase(two_flight_db())
        first = qdb.execute(ANY_SEAT.format(name="Mickey", flight=100))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=101))
        invalidations_before = qdb.cache_statistics.witness_invalidations
        qdb.ground([first.transaction_id])
        assert qdb.cache_statistics.witness_invalidations == invalidations_before
        # Goofy's partition still answers admissions from its witness.
        stats = qdb.cache_statistics
        hits_before = stats.witness_hits
        qdb.execute(ANY_SEAT.format(name="Minnie", flight=101))
        assert stats.witness_hits > hits_before

    def test_disabled_witness_cache_behaves_like_seed(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3), QuantumConfig(witness_cache=False))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        stats = qdb.cache_statistics
        assert stats.witness_hits == 0
        assert stats.witness_misses == 0
        assert stats.verifications >= 1
        partition, witness = self._witness(qdb)
        assert witness is None
        assert partition.cached_solution is not None


class TestGroundingPolicy:
    def test_k_bound_forces_grounding_oldest_first(self):
        qdb = QuantumDatabase(make_tiny_flight_db(seats=3), QuantumConfig(k=2))
        first = qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        second = qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        third = qdb.execute(ANY_SEAT.format(name="Minnie", flight=123))
        assert qdb.pending_count == 2
        assert not qdb.state.is_pending(first.transaction_id)
        assert qdb.state.is_pending(second.transaction_id)
        assert qdb.state.is_pending(third.transaction_id)
        record = qdb.state.grounded_results[first.transaction_id]
        assert record.forced

    def test_newest_first_strategy(self):
        qdb = QuantumDatabase(
            make_tiny_flight_db(seats=3),
            QuantumConfig(k=2, strategy=GroundingStrategy.NEWEST_FIRST),
        )
        first = qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        third = qdb.execute(ANY_SEAT.format(name="Minnie", flight=123))
        assert not qdb.state.is_pending(third.transaction_id)
        assert qdb.state.is_pending(first.transaction_id)

    def test_invalid_k(self):
        with pytest.raises(QuantumError):
            GroundingPolicy(k=0)

    def test_victims_empty_within_bound(self):
        qdb = QuantumDatabase(make_tiny_flight_db(), QuantumConfig(k=5))
        qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        policy = qdb.config.policy()
        assert policy.victims(qdb.state.partitions.partitions[0]) == []


class TestDurabilityAndRecovery:
    def test_pending_table_tracks_lifecycle(self):
        qdb = QuantumDatabase(make_tiny_flight_db())
        result = qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        store = qdb.pending_store
        assert result.transaction_id in store.pending_ids()
        qdb.check_in(result.transaction_id)
        assert result.transaction_id not in store.pending_ids()

    def test_recover_rebuilds_quantum_state(self):
        qdb = QuantumDatabase(make_tiny_flight_db())
        kept = qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        grounded = qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        qdb.check_in(grounded.transaction_id)

        # Simulate a crash: rebuild the extensional store from the WAL, then
        # restore the quantum state from the pending-transactions table.
        def schema_factory():
            fresh = make_tiny_flight_db()
            PendingTransactionStore(fresh)
            return fresh

        def schema_only():
            from repro.relational.database import Database

            fresh = Database()
            fresh.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
            fresh.create_table(
                "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
            )
            fresh.create_table(
                "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
            )
            PendingTransactionStore(fresh)
            return fresh

        recovered_store = recover_database(schema_only, qdb.database.wal)
        recovered = QuantumDatabase.recover(recovered_store, qdb.config)
        assert recovered.pending_count == 1
        assert recovered.state.is_pending(kept.transaction_id)
        # Goofy's grounded booking survived; Mickey's guarantee still holds.
        assert len(recovered.table("Bookings")) == 1
        record = recovered.check_in(kept.transaction_id)
        assert record is not None and record.valuation["s"]

    def test_restore_reports_sequence_order(self):
        qdb = QuantumDatabase(make_tiny_flight_db())
        first = qdb.execute(ANY_SEAT.format(name="Mickey", flight=123))
        second = qdb.execute(ANY_SEAT.format(name="Goofy", flight=123))
        restored = qdb.pending_store.restore()
        assert [txn.transaction_id for _seq, txn in restored] == [
            first.transaction_id,
            second.transaction_id,
        ]
        assert [txn.client for _seq, txn in restored] == [None, None]

    def test_pending_table_exists(self):
        qdb = QuantumDatabase(make_tiny_flight_db())
        assert qdb.database.has_table(PENDING_TABLE)
