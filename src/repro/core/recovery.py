"""Durability of pending resource transactions (Section 4, "Recovery").

"Since the execution of resource transactions is deferred post-commit, we
need to maintain additional information about these transactions to ensure
durability.  We do this by utilizing the recovery mechanisms of the
underlying database.  Each pending resource transaction is serialized and
inserted into a special database table called the pending transactions
table.  This insertion happens after the satisfiability check and before
the transaction commits.  During recovery, a quantum database module
restores the in-memory quantum state to what it was before the crash based
on the pending transactions table.  When a pending resource transaction is
grounded and executed, it is removed from the pending transactions table."

:class:`PendingTransactionStore` implements exactly that: it owns the
special table inside the extensional store and (de)serialises transactions
through the textual notation of :mod:`repro.core.parser`.

Each row also records the transaction's global arrival **sequence**;
:meth:`QuantumDatabase.recover <repro.core.quantum_database.QuantumDatabase.recover>`
re-admits in that order and resumes sequence numbering past the persisted
high-water mark, so a recovered server continues exactly where the crashed
one stopped.  The table itself rides the relational WAL — batch persists
(:meth:`PendingTransactionStore.persist_many`, used by ``commit_batch`` and
the session layer's group commit) become durable under a single commit
record, and WAL checkpoints snapshot it like any other table (see
``docs/architecture.md``, "Durability, checkpoints and recovery").
"""

from __future__ import annotations

from typing import Iterable

from repro.core.parser import format_transaction, parse_transaction
from repro.core.resource_transaction import ResourceTransaction
from repro.errors import QuantumRecoveryError
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import Column

#: Name of the special table holding serialized pending transactions.
PENDING_TABLE = "__pending_transactions"


class PendingTransactionStore:
    """The pending-transactions table and its (de)serialisation logic."""

    def __init__(self, database: Database) -> None:
        self.database = database
        if not database.has_table(PENDING_TABLE):
            database.create_table(
                PENDING_TABLE,
                [
                    Column("txn_id", DataType.INTEGER, nullable=False),
                    Column("sequence", DataType.INTEGER, nullable=False),
                    Column("client", DataType.TEXT),
                    Column("partner", DataType.TEXT),
                    Column("text", DataType.TEXT, nullable=False),
                ],
                key=["txn_id"],
            )

    @property
    def table(self):
        """The underlying table object."""
        return self.database.table(PENDING_TABLE)

    # -- persistence ---------------------------------------------------------

    def persist(self, transaction: ResourceTransaction, sequence: int) -> None:
        """Serialise a newly admitted transaction (before its commit returns)."""
        self.database.insert(
            PENDING_TABLE,
            (
                transaction.transaction_id,
                sequence,
                transaction.client,
                transaction.partner,
                format_transaction(transaction),
            ),
        )

    def persist_many(
        self, entries: Iterable[tuple[ResourceTransaction, int]]
    ) -> None:
        """Serialise a batch of admitted transactions in one store transaction.

        Used by ``commit_batch``: the whole batch becomes durable atomically
        with a single WAL commit record instead of one commit per
        transaction.
        """
        entries = list(entries)
        if not entries:
            return
        with self.database.begin() as txn:
            for transaction, sequence in entries:
                txn.insert(
                    PENDING_TABLE,
                    (
                        transaction.transaction_id,
                        sequence,
                        transaction.client,
                        transaction.partner,
                        format_transaction(transaction),
                    ),
                )

    def remove(self, transaction_id: int) -> None:
        """Remove a grounded transaction from the table (no-op if absent)."""
        row = self.table.get((transaction_id,))
        if row is not None:
            self.database.delete(PENDING_TABLE, row.values)

    def clear(self) -> None:
        """Remove every entry (used by tests)."""
        for row in list(self.table.rows()):
            self.database.delete(PENDING_TABLE, row.values)

    # -- restore --------------------------------------------------------------

    def restore(self) -> list[tuple[int, ResourceTransaction]]:
        """Deserialise all persisted pending transactions, in sequence order.

        Returns:
            ``(sequence, transaction)`` pairs sorted by sequence number.

        Raises:
            QuantumRecoveryError: if a stored row cannot be parsed back.
        """
        restored: list[tuple[int, ResourceTransaction]] = []
        for row in self.table.rows():
            try:
                transaction = parse_transaction(
                    row["text"],
                    transaction_id=row["txn_id"],
                    client=row["client"],
                    partner=row["partner"],
                )
            except Exception as exc:  # noqa: BLE001 - wrap any parse failure
                raise QuantumRecoveryError(
                    f"could not restore pending transaction {row['txn_id']}: {exc}"
                ) from exc
            restored.append((row["sequence"], transaction))
        restored.sort(key=lambda pair: pair[0])
        return restored

    def pending_ids(self) -> frozenset[int]:
        """Transaction ids currently persisted."""
        return frozenset(row["txn_id"] for row in self.table.rows())

    def __len__(self) -> int:
        return len(self.table)
