"""Table 2 — average percentage of successful coordination vs. k.

Regenerates Table 2 from the Figure 7 sweep.  Expected shape: coordination
increases with k, the largest k is (near) perfect, IS is far lower, and even
the smallest quantum configuration beats IS.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure7 import default_parameters, paper_parameters
from repro.experiments.report import format_table
from repro.experiments.table2 import run_table2

PARAMETERS = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_table2_coordination(benchmark):
    result = benchmark.pedantic(lambda: run_table2(PARAMETERS), rounds=1, iterations=1)
    report(
        "Table 2",
        format_table(["System", "Avg % coordination"], result.rows(), precision=1),
    )
    averages = result.averages
    ks = sorted(PARAMETERS.ks)
    # Coordination percentage is (weakly) monotone in k: pre-emptive
    # grounding is the only thing that costs coordination.
    for smaller, larger in zip(ks, ks[1:]):
        assert averages[f"k={smaller}"] <= averages[f"k={larger}"] + 1e-9
    # The largest k achieves near-perfect coordination and clearly beats the
    # intelligent-social baseline (the paper's 99.9% vs 20.2%).  At the
    # scaled-down default sizes the *smallest* k can fall below IS — the
    # paper's "even k=20 is 2x IS" claim needs the paper-sized workloads
    # (REPRO_BENCH_SCALE=paper), so it is not asserted here.
    assert averages[f"k={ks[-1]}"] >= 95.0
    assert averages[f"k={ks[-1]}"] > averages["IS"]
