"""Entangled seat-booking workloads (Section 5.2).

"We created a workload of simulated entangled resource transactions to
model the output of the front-end social travel application ... Our
workload simulates users desiring to coordinate with their friends on
flights and to sit in adjacent seats."

The workload generator produces coordination pairs of users, assigns each
pair to a flight so that every user can get a seat (and every pair *could*
sit together — "in all our workloads, all coordination partners arrive in
the system at some point so full coordination is theoretically achievable"),
and emits the per-user entangled resource transactions in the requested
arrival order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.entanglement import (
    EntangledResourceTransaction,
    make_adjacent_seat_request,
)
from repro.workloads.arrival_orders import ArrivalOrder, order_arrivals
from repro.workloads.flights import FlightDatabaseSpec


@dataclass(frozen=True)
class CoordinationPair:
    """A pair of users who want to sit next to each other.

    Attributes:
        first / second: user names.
        flight: the flight both users request (a hard constraint, which is
            what lets the quantum database partition per flight).
    """

    first: str
    second: str
    flight: int

    def members(self) -> tuple[str, str]:
        """Both user names."""
        return (self.first, self.second)


@dataclass
class EntangledWorkload:
    """A generated workload: pairs, arrival order and the transaction stream.

    Attributes:
        spec: the flight database the workload was sized for.
        order: the arrival order used.
        pairs: all coordination pairs.
        transactions: the entangled resource transactions in arrival order.
    """

    spec: FlightDatabaseSpec
    order: ArrivalOrder
    pairs: tuple[CoordinationPair, ...]
    transactions: tuple[EntangledResourceTransaction, ...]

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[EntangledResourceTransaction]:
        return iter(self.transactions)

    @property
    def max_possible_coordinations(self) -> int:
        """Users that can possibly end up adjacent to their partner.

        Bounded both by the workload (2 users per pair) and by the seating
        geometry (2 coordinating users per row).
        """
        return min(2 * len(self.pairs), self.spec.max_coordinating_users)

    def user_names(self) -> tuple[str, ...]:
        """All user names, in pair order."""
        names: list[str] = []
        for pair in self.pairs:
            names.extend(pair.members())
        return tuple(names)


def make_pairs(
    spec: FlightDatabaseSpec,
    *,
    pairs_per_flight: int | None = None,
    name_prefix: str = "user",
) -> list[CoordinationPair]:
    """Create coordination pairs, assigning each pair a specific flight.

    By default every flight receives as many pairs as it has seats for
    (``seats_per_flight // 2``), so that "upon completion of all
    transactions each user has a seat and all available seats are booked"
    as in the scalability experiment.
    """
    per_flight = (
        pairs_per_flight
        if pairs_per_flight is not None
        else spec.seats_per_flight // 2
    )
    pairs: list[CoordinationPair] = []
    counter = 0
    for flight in spec.flight_numbers():
        for _ in range(per_flight):
            first = f"{name_prefix}{counter}"
            second = f"{name_prefix}{counter + 1}"
            counter += 2
            pairs.append(CoordinationPair(first, second, flight))
    return pairs


def generate_workload(
    spec: FlightDatabaseSpec,
    order: ArrivalOrder,
    *,
    pairs_per_flight: int | None = None,
    seed: int = 0,
    pin_flight: bool = True,
) -> EntangledWorkload:
    """Generate an entangled workload for ``spec`` in the given arrival order.

    Args:
        spec: flight database sizing.
        order: arrival order (Table 1).
        pairs_per_flight: override the default (fill every seat).
        seed: RNG seed for the Random arrival order.
        pin_flight: when True (default) each transaction names its flight
            explicitly — the property that lets the system keep one
            partition per flight; when False users accept any flight.
    """
    pairs = make_pairs(spec, pairs_per_flight=pairs_per_flight)
    users: list[tuple[str, str, int]] = []
    for pair in pairs:
        users.append((pair.first, pair.second, pair.flight))
        users.append((pair.second, pair.first, pair.flight))
    arrivals = order_arrivals(len(pairs), order, rng=random.Random(seed))
    transactions = []
    for index in arrivals:
        client, partner, flight = users[index]
        transactions.append(
            make_adjacent_seat_request(
                client, partner, flight=flight if pin_flight else None
            )
        )
    return EntangledWorkload(
        spec=spec,
        order=order,
        pairs=tuple(pairs),
        transactions=tuple(transactions),
    )
