"""Branch-and-bound grounding search with an undoable trail.

The trail-based sibling of :class:`~repro.solver.grounding.GroundingSearch`
(cf. pracmln's ``FormulaGrounding`` B&B search tree): instead of threading
an immutable substitution through the recursion, one mutable
:class:`~repro.solver.undo.TrailBindings` is grown destructively and
rewound through trail marks on backtrack.  On top of the cheap undo the
searcher adds two *sound* structural prunes derived from the partition's
remaining parts:

* **forward checking** — an unexpanded relational atom whose index lookup
  under the current bindings has no candidate rows can never match later
  (binding more positions only tightens the lookup, and the store is
  immutable during a search), so the whole subtree is dead;
* **required-variable reachability** — a required output variable whose
  walked representative is unbound and unreachable from any remaining
  part's variables can never become ground, so every completion of the
  subtree would fail the final close step anyway.

Both prunes only remove subtrees containing *no* acceptable solution, and
the traversal order (part selection, row enumeration, deferred-negation
protocol) replicates ``GroundingSearch._search`` exactly — so the first
solution found, and with it every admission decision and cached witness,
is bit-identical to plain backtracking.  Only the node count differs:
deterministic propagation (equalities, conjunction splicing, negation
deferral) is folded into its parent, and ``nodes`` counts actual branch
descents, which the ``make searchbench`` benchmark holds to ≤ 0.5x the
backtracking count on the Figure 7 workload.

A ``node_budget`` caps the descent count; exhausting it abandons the
search with ``statistics.exhausted_budget`` set, which admission surfaces
as the typed ``AdmissionSearchExhausted`` outcome.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import FormulaError
from repro.logic.atoms import Atom
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Formula,
    Negation,
    TRUE,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.relational.database import Database
from repro.solver.grounding import (
    GroundingResult,
    GroundingSearch,
    GroundingStatistics,
)
from repro.solver.undo import TrailBindings


class TrailSearch:
    """One branch-and-bound search: a trail, its statistics, its budget.

    Per-search state only (reentrancy mirrors :class:`GroundingSearch`:
    nothing here outlives one :func:`find_one_bnb` call).
    """

    def __init__(
        self,
        database: Database,
        bindings: TrailBindings,
        stats: GroundingStatistics,
        node_budget: int | None,
        required: frozenset[Variable],
        *,
        prune: bool = True,
    ) -> None:
        self.database = database
        self.bindings = bindings
        self.stats = stats
        self.node_budget = node_budget
        self.required = required
        self.prune = prune
        self.exhausted = False

    # -- traversal ----------------------------------------------------------

    def search(
        self, parts: list[Formula], deferred: list[Formula]
    ) -> Iterator[Substitution]:
        """Yield solution snapshots; mirrors ``GroundingSearch._search``.

        Deterministic steps (equalities, conjunction splicing, negation
        deferral, TRUE/FALSE elimination) are folded into a loop instead
        of recursive calls — they expand no alternatives, so they count no
        nodes.  Every binding this frame makes is rewound in the
        ``finally``, so callers never see trail residue.
        """
        bindings = self.bindings
        stats = self.stats
        entry_mark = bindings.trail.mark()
        try:
            while True:
                if self.exhausted:
                    return
                if not parts:
                    if self._check_deferred(deferred):
                        yield bindings.snapshot()
                    return
                index, part = self._select_part(parts)
                rest = parts[:index] + parts[index + 1 :]
                if part is TRUE:
                    parts = rest
                    continue
                if part is FALSE:
                    stats.backtracks += 1
                    return
                if isinstance(part, Conjunction):
                    parts = list(part.parts) + rest
                    continue
                if isinstance(part, Equality):
                    if not bindings.unify(part.left, part.right):
                        stats.backtracks += 1
                        return
                    ok, deferred = self._propagate_deferred(deferred)
                    if not ok:
                        stats.backtracks += 1
                        return
                    parts = rest
                    continue
                if isinstance(part, Negation):
                    decision = self._try_negation(part)
                    if decision is False:
                        stats.backtracks += 1
                        return
                    if decision is None:
                        deferred = deferred + [part]
                    parts = rest
                    continue
                break
            # ``part`` is a choice point: a disjunction or a relational atom.
            if self.prune and self._should_prune([part] + rest):
                return
            if isinstance(part, Disjunction):
                stats.choice_points += 1
                for branch in part.parts:
                    if not self._charge_node():
                        return
                    yield from self.search([branch] + rest, deferred)
                return
            if isinstance(part, AtomFormula):
                stats.choice_points += 1
                yield from self._expand_atom(part.atom, rest, deferred)
                return
            raise FormulaError(f"unsupported formula node {part!r}")
        finally:
            bindings.trail.undo_to(entry_mark)

    def _expand_atom(
        self, atom: Atom, rest: list[Formula], deferred: list[Formula]
    ) -> Iterator[Substitution]:
        """Enumerate matching rows; row order replicates ``_match_atom``."""
        bindings = self.bindings
        stats = self.stats
        if not self.database.has_table(atom.relation):
            return
        table = self.database.table(atom.relation)
        schema = table.schema
        resolved = [bindings.walk(t) for t in atom.terms]
        if len(resolved) != schema.arity:
            raise FormulaError(
                f"atom {atom!r} has arity {len(resolved)}, table "
                f"{schema.name!r} has arity {schema.arity}"
            )
        columns: list[str] = []
        values: list[Any] = []
        for position, term in enumerate(resolved):
            if isinstance(term, Constant):
                columns.append(schema.columns[position].name)
                values.append(term.value)
        rows = table.lookup(columns, values) if columns else table.scan()
        for row in rows:
            stats.rows_examined += 1
            mark = bindings.trail.mark()
            matched = True
            for term, value in zip(resolved, row.values):
                if not bindings.unify(term, Constant(value)):
                    matched = False
                    break
            if not matched:
                bindings.trail.undo_to(mark)
                continue
            ok, still_deferred = self._propagate_deferred(deferred)
            if not ok:
                stats.backtracks += 1
                bindings.trail.undo_to(mark)
                continue
            if not self._charge_node():
                bindings.trail.undo_to(mark)
                return
            yield from self.search(rest, still_deferred)
            bindings.trail.undo_to(mark)

    def _charge_node(self) -> bool:
        """Count one branch descent against the budget."""
        self.stats.nodes += 1
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            self.stats.exhausted_budget = True
            self.exhausted = True
            return False
        return True

    # -- pruning ------------------------------------------------------------

    def _should_prune(self, remaining: list[Formula]) -> bool:
        """True when the subtree rooted here provably contains no solution."""
        stats = self.stats
        for part in remaining[1:]:
            # Forward check: the choice part itself is about to be
            # enumerated (an empty candidate set there costs nothing), but
            # a *later* atom with no candidate rows dooms every branch.
            if isinstance(part, AtomFormula) and not self._has_candidate(part.atom):
                stats.prunes += 1
                return True
        if self.required:
            unreached = self._unreachable_required(remaining)
            if unreached:
                stats.prunes += 1
                return True
        return False

    def _has_candidate(self, atom: Atom) -> bool:
        """Whether any row could still match ``atom`` (conservative).

        Bound positions only tighten as the search descends and the store
        is immutable during a search, so an empty candidate set here is
        empty forever — the monotonicity that makes the prune sound.
        """
        if not self.database.has_table(atom.relation):
            return False
        table = self.database.table(atom.relation)
        schema = table.schema
        if len(atom.terms) != schema.arity:
            # Malformed atom: let the real expansion raise, never prune.
            return True
        columns: list[str] = []
        values: list[Any] = []
        for position, term in enumerate(atom.terms):
            walked = self.bindings.walk(term)
            if isinstance(walked, Constant):
                columns.append(schema.columns[position].name)
                values.append(walked.value)
        rows = table.lookup(columns, values) if columns else table.scan()
        for _row in rows:
            return True
        return False

    def _unreachable_required(self, remaining: list[Formula]) -> set[Variable]:
        """Required variables no remaining part can ever bind.

        A variable binds only when a unification walks into its chain's
        representative; the representatives reachable from the remaining
        parts' free variables are therefore the only ones that can still
        change.  (Deferred negations never bind anything.)
        """
        walk = self.bindings.walk
        unbound: set[Variable] = set()
        for var in self.required:
            walked = walk(var)
            if isinstance(walked, Variable):
                unbound.add(walked)
        if not unbound:
            return unbound
        for part in remaining:
            for var in part.free_variables():
                walked = walk(var)
                if isinstance(walked, Variable):
                    unbound.discard(walked)
                    if not unbound:
                        return unbound
        return unbound

    # -- negations ----------------------------------------------------------

    def _try_negation(self, part: Negation) -> bool | None:
        """Evaluate a negation if its variables are all bound, else None."""
        valuation = self.bindings.valuation()
        if not all(var.name in valuation for var in part.free_variables()):
            return None
        try:
            return part.evaluate(valuation, self._oracle)
        except FormulaError:
            return None

    def _propagate_deferred(
        self, deferred: list[Formula]
    ) -> tuple[bool, list[Formula]]:
        """Re-check deferred negations after the bindings grew."""
        if not deferred:
            return True, deferred
        remaining: list[Formula] = []
        for part in deferred:
            decision = self._try_negation(part)  # type: ignore[arg-type]
            if decision is False:
                return False, deferred
            if decision is None:
                remaining.append(part)
        return True, remaining

    def _check_deferred(self, deferred: list[Formula]) -> bool:
        """Evaluate deferred negations once the bindings are final."""
        if not deferred:
            return True
        valuation = self.bindings.valuation()
        for part in deferred:
            try:
                if not part.evaluate(valuation, self._oracle):
                    return False
            except FormulaError:
                return False
        return True

    def _oracle(self, relation: str, values: tuple[Any, ...]) -> bool:
        if not self.database.has_table(relation):
            return False
        table = self.database.table(relation)
        columns = list(table.schema.column_names)
        for _row in table.lookup(columns, list(values)):
            return True
        return False

    # -- part selection ------------------------------------------------------

    def _select_part(self, parts: list[Formula]) -> tuple[int, Formula]:
        """Replicates ``GroundingSearch._select_part`` under the trail."""
        best_atom: tuple[int, int] | None = None
        best_atom_index = -1
        first_disjunction = -1
        walk = self.bindings.walk
        for index, part in enumerate(parts):
            if isinstance(part, (Equality, Negation, Conjunction)) or part in (
                TRUE,
                FALSE,
            ):
                return index, part
            if isinstance(part, AtomFormula):
                bound = sum(
                    1 for term in part.atom.terms if isinstance(walk(term), Constant)
                )
                score = (bound, -index)
                if best_atom is None or score > best_atom:
                    best_atom = score
                    best_atom_index = index
            elif isinstance(part, Disjunction) and first_disjunction < 0:
                first_disjunction = index
        if best_atom_index >= 0:
            return best_atom_index, parts[best_atom_index]
        if first_disjunction >= 0:
            return first_disjunction, parts[first_disjunction]
        return 0, parts[0]


def find_one_bnb(
    search: GroundingSearch,
    formula: Formula,
    *,
    required: frozenset[Variable] | None = None,
    initial: Substitution | None = None,
    node_budget: int | None = None,
) -> GroundingResult:
    """Find one grounding by branch-and-bound; drop-in for ``find_one``.

    Identical contract to ``GroundingSearch.find_one`` (same first
    solution, same close semantics), with the work folded into
    ``search``'s shared totals and observer exactly as an inline search
    would be.
    """
    simplified = formula.simplify()
    stats = GroundingStatistics()
    if simplified is FALSE:
        # Mirrors ``find``: a trivially false body never starts a search.
        return GroundingResult(Substitution.empty(), False, stats)
    required_vars = (
        frozenset(required) if required is not None else simplified.free_variables()
    )
    bindings = TrailBindings(initial)
    engine = TrailSearch(
        search.database, bindings, stats, node_budget, required_vars
    )
    found: GroundingResult | None = None
    solutions = engine.search([simplified], [])
    try:
        for snapshot in solutions:
            grounded = search._close(snapshot, required_vars)
            if grounded is None:
                continue
            found = GroundingResult(grounded, True, stats)
            break
    finally:
        solutions.close()
        stats.undo_depth = max(stats.undo_depth, bindings.trail.max_depth)
        search.absorb_statistics(stats, formula=simplified, count_search=True)
    if found is not None:
        return found
    return GroundingResult(Substitution.empty(), False, stats)
