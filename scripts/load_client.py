#!/usr/bin/env python
"""Closed-loop TCP load generator for the quantum database network server.

Simulates the paper's front-end: thousands of concurrent clients, each one
user of the Figure 7 entangled seat-booking workload, connecting over real
sockets and submitting its booking as soon as the connection is up
(closed-loop: every client has at most one request in flight).  Records
per-commit latency and reports p50/p95/p99 alongside end-to-end throughput.

By default the server is spawned in-process (loopback TCP, one event
loop — the same topology the network benchmark gates); pass ``--host`` and
``--port`` to aim the load at an externally running ``repro.server.net``
instead.

Examples::

    # 1000 concurrent clients against an in-process server
    PYTHONPATH=src python scripts/load_client.py --clients 1000

    # smoke scale, machine-readable output
    PYTHONPATH=src python scripts/load_client.py --clients 64 --json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script-friendly imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    NetClient,
    NetConfig,
    NetworkServer,
    QuantumConfig,
    QuantumDatabase,
    format_transaction,
)
from repro.workloads.arrival_orders import ArrivalOrder  # noqa: E402
from repro.workloads.entangled_workload import generate_workload  # noqa: E402
from repro.workloads.flights import (  # noqa: E402
    FlightDatabaseSpec,
    build_flight_database,
)

#: Seats per flight in the generated database: four seats, two coordination
#: pairs — every client books exactly one seat, so flights = clients / 4.
SEATS_PER_FLIGHT = 4

#: Connections are opened in waves of this size so a burst of thousands of
#: SYNs does not overflow the listen backlog.
CONNECT_WAVE = 64


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def spec_for_clients(clients: int) -> FlightDatabaseSpec:
    """A flight database sized so every simulated client can book one seat."""
    flights = max(1, (clients + SEATS_PER_FLIGHT - 1) // SEATS_PER_FLIGHT)
    return FlightDatabaseSpec(
        num_flights=flights, rows_per_flight=SEATS_PER_FLIGHT
    )


async def run_load(
    clients: int,
    *,
    seed: int = 0,
    k: int = 4,
    host: str | None = None,
    port: int | None = None,
    tenant: str | None = None,
    ground: bool = True,
) -> dict:
    """Drive ``clients`` concurrent TCP clients; return the measurements.

    Every client opens its own connection, submits one entangled booking
    (its user's transaction from the seeded Figure 7 stream), measures the
    commit round trip, and disconnects.  When ``host`` is None an
    in-process :class:`NetworkServer` is started on loopback and drained
    afterwards; otherwise the load goes to the external server (which is
    expected to already hold the matching flight database).
    """
    spec = spec_for_clients(clients)
    workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    transactions = list(workload.transactions)[:clients]

    net = None
    qdb = None
    if host is None:
        qdb = QuantumDatabase(build_flight_database(spec), QuantumConfig(k=k))
        net = await NetworkServer(qdb, NetConfig()).start()
        host, port = "127.0.0.1", net.port
    assert port is not None, "--port is required with --host"

    latencies_s: list[float] = []
    decisions: list[bool] = []
    lock = asyncio.Lock()

    async def one_client(transaction) -> None:
        client = await NetClient.connect(
            host, port, client=transaction.client, tenant=tenant
        )
        try:
            begin = time.perf_counter()
            result = await client.commit(
                format_transaction(transaction),
                client=transaction.client,
                partner=transaction.partner,
            )
            elapsed = time.perf_counter() - begin
            async with lock:
                latencies_s.append(elapsed)
                decisions.append(result.committed)
        finally:
            await client.close()

    start = time.perf_counter()
    tasks: list[asyncio.Task] = []
    for wave_start in range(0, len(transactions), CONNECT_WAVE):
        wave = transactions[wave_start : wave_start + CONNECT_WAVE]
        tasks.extend(asyncio.ensure_future(one_client(t)) for t in wave)
        # One scheduling round between waves keeps the SYN burst below the
        # listen backlog while every already-connected client stays active.
        await asyncio.sleep(0)
    errors = [
        r for r in await asyncio.gather(*tasks, return_exceptions=True)
        if isinstance(r, BaseException)
    ]
    elapsed = time.perf_counter() - start

    grounded = 0
    if net is not None:
        if ground and qdb is not None:
            grounded = len(await net.server.ground_all())
        await net.drain()
    if qdb is not None:
        qdb.close()

    ordered = sorted(latencies_s)
    return {
        "clients": clients,
        "transactions": len(transactions),
        "completed": len(latencies_s),
        "errors": len(errors),
        "admitted": sum(decisions),
        "rejected": len(decisions) - sum(decisions),
        "grounded": grounded,
        "elapsed_s": round(elapsed, 4),
        "throughput_txn_per_s": round(len(latencies_s) / elapsed, 1)
        if elapsed > 0
        else 0.0,
        "p50_ms": round(percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
        "workload": {
            "order": "RANDOM",
            "num_flights": spec.num_flights,
            "rows_per_flight": spec.rows_per_flight,
            "seed": seed,
        },
    }


def format_summary(result: dict) -> str:
    return (
        f"{result['clients']} clients | "
        f"{result['completed']}/{result['transactions']} commits "
        f"({result['admitted']} admitted, {result['rejected']} rejected, "
        f"{result['errors']} errors) | "
        f"{result['throughput_txn_per_s']} txn/s over {result['elapsed_s']}s | "
        f"latency ms p50={result['p50_ms']} p95={result['p95_ms']} "
        f"p99={result['p99_ms']} max={result['max_ms']}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients",
        type=int,
        default=1000,
        help="number of concurrent TCP clients (default 1000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--host",
        default=None,
        help="external server host (default: spawn an in-process server)",
    )
    parser.add_argument(
        "--port", type=int, default=None, help="external server port"
    )
    parser.add_argument(
        "--tenant", default=None, help="tenant identity for every client"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error("--clients must be at least 1")
    if (args.host is None) != (args.port is None):
        parser.error("--host and --port must be passed together")

    result = asyncio.run(
        run_load(
            args.clients,
            seed=args.seed,
            host=args.host,
            port=args.port,
            tenant=args.tenant,
        )
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(format_summary(result))
    if result["errors"] or result["completed"] != result["transactions"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
