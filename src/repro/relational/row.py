"""Immutable row representation used throughout the relational engine."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.relational.schema import TableSchema


class Row:
    """An immutable tuple of column values tied to a table schema.

    Rows compare and hash by (table name, values), which is what key
    enforcement and possible-world comparisons need.
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: TableSchema, values: Sequence[Any]) -> None:
        self.schema = schema
        self.values: tuple[Any, ...] = schema.validate_values(values)

    # -- access -------------------------------------------------------------

    def __getitem__(self, column: str | int) -> Any:
        if isinstance(column, int):
            return self.values[column]
        return self.values[self.schema.position(column)]

    def get(self, column: str, default: Any = None) -> Any:
        """Return the value of ``column`` or ``default`` if it is unknown."""
        if not self.schema.has_column(column):
            return default
        return self[column]

    def as_dict(self) -> dict[str, Any]:
        """Return the row as a column-name → value mapping."""
        return dict(zip(self.schema.column_names, self.values))

    @property
    def key(self) -> tuple[Any, ...]:
        """The row's primary-key projection."""
        return self.schema.key_of(self.values)

    @property
    def table_name(self) -> str:
        """Name of the table this row belongs to."""
        return self.schema.name

    def replace(self, **updates: Any) -> "Row":
        """Return a copy of the row with the given columns replaced."""
        data = self.as_dict()
        data.update(updates)
        return Row(self.schema, self.schema.values_from_mapping(data))

    # -- dunder -------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.table_name == other.table_name and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.table_name, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"{self.table_name}({inner})"
