"""Calendar management: deferring meeting slots until they matter.

Reproduces the introduction's second motivating scenario.  Mickey schedules
an offsite with Donald weeks in advance; with a quantum database the
concrete slot stays open.  When a high-priority CEO meeting lands on what
would have been the offsite slot, the write simply succeeds and the offsite
collapses onto another slot at read time — no rescheduling cascade.

The example also cross-checks the grounding the quantum database picks
against an independent CSP formulation of the same placement problem.

Run with::

    python examples/calendar_scheduling.py
"""

from __future__ import annotations

from repro import QuantumConfig, QuantumDatabase
from repro.solver.backtracking import BacktrackingSolver
from repro.workloads.calendar import (
    CalendarSpec,
    build_calendar_database,
    calendar_csp,
    make_meeting_request,
)


def main() -> None:
    spec = CalendarSpec(people=("Mickey", "Donald", "CEO"), days=3, slots_per_day=3)
    database = build_calendar_database(spec)
    qdb = QuantumDatabase(database, QuantumConfig())

    print("== Mickey schedules the offsite with Donald (slot deferred) ==")
    offsite = qdb.execute(make_meeting_request("offsite", "Mickey", "Donald"))
    print(f"committed: {offsite.committed}, slot still open: {offsite.pending}")

    print("\n== A high-priority CEO meeting takes Friday afternoon (day 3, slot 3) ==")
    # The CEO meeting books a *specific* slot for Mickey as a hard constraint.
    ceo = qdb.execute(
        "-FreeSlot('Mickey', 3, 3), -FreeSlot('CEO', 3, 3), "
        "+Meetings('ceo-sync', 'Mickey', 3, 3), +Meetings('ceo-sync', 'CEO', 3, 3) "
        ":-1 FreeSlot('Mickey', 3, 3), FreeSlot('CEO', 3, 3)"
    )
    print(f"CEO meeting committed: {ceo.committed} (no rescheduling of the offsite needed)")

    print("\n== The evening before, everyone reads their schedule ==")
    schedule = qdb.read("Meetings", [None, "Mickey", None, None], select=["_0", "_2", "_3"])
    for row in sorted(schedule, key=lambda r: (r["_2"], r["_3"])):
        print(f"  Mickey: {row['_0']} on day {row['_2']}, slot {row['_3']}")

    offsite_record = qdb.check_in(offsite.transaction_id)
    assert offsite_record is not None
    day, slot = offsite_record.valuation["day"], offsite_record.valuation["slot"]
    print(f"\noffsite landed on day {day}, slot {slot}")
    assert (day, slot) != (3, 3), "the offsite must have avoided the CEO slot"

    print("\n== Cross-check against an independent CSP formulation ==")
    fresh = build_calendar_database(spec, busy=[("Mickey", 3, 3), ("CEO", 3, 3)])
    problem = calendar_csp(fresh, [("offsite", "Mickey", "Donald")])
    solver = BacktrackingSolver()
    solutions = list(solver.solutions(problem))
    assert {"offsite": (day, slot)} in solutions, "quantum grounding must be a CSP solution"
    print(
        f"CSP agrees: ({day}, {slot}) is one of {len(solutions)} feasible placements"
    )


if __name__ == "__main__":
    main()
