"""Fault injection for the network layer: misbehaving peers, dying clients,
SIGTERM mid-commit.

Every failure mode a real deployment sees must map to a *typed*, bounded
reaction — an error frame, a clean disconnect, a drain that leaves the
store and the in-memory pending set in exact agreement — never an
unhandled exception near the writer loop or a wedged server.  The drain
test mirrors ``test_shutdown_sharded.py``'s no-orphans check through the
TCP path.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import struct

import pytest

from repro import (
    NetClient,
    NetConfig,
    NetworkServer,
    QuantumConfig,
    QuantumDatabase,
    ServerConfig,
    serve,
)
from repro.errors import QuantumError, TenantBackpressure
from repro.relational.wal import LogRecordType
from repro.server.client import ConnectionClosed
from repro.server.protocol import HEADER, encode_frame

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def make_qdb(*, flights=6, seats=3, k=16):
    qdb = QuantumDatabase(config=QuantumConfig(k=k))
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, flights + 1) for i in range(seats)],
    )
    return qdb


def booking(user, flight):
    return (
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def run(coroutine, timeout=60):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=timeout))


async def raw_connection(port):
    """A protocol-less TCP connection, for byte-level misbehavior."""
    return await asyncio.open_connection("127.0.0.1", port)


async def read_frame(reader):
    header = await reader.readexactly(HEADER.size)
    (length,) = HEADER.unpack(header)
    return json.loads(await reader.readexactly(length))


# ---------------------------------------------------------------------------
# Protocol violations over a real socket
# ---------------------------------------------------------------------------


class TestProtocolViolations:
    def test_garbage_bytes_get_typed_error_and_clean_close(self):
        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                reader, writer = await raw_connection(net.port)
                payload = b"\xff\xfe this is not a frame"
                writer.write(HEADER.pack(len(payload)) + payload)
                frame = await read_frame(reader)
                assert frame["op"] == "error"
                assert frame["code"] == "frame_corrupt"
                # The server closed its end cleanly afterwards.
                assert await reader.read() == b""
                writer.close()
                # ... and the writer loop survived: a healthy client works.
                client = await NetClient.connect("127.0.0.1", net.port)
                assert (await client.commit(booking("ok", 1))).committed
                await client.close()
                assert net.statistics.protocol_errors == 1

        run(main())

    def test_oversized_length_declaration_rejected_before_buffering(self):
        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                reader, writer = await raw_connection(net.port)
                # Declare 2 GiB; send no body.  The reject must be
                # immediate — nothing waits for the bytes.
                writer.write(HEADER.pack(1 << 31))
                frame = await read_frame(reader)
                assert frame["code"] == "frame_too_large"
                assert await reader.read() == b""
                writer.close()

        run(main())

    def test_response_opcode_from_client_kills_connection(self):
        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                reader, writer = await raw_connection(net.port)
                writer.write(
                    encode_frame({"op": "result", "id": 1, "value": None})
                )
                frame = await read_frame(reader)
                assert frame["code"] == "protocol_error"
                writer.close()
                assert net.statistics.protocol_errors == 1

        run(main())

    def test_malformed_request_fields_answer_typed_error(self):
        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                reader, writer = await raw_connection(net.port)
                # Valid frame, valid opcode, missing required field: the
                # connection survives and answers a typed error.
                writer.write(encode_frame({"op": "commit", "id": 5}))
                frame = await read_frame(reader)
                assert frame["op"] == "error"
                assert frame["id"] == 5
                assert frame["code"] == "protocol_error"
                # Same connection still serves a correct request.
                writer.write(
                    encode_frame(
                        {"op": "commit", "id": 6, "text": booking("ok", 1)}
                    )
                )
                frame = await read_frame(reader)
                assert frame["op"] == "result" and frame["id"] == 6
                assert frame["value"]["committed"] is True
                writer.close()

        run(main())

    def test_parse_error_maps_to_typed_frame(self):
        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                client = await NetClient.connect("127.0.0.1", net.port)
                from repro.errors import ParseError

                with pytest.raises(ParseError):
                    await client.commit("this is not a transaction")
                await client.close()

        run(main())


# ---------------------------------------------------------------------------
# Dying clients
# ---------------------------------------------------------------------------


class TestClientDisconnects:
    def test_disconnect_mid_commit_decision_stands(self):
        """A client that sends a commit and vanishes behaves like a
        post-admission cancellation: the decision is made and durable, only
        the acknowledgement is dropped."""

        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                _reader, writer = await raw_connection(net.port)
                writer.write(
                    encode_frame(
                        {"op": "commit", "id": 1, "text": booking("ghost", 1)}
                    )
                )
                await writer.drain()
                writer.close()  # gone before the response can be written
                # The admission still happens: wait (bounded) for the
                # writer to process the orphaned request.
                for _ in range(1000):
                    if qdb.pending_count == 1:
                        break
                    await asyncio.sleep(0.005)
                assert qdb.pending_count == 1
                # ... and it is durable, not just in memory.
                stored = [
                    t.transaction_id for _seq, t in qdb.pending_store.restore()
                ]
                assert len(stored) == 1
                # The grounded booking exists even though nobody is left
                # to hear about it.
                grounded = await net.server.ground_all()
                assert [g.valuation for g in grounded]

        run(main())

    def test_disconnect_with_half_written_frame_is_clean_eof(self):
        """EOF with a partial frame buffered is a normal hangup — no
        protocol error, no log noise, no effect on other connections."""

        async def main():
            qdb = make_qdb()
            async with NetworkServer(qdb) as net:
                _reader, writer = await raw_connection(net.port)
                frame = encode_frame(
                    {"op": "commit", "id": 1, "text": booking("half", 1)}
                )
                writer.write(frame[: len(frame) // 2])
                await writer.drain()
                writer.close()
                for _ in range(1000):
                    if net.statistics.connections_closed == 1:
                        break
                    await asyncio.sleep(0.005)
                assert net.statistics.connections_closed == 1
                assert net.statistics.protocol_errors == 0
                # The half frame was never dispatched.
                assert qdb.pending_count == 0
                assert net.statistics.requests == 0

        run(main())

    def test_slow_reader_is_disconnected_not_buffered_forever(self):
        """A client that requests data but never reads responses trips the
        per-connection write-buffer bound and is dropped — the third rung
        of the backpressure ladder."""

        async def main():
            qdb = make_qdb(flights=40, seats=10)
            # Tiny buffers so the test does not need to move megabytes:
            # the kernel send buffer fills after a few frames, the sender
            # task blocks in drain(), the outbound queue grows past the
            # bound, and `send` aborts the connection.
            config = NetConfig(write_buffer_bytes=4096, sock_sndbuf=2048)
            async with NetworkServer(qdb, config) as net:
                reader, writer = await raw_connection(net.port)
                sock = writer.get_extra_info("socket")
                import socket as socket_module

                sock.setsockopt(
                    socket_module.SOL_SOCKET, socket_module.SO_RCVBUF, 1024
                )
                # Ask for large read results, never read a byte back.
                request = encode_frame(
                    {
                        "op": "read",
                        "id": 1,
                        "request": "Available",
                        "terms": [None, None],
                    }
                )
                for _ in range(200):
                    writer.write(request)
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                    if net.statistics.slow_client_disconnects:
                        break
                    await asyncio.sleep(0)
                for _ in range(1000):
                    if net.statistics.slow_client_disconnects:
                        break
                    await asyncio.sleep(0.005)
                assert net.statistics.slow_client_disconnects == 1
                writer.close()
                # The rest of the server is unaffected.
                client = await NetClient.connect("127.0.0.1", net.port)
                assert await client.ping()
                await client.close()

        run(main())


# ---------------------------------------------------------------------------
# Graceful drain (SIGTERM)
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def test_sigterm_drains_in_flight_commits_without_orphans(self):
        """SIGTERM with commits in flight: the signal handler runs the
        documented drain — in-flight requests complete and are durable, the
        WAL folds into a checkpoint, clients get goodbye frames, and the
        pending store agrees exactly with the in-memory pending set."""

        async def main():
            qdb = make_qdb(flights=8, seats=3)
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            server_task = asyncio.create_task(serve(qdb, ready=ready))
            net = await ready
            clients = [
                await NetClient.connect("127.0.0.1", net.port, client=f"c{i}")
                for i in range(4)
            ]
            in_flight = [
                asyncio.create_task(
                    clients[i % 4].commit(booking(f"u{i}", (i % 8) + 1))
                )
                for i in range(12)
            ]
            await asyncio.sleep(0)  # let the first frames hit the sockets
            os.kill(os.getpid(), signal.SIGTERM)
            await server_task  # serve() returns once the drain completed
            results = await asyncio.gather(*in_flight, return_exceptions=True)
            decided = [r for r in results if not isinstance(r, BaseException)]
            refused = [
                r
                for r in results
                if isinstance(r, (QuantumError, ConnectionClosed))
            ]
            assert len(decided) + len(refused) == 12
            assert decided, "commits in flight at SIGTERM must complete"
            # No orphans in either direction (the shutdown_sharded check,
            # through TCP): durable pending rows == in-memory pending set.
            stored = sorted(
                t.transaction_id for _seq, t in qdb.pending_store.restore()
            )
            in_memory = sorted(
                e.transaction_id for e in qdb.state.pending_transactions()
            )
            assert stored == in_memory
            records = list(qdb.database.wal.records())
            assert records and records[0].record_type is LogRecordType.CHECKPOINT
            # Every client saw the goodbye (unless it raced the close).
            assert any(c.server_said_goodbye for c in clients)
            for client in clients:
                await client.close()
            # New connections are refused after the drain.
            with pytest.raises((ConnectionError, ConnectionClosed, OSError)):
                await NetClient.connect("127.0.0.1", net.port)

        run(main())

    def test_requests_after_drain_start_get_draining_frames(self):
        async def main():
            qdb = make_qdb()
            net = await NetworkServer(qdb).start()
            client = await NetClient.connect("127.0.0.1", net.port)
            assert (await client.commit(booking("early", 1))).committed
            drain = asyncio.create_task(net.drain())
            await asyncio.sleep(0)  # the draining flag is set synchronously
            assert net.draining
            with pytest.raises((QuantumError, ConnectionClosed)) as excinfo:
                await client.commit(booking("late", 2))
            if not isinstance(excinfo.value, ConnectionClosed):
                assert "draining" in str(excinfo.value)
            await drain
            assert qdb.pending_count == 1  # only the early commit landed
            await client.close()

        run(main())

    def test_drain_is_idempotent_and_awaitable_concurrently(self):
        async def main():
            qdb = make_qdb()
            net = await NetworkServer(qdb).start()
            client = await NetClient.connect("127.0.0.1", net.port)
            assert await client.ping()
            await asyncio.gather(net.drain(), net.drain(), net.wait_drained())
            await net.drain()  # after completion: immediate no-op
            await client.close()

        run(main())


# ---------------------------------------------------------------------------
# Tenant backpressure over the wire
# ---------------------------------------------------------------------------


class TestTenantOverWire:
    def test_tenant_backpressure_maps_to_typed_frame(self):
        """The wire contract for the tenant rung: a server-side
        TenantBackpressure arrives client-side as the same typed exception
        (deterministically injected — the race itself is exercised by the
        in-process tests in test_backpressure.py)."""

        async def main():
            qdb = make_qdb()
            async with NetworkServer(
                qdb, server_config=ServerConfig(tenant_quota=8)
            ) as net:
                original = net.server._submit_commit

                async def refuse(parsed, session):
                    raise TenantBackpressure("tenant 'acme' is over quota")

                net.server._submit_commit = refuse
                client = await NetClient.connect(
                    "127.0.0.1", net.port, tenant="acme"
                )
                with pytest.raises(TenantBackpressure) as excinfo:
                    await client.commit(booking("t", 1))
                assert "over quota" in str(excinfo.value)
                # The connection survives backpressure (clients back off
                # and retry on the same socket).
                net.server._submit_commit = original
                assert (await client.commit(booking("t", 1))).committed
                await client.close()

        run(main())

    def test_two_connections_one_tenant_share_the_quota(self):
        """End-to-end: the tenant identity bound by ``hello`` reaches the
        quota accounting — both connections bill the same tenant (their
        sessions carry it), even though each has its own session."""

        async def main():
            qdb = make_qdb()
            async with NetworkServer(
                qdb, server_config=ServerConfig(tenant_quota=1)
            ) as net:
                a = await NetClient.connect("127.0.0.1", net.port, tenant="acme")
                b = await NetClient.connect("127.0.0.1", net.port, tenant="acme")
                sessions = [
                    s
                    for conn in net._connections
                    if (s := conn.session) is not None
                ]
                assert [s.tenant for s in sessions] == ["acme", "acme"]
                # Sequential traffic never trips the quota (slots recycle).
                assert (await a.commit(booking("a", 1))).committed
                assert (await b.commit(booking("b", 2))).committed
                await a.close()
                await b.close()

        run(main())
