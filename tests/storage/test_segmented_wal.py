"""Unit tests for the segmented durability engine.

Covers the mechanics the crash harness (``test_crash_recovery``) builds
on: CRC framing, seal thresholds, the dirty-set algebra behind delta
checkpoints, the base/delta cadence, compaction's drop rule, and the
engine's lifecycle/configuration contract.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import DurabilityError, RecoveryError
from repro.relational.database import Database
from repro.relational.wal import FileWalSink, LogRecordType
from repro.storage import (
    DurabilityConfig,
    SegmentedWriteAheadLog,
    recover,
)
from repro.storage.segment import encode_frame, scan_frames


def make_schema() -> Database:
    database = Database()
    database.create_table("Seats", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Notes", ["id", "note"], key=["id"])
    return database


def make_engine(tmp_path, **overrides) -> tuple[Database, SegmentedWriteAheadLog]:
    directory = str(tmp_path / "segments")
    config = DurabilityConfig(
        mode="segmented",
        directory=directory,
        **{"segment_max_records": 8, "base_interval": 2, **overrides},
    )
    database = make_schema()
    engine = SegmentedWriteAheadLog(directory, config)
    engine.adopt(database.wal)
    database.wal = engine
    return database, engine


class TestFraming:
    def test_roundtrip(self):
        payloads = [b"alpha", b"b" * 300, b""]
        data = b"".join(encode_frame(p) for p in payloads)
        scan = scan_frames(data)
        assert scan.damage is None
        assert scan.payloads == payloads
        assert scan.clean_length == len(data)

    @pytest.mark.parametrize(
        "mangle",
        [
            pytest.param(lambda d: d[:-3], id="truncated-payload"),
            pytest.param(lambda d: d[: len(d) - len(b"x") * 6] , id="mid-frame"),
            pytest.param(lambda d: d + b"\x00\x00", id="partial-header"),
            pytest.param(lambda d: d[:-1] + bytes([d[-1] ^ 0xFF]), id="crc"),
        ],
    )
    def test_damage_stops_at_clean_prefix(self, mangle):
        clean = encode_frame(b"first") + encode_frame(b"second")
        damaged = mangle(clean + encode_frame(b"third-record"))
        scan = scan_frames(damaged)
        assert scan.damage is not None
        # Everything before the damage survives untouched.
        assert scan.payloads[:2] == [b"first", b"second"]
        assert scan.clean_length <= len(damaged)


class TestConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(DurabilityError):
            DurabilityConfig(mode="ring-buffer")

    def test_segmented_requires_directory(self):
        with pytest.raises(DurabilityError):
            DurabilityConfig(mode="segmented")

    def test_legacy_rejects_directory(self, tmp_path):
        with pytest.raises(DurabilityError):
            DurabilityConfig(mode="legacy", directory=str(tmp_path))

    def test_engine_rejects_legacy_config(self, tmp_path):
        with pytest.raises(DurabilityError):
            SegmentedWriteAheadLog(tmp_path / "d", DurabilityConfig(mode="legacy"))


class TestSealing:
    def test_record_threshold_seals(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=5)
        for i in range(10):
            database.insert("Seats", (i, f"s{i}"))
        # 10 inserts = 30 records (BEGIN/INSERT/COMMIT); at 5 records per
        # segment that is at least 5 sealed segments.
        assert engine.statistics.segments_sealed >= 5
        engine.close()

    def test_byte_threshold_seals(self, tmp_path):
        database, engine = make_engine(
            tmp_path, segment_max_records=10_000, segment_max_bytes=512
        )
        for i in range(20):
            database.insert("Notes", (i, "x" * 40))
        assert engine.statistics.segments_sealed >= 2
        engine.close()

    def test_sealed_chain_recovers(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=4)
        for i in range(15):
            database.insert("Seats", (i, f"s{i}"))
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()


class TestDeltaCheckpoints:
    def test_cadence_base_then_deltas(self, tmp_path):
        database, engine = make_engine(tmp_path, base_interval=2)
        assert not engine.wants_delta_checkpoint()  # no base yet
        database.insert("Seats", (1, "a"))
        database.checkpoint()  # base
        assert engine.statistics.checkpoints_base == 1
        for i in range(2):
            database.insert("Seats", (10 + i, "d"))
            assert engine.wants_delta_checkpoint()
            database.checkpoint()
        assert engine.statistics.checkpoints_delta == 2
        # base_interval=2 deltas taken: the next checkpoint is a base again.
        assert not engine.wants_delta_checkpoint()
        database.insert("Seats", (99, "z"))
        database.checkpoint()
        assert engine.statistics.checkpoints_base == 2
        engine.close()

    def test_delta_payload_is_net_churn(self, tmp_path):
        database, engine = make_engine(tmp_path)
        database.insert("Seats", (1, "kept"))
        database.insert("Seats", (2, "doomed"))
        database.checkpoint()  # base
        database.insert("Seats", (3, "new"))  # net insert
        database.delete("Seats", (2, "doomed"))  # net delete
        database.insert("Seats", (4, "transient"))
        database.delete("Seats", (4, "transient"))  # cancels out
        database.insert("Notes", (7, "n"))  # second table
        record = engine.checkpoint_delta()
        assert record.record_type is LogRecordType.CHECKPOINT_DELTA
        assert record.delta == {
            "Seats": {"delete": [(2, "doomed")], "insert": [(3, "new")]},
            "Notes": {"insert": [(7, "n")]},
        }
        engine.close()

    def test_aborted_transaction_never_dirties(self, tmp_path):
        database, engine = make_engine(tmp_path)
        database.insert("Seats", (1, "a"))
        database.checkpoint()
        txn = database.begin()
        txn.insert("Seats", (2, "aborted"))
        txn.abort()
        record = engine.checkpoint_delta()
        assert record.delta == {}
        engine.close()

    def test_delta_requires_base(self, tmp_path):
        _database, engine = make_engine(tmp_path)
        with pytest.raises(DurabilityError):
            engine.checkpoint_delta()
        engine.close()

    def test_delta_checkpoint_skips_snapshot_build(self, tmp_path):
        """Database.checkpoint() must not materialize the store for deltas."""
        database, engine = make_engine(tmp_path, base_interval=100)
        for i in range(10):
            database.insert("Seats", (i, "s"))
        database.checkpoint()  # base
        calls = {"count": 0}
        original = database.snapshot

        def counting_snapshot():
            calls["count"] += 1
            return original()

        database.snapshot = counting_snapshot
        database.insert("Seats", (100, "churn"))
        database.checkpoint()  # delta — proportional to churn
        assert calls["count"] == 0
        assert engine.statistics.checkpoints_delta == 1
        engine.close()

    def test_pause_statistics_split_by_kind(self, tmp_path):
        database, engine = make_engine(tmp_path)
        database.insert("Seats", (1, "a"))
        database.checkpoint()  # base
        database.insert("Seats", (2, "b"))
        database.checkpoint()  # delta
        stats = engine.durability_statistics()
        assert stats["base_pause_ms"] > 0
        assert stats["delta_pause_ms"] > 0
        assert stats["checkpoint_pause_ms"] >= max(
            stats["base_pause_ms"], stats["delta_pause_ms"]
        )
        engine.close()


class TestCompaction:
    def test_reclaims_superseded_segments(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=6)
        for i in range(30):
            database.insert("Seats", (i, f"s{i}"))
        database.checkpoint()  # base supersedes every sealed raw record
        passes = engine.compact_now()
        assert passes > 0
        stats = engine.durability_statistics()
        assert stats["compactions"] > 0
        assert stats["bytes_reclaimed"] > 0
        assert stats["compacted_through_lsn"] == stats["checkpoint_lsn"]
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_keeps_post_checkpoint_records(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=4)
        for i in range(8):
            database.insert("Seats", (i, f"s{i}"))
        database.checkpoint()
        # Post-checkpoint commits land in segments that will seal; they
        # must survive compaction verbatim.
        for i in range(100, 112):
            database.insert("Seats", (i, f"late{i}"))
        engine.compact_now()
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot() == database.snapshot()
        recovered.wal.close()

    def test_noop_without_checkpoint(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=4)
        for i in range(10):
            database.insert("Seats", (i, f"s{i}"))
        assert engine.compact_now() == 0
        assert engine.statistics.bytes_reclaimed == 0
        engine.close()

    def test_background_compactor_lifecycle(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=6)
        compactor = engine.start_compactor()
        assert engine.start_compactor() is compactor  # idempotent
        for i in range(30):
            database.insert("Seats", (i, f"s{i}"))
        database.checkpoint()
        deadline = 200
        while engine.statistics.bytes_reclaimed == 0 and deadline:
            deadline -= 1
            import time

            time.sleep(0.01)
        assert engine.statistics.bytes_reclaimed > 0
        assert compactor.last_error is None
        engine.stop_compactor()
        engine.stop_compactor()  # idempotent
        engine.close()


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        _database, engine = make_engine(tmp_path)
        engine.close()
        engine.close()

    def test_attach_sink_refused(self, tmp_path):
        _database, engine = make_engine(tmp_path)
        with pytest.raises(DurabilityError):
            engine.attach_sink(FileWalSink(tmp_path / "x.wal"))
        engine.close()

    def test_adopt_refuses_nonempty_engine(self, tmp_path):
        database, engine = make_engine(tmp_path)
        database.insert("Seats", (1, "a"))
        other = make_schema()
        with pytest.raises(DurabilityError):
            engine.adopt(other.wal)
        engine.close()

    def test_truncate_restarts_chain(self, tmp_path):
        database, engine = make_engine(tmp_path, segment_max_records=4)
        for i in range(10):
            database.insert("Seats", (i, f"s{i}"))
        engine.truncate()
        assert len(engine) == 0
        database.insert("Seats", (50, "after"))
        engine.close()
        recovered = recover(tmp_path / "segments", make_schema)
        assert recovered.snapshot()["Seats"] == [(50, "after")]
        recovered.wal.close()

    def test_directory_artifacts(self, tmp_path):
        _database, engine = make_engine(tmp_path)
        engine.close()
        names = sorted(os.listdir(tmp_path / "segments"))
        assert "MANIFEST" in names
        assert any(name.endswith(".walseg") for name in names)
        assert "MANIFEST.tmp" not in names


class TestStatisticsReport:
    def test_legacy_report_exposes_sink_flushes(self, tmp_path):
        from repro.core.quantum_database import QuantumDatabase

        database = make_schema()
        sink = FileWalSink(tmp_path / "wal.jsonl")
        database.wal.attach_sink(sink)
        qdb = QuantumDatabase(database)
        database.insert("Seats", (1, "a"))
        qdb.checkpoint()
        report = qdb.statistics_report()
        assert report["durability.mode"] == "legacy"
        assert report["durability.flushes"] >= 1
        assert report["durability.fsyncs"] == 0
        assert report["durability.checkpoint_pause_ms"] > 0

    def test_segmented_report_exposes_engine_counters(self, tmp_path):
        from repro.core.quantum_database import QuantumDatabase

        database, engine = make_engine(tmp_path, segment_max_records=4)
        qdb = QuantumDatabase(database)
        for i in range(10):
            database.insert("Seats", (i, f"s{i}"))
        qdb.checkpoint()
        report = qdb.statistics_report()
        assert report["durability.mode"] == "segmented"
        assert report["durability.segments_sealed"] >= 1
        assert report["durability.checkpoints_base"] == 1
        assert report["durability.flushes"] >= 10
        engine.close()

    def test_fsync_mode_counts_fsyncs(self, tmp_path):
        database, engine = make_engine(tmp_path, fsync=True)
        database.insert("Seats", (1, "a"))
        assert engine.statistics.fsyncs >= 1
        engine.close()


def corrupt_first_sealed_segment(tmp_path, engine) -> str:
    """Flip a payload byte in the oldest sealed segment; returns its name."""
    entry = engine._manifest.segments[0]
    assert entry.sealed
    path = tmp_path / "segments" / entry.name
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    return entry.name


class TestCompactionQuarantine:
    """A corrupt sealed segment must not pin compaction in a retry loop."""

    def test_failing_segment_is_quarantined_after_bounded_attempts(
        self, tmp_path
    ):
        from repro.storage.engine import _COMPACTION_ATTEMPT_LIMIT

        database, engine = make_engine(tmp_path, segment_max_records=6)
        for i in range(30):
            database.insert("Seats", (i, f"s{i}"))
        database.checkpoint()  # every sealed raw segment becomes eligible
        bad_name = corrupt_first_sealed_segment(tmp_path, engine)
        for _ in range(_COMPACTION_ATTEMPT_LIMIT):
            with pytest.raises(RecoveryError):
                engine.compact_now()
        # Quarantined: the damaged segment is out of the candidate set and
        # the rest of the chain still compacts.
        assert engine.compact_now() > 0
        stats = engine.durability_statistics()
        assert stats["compaction_errors"] == _COMPACTION_ATTEMPT_LIMIT
        assert stats["segments_quarantined"] == 1
        assert bad_name in stats["last_compaction_error"]
        assert stats["bytes_reclaimed"] > 0
        engine.close()

    def test_background_compactor_stops_retrying(self, tmp_path):
        import time

        from repro.storage.engine import _COMPACTION_ATTEMPT_LIMIT

        database, engine = make_engine(tmp_path, segment_max_records=6)
        for i in range(30):
            database.insert("Seats", (i, f"s{i}"))
        database.checkpoint()
        corrupt_first_sealed_segment(tmp_path, engine)
        compactor = engine.start_compactor()
        deadline = time.monotonic() + 5.0
        while engine.statistics.compaction_errors < _COMPACTION_ATTEMPT_LIMIT:
            assert time.monotonic() < deadline, "quarantine never happened"
            time.sleep(0.01)
        time.sleep(0.2)  # several wake-ups worth of would-be retries
        assert engine.statistics.compaction_errors == _COMPACTION_ATTEMPT_LIMIT
        assert compactor.last_error is not None
        engine.stop_compactor()
        engine.close()
