"""Generic finite-domain constraint satisfaction problems.

The quantum database's grounding search (:mod:`repro.solver.grounding`)
talks to the relational store directly, but some application scenarios the
paper motivates — calendar scheduling in particular — are naturally
expressed as finite-domain CSPs.  This module provides a small, classical
CSP model: variables with explicit domains and n-ary constraints given as
predicates over a scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import InconsistentProblemError, SolverError

#: A domain is an ordered collection of candidate values.
Domain = tuple[Any, ...]


@dataclass(frozen=True)
class Constraint:
    """An n-ary constraint over a scope of variables.

    Attributes:
        scope: names of the constrained variables, in the order the
            predicate expects them.
        predicate: callable receiving one value per scope variable and
            returning True when the combination is allowed.
        name: optional label used in error messages and explanations.
    """

    scope: tuple[str, ...]
    predicate: Callable[..., bool]
    name: str = ""

    def is_satisfied(self, assignment: Mapping[str, Any]) -> bool:
        """Check the constraint if fully instantiated; True if not yet."""
        if any(var not in assignment for var in self.scope):
            return True
        return bool(self.predicate(*(assignment[var] for var in self.scope)))

    def __repr__(self) -> str:
        label = self.name or "constraint"
        return f"<{label} on {', '.join(self.scope)}>"


class CSP:
    """A finite-domain constraint satisfaction problem."""

    def __init__(self) -> None:
        self.domains: dict[str, Domain] = {}
        self.constraints: list[Constraint] = []
        self._by_variable: dict[str, list[Constraint]] = {}

    # -- construction -------------------------------------------------------

    def add_variable(self, name: str, domain: Iterable[Any]) -> None:
        """Declare a variable with its domain.

        Raises:
            SolverError: if the variable already exists.
            InconsistentProblemError: if the domain is empty.
        """
        if name in self.domains:
            raise SolverError(f"variable {name!r} already declared")
        values = tuple(domain)
        if not values:
            raise InconsistentProblemError(f"variable {name!r} has an empty domain")
        self.domains[name] = values
        self._by_variable.setdefault(name, [])

    def add_constraint(
        self,
        scope: Sequence[str],
        predicate: Callable[..., bool],
        name: str = "",
    ) -> Constraint:
        """Add a constraint over ``scope``.

        Raises:
            SolverError: if a scope variable has not been declared.
        """
        for var in scope:
            if var not in self.domains:
                raise SolverError(f"constraint references unknown variable {var!r}")
        constraint = Constraint(tuple(scope), predicate, name)
        self.constraints.append(constraint)
        for var in scope:
            self._by_variable[var].append(constraint)
        return constraint

    def all_different(self, scope: Sequence[str], name: str = "all_different") -> None:
        """Add pairwise inequality constraints over ``scope``."""
        names = list(scope)
        for i, left in enumerate(names):
            for right in names[i + 1 :]:
                self.add_constraint(
                    (left, right), lambda a, b: a != b, name=f"{name}({left},{right})"
                )

    # -- introspection ------------------------------------------------------

    @property
    def variables(self) -> tuple[str, ...]:
        """Declared variable names, in declaration order."""
        return tuple(self.domains)

    def constraints_on(self, variable: str) -> tuple[Constraint, ...]:
        """Constraints whose scope includes ``variable``."""
        return tuple(self._by_variable.get(variable, ()))

    def neighbors(self, variable: str) -> frozenset[str]:
        """Variables sharing at least one constraint with ``variable``."""
        related: set[str] = set()
        for constraint in self.constraints_on(variable):
            related.update(constraint.scope)
        related.discard(variable)
        return frozenset(related)

    def is_consistent(self, assignment: Mapping[str, Any]) -> bool:
        """True if no fully instantiated constraint is violated."""
        return all(c.is_satisfied(assignment) for c in self.constraints)

    def is_complete(self, assignment: Mapping[str, Any]) -> bool:
        """True if every variable is assigned."""
        return all(var in assignment for var in self.domains)

    def validate_solution(self, assignment: Mapping[str, Any]) -> bool:
        """True if ``assignment`` is complete, in-domain and consistent."""
        if not self.is_complete(assignment):
            return False
        for var, value in assignment.items():
            if var in self.domains and value not in self.domains[var]:
                return False
        return self.is_consistent(assignment)
