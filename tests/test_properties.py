"""Property-based tests (hypothesis) for the core invariants.

Three families of properties:

* unification laws (the mgu really is a unifier, unifiability is symmetric);
* relational-store invariants (key enforcement, snapshot round-trips);
* the central quantum-database equivalence: the intensional machinery
  (composition + satisfiability) agrees with the extensional possible-worlds
  semantics, and every collapse lands in a possible world.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.composition import compose_sequence
from repro.core.parser import format_transaction, parse_transaction
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.resource_transaction import ResourceTransaction
from repro.core.worlds import enumerate_possible_worlds
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.logic.unification import most_general_unifier, unifiable
from repro.relational.database import Database
from repro.solver.grounding import GroundingSearch

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: Terms drawn from a small pool so that unification collisions are common.
terms = st.one_of(
    st.sampled_from([Variable("x"), Variable("y"), Variable("z")]),
    st.sampled_from([Constant(1), Constant(2), Constant("a")]),
)

atoms = st.builds(
    lambda relation, ts: Atom.body(relation, list(ts)),
    st.sampled_from(["R", "S"]),
    st.lists(terms, min_size=1, max_size=3),
)


@st.composite
def seat_transactions(draw):
    """A short sequence of seat-booking transactions over a tiny flight."""
    num_seats = draw(st.integers(min_value=1, max_value=4))
    num_txns = draw(st.integers(min_value=1, max_value=4))
    pinned = draw(st.lists(st.booleans(), min_size=num_txns, max_size=num_txns))
    transactions = []
    for index in range(num_txns):
        if pinned[index]:
            seat = draw(st.integers(min_value=0, max_value=max(num_seats - 1, 0)))
            text = (
                f"-Available(1, 'S{seat}'), +Bookings('u{index}', 1, 'S{seat}') "
                f":-1 Available(1, 'S{seat}')"
            )
        else:
            text = (
                f"-Available(1, ?s), +Bookings('u{index}', 1, ?s) "
                ":-1 Available(1, ?s)"
            )
        transactions.append(parse_transaction(text, client=f"u{index}"))
    return num_seats, transactions


def seat_database(num_seats: int) -> Database:
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
    for index in range(num_seats):
        database.insert("Available", (1, f"S{index}"))
    return database


# ---------------------------------------------------------------------------
# Unification properties
# ---------------------------------------------------------------------------


class TestUnificationProperties:
    @given(atoms, atoms)
    def test_mgu_is_a_unifier(self, left, right):
        theta = most_general_unifier(left, right)
        if theta is not None:
            assert theta.apply_atom(left) == theta.apply_atom(right)

    @given(atoms, atoms)
    def test_unifiability_symmetric(self, left, right):
        assert unifiable(left, right) == unifiable(right, left)

    @given(atoms)
    def test_atom_unifies_with_itself(self, atom):
        assert unifiable(atom, atom)

    @given(atoms, st.sampled_from(["@1", "@2"]))
    def test_renaming_preserves_unifiability_with_ground_atoms(self, atom, suffix):
        ground = Atom.body(atom.relation, [Constant(i) for i in range(atom.arity)])
        assert unifiable(atom, ground) == unifiable(atom.rename_variables(suffix), ground)


# ---------------------------------------------------------------------------
# Relational store properties
# ---------------------------------------------------------------------------


class TestRelationalProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)),
            max_size=25,
        )
    )
    def test_set_semantics(self, pairs):
        """A table behaves exactly like a set keyed on the primary key."""
        database = Database()
        database.create_table("T", ["a", "b"], key=["a", "b"])
        reference: set[tuple[int, int]] = set()
        for pair in pairs:
            if pair in reference:
                try:
                    database.insert("T", pair)
                    assert False, "duplicate key accepted"
                except Exception:
                    pass
            else:
                database.insert("T", pair)
                reference.add(pair)
        assert set(database.table("T").snapshot()) == reference

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.text("ab", min_size=1, max_size=2)),
            max_size=15,
            unique=True,
        )
    )
    def test_snapshot_roundtrip(self, rows):
        database = Database()
        database.create_table("T", ["a", "b"], key=["a", "b"])
        for row in rows:
            database.insert("T", row)
        snapshot = database.snapshot()
        clone = Database()
        clone.create_table("T", ["a", "b"], key=["a", "b"])
        clone.restore(snapshot)
        assert set(clone.table("T").snapshot()) == set(rows)


# ---------------------------------------------------------------------------
# Quantum database ≡ possible worlds
# ---------------------------------------------------------------------------


class TestQuantumEquivalenceProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40)
    @given(seat_transactions())
    def test_composition_satisfiability_matches_possible_worlds(self, case):
        """The quantum invariant ⇔ a non-empty set of possible worlds."""
        num_seats, transactions = case
        database = seat_database(num_seats)
        composed = compose_sequence(transactions, rename=True)
        intensional = GroundingSearch(database).exists(composed)
        extensional = bool(enumerate_possible_worlds(database, transactions))
        assert intensional == extensional

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40)
    @given(seat_transactions())
    def test_admission_matches_possible_worlds_prefix(self, case):
        """The system admits exactly the prefix that keeps worlds non-empty."""
        num_seats, transactions = case
        qdb = QuantumDatabase(seat_database(num_seats), QuantumConfig())
        admitted: list[ResourceTransaction] = []
        for transaction in transactions:
            expected = bool(
                enumerate_possible_worlds(seat_database(num_seats), admitted + [transaction])
            )
            outcome = qdb.execute(transaction)
            assert outcome.committed == expected
            if outcome.committed:
                admitted.append(transaction)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30)
    @given(seat_transactions())
    def test_collapse_lands_in_a_possible_world(self, case):
        """ground_all() produces one of the enumerated possible worlds."""
        num_seats, transactions = case
        qdb = QuantumDatabase(seat_database(num_seats), QuantumConfig())
        admitted = [t for t in transactions if qdb.execute(t).committed]
        qdb.ground_all()
        final_bookings = set(qdb.table("Bookings").snapshot())
        worlds = enumerate_possible_worlds(seat_database(num_seats), admitted)
        if not admitted:
            assert final_bookings == set()
            return
        possible_bookings = [set(world.table("Bookings")) for world in worlds]
        assert final_bookings in possible_bookings

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30)
    @given(seat_transactions())
    def test_committed_transactions_always_get_their_resource(self, case):
        """Every committed transaction ends up with a booked seat (the paper's guarantee)."""
        num_seats, transactions = case
        qdb = QuantumDatabase(seat_database(num_seats), QuantumConfig())
        committed = [t for t in transactions if qdb.execute(t).committed]
        qdb.ground_all()
        booked_clients = {p for p, _f, _s in qdb.table("Bookings").snapshot()}
        assert {t.client for t in committed} <= booked_clients
        # And never more bookings than seats (keys enforce physical capacity).
        assert len(qdb.table("Bookings")) <= num_seats


class TestParserProperties:
    @settings(max_examples=60)
    @given(seat_transactions())
    def test_format_parse_roundtrip(self, case):
        _seats, transactions = case
        for transaction in transactions:
            reparsed = parse_transaction(format_transaction(transaction))
            assert reparsed.body == transaction.body
            assert reparsed.updates == transaction.updates
