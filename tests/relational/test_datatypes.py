"""Tests for the value domain (DataType validation and literal coercion)."""

from __future__ import annotations

import pytest

from repro.errors import TypeMismatchError
from repro.relational.datatypes import DataType, coerce_literal


class TestDataTypeValidation:
    def test_integer_accepts_int(self):
        assert DataType.INTEGER.validate(5) == 5

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate("5")

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate(True)

    def test_float_coerces_int(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_text_accepts_string(self):
        assert DataType.TEXT.validate("seat 5A") == "seat 5A"

    def test_text_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            DataType.TEXT.validate(12)

    def test_boolean_strict(self):
        assert DataType.BOOLEAN.validate(True) is True
        with pytest.raises(TypeMismatchError):
            DataType.BOOLEAN.validate(1)

    def test_null_always_accepted(self):
        for datatype in DataType:
            assert datatype.validate(None) is None

    def test_any_accepts_scalars(self):
        for value in (1, 2.5, "x", False):
            assert DataType.ANY.validate(value) == value

    def test_any_rejects_containers(self):
        with pytest.raises(TypeMismatchError):
            DataType.ANY.validate([1, 2])

    def test_error_message_names_column(self):
        with pytest.raises(TypeMismatchError, match="seat"):
            DataType.INTEGER.validate("x", column="seat")


class TestInfer:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (True, DataType.BOOLEAN),
            (7, DataType.INTEGER),
            (7.5, DataType.FLOAT),
            ("abc", DataType.TEXT),
            (None, DataType.ANY),
        ],
    )
    def test_infer(self, value, expected):
        assert DataType.infer(value) is expected


class TestCoerceLiteral:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("'Mickey'", "Mickey"),
            ('"5A"', "5A"),
            ("42", 42),
            ("-3", -3),
            ("3.5", 3.5),
            ("true", True),
            ("False", False),
            ("null", None),
            ("Mickey", "Mickey"),
        ],
    )
    def test_coercion(self, text, expected):
        assert coerce_literal(text) == expected
