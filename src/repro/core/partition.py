"""Partitioning of pending transactions into independent sets.

The prototype "partitions the resource transactions ... into independent
sets and maintains a separate composed transaction body for each set"
(Section 4, Quantum State).  Two transactions are independent when no atom
of one unifies with an atom of the other — e.g. bookings on different,
explicitly specified flights.  The partitioning is dynamic: a new
transaction that unifies with members of several partitions forces those
partitions to be merged (the window-or-aisle example of the paper).

This module defines :class:`Partition` — an ordered set of pending
transactions with its composed body and cached solution — and
:class:`PartitionManager`, which owns all partitions and implements the
merge-on-overlap logic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.core.composition import IncrementalComposition, compose_sequence
from repro.errors import QuantumStateError
from repro.logic.atoms import Atom
from repro.logic.formula import Formula
from repro.logic.substitution import Substitution
from repro.logic.unification import unifiable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.quantum_state import PendingTransaction

#: Monotone counter for partition identifiers.
_partition_counter = itertools.count(1)


class Partition:
    """An independent set of pending transactions.

    Attributes:
        partition_id: unique identifier (survives merges on the surviving
            partition).
        pending: pending transactions in serialization order.
        cached_solution: a ground substitution satisfying the composed hard
            body over the current extensional database, or ``None`` when it
            must be recomputed.
    """

    def __init__(self, pending: Iterable["PendingTransaction"] = ()) -> None:
        self.partition_id = next(_partition_counter)
        self._pending: list["PendingTransaction"] = list(pending)
        self.cached_solution: Substitution | None = None
        #: Incrementally maintained composed body (hard atoms only); rebuilt
        #: lazily after structural changes (merges, groundings).
        self._composition: IncrementalComposition | None = None
        #: Observer invoked after every structural change to the pending
        #: sequence.  Receives the partition and, for an append, the entry
        #: just added (``None`` for removals and whole-sequence assignment,
        #: which require a full re-scan).  The sharded partition manager uses
        #: this to keep its signature index and pending table current even
        #: though admission and grounding mutate partitions directly.
        self.on_structural_change: (
            Callable[["Partition", "PendingTransaction | None"], None] | None
        ) = None
        #: Shard currently owning this partition (``None`` when unsharded or
        #: unowned).  Maintained by :meth:`repro.sharding.shard.Shard.own` /
        #: ``disown``; the lane-parallel admission pipeline asserts against
        #: it (:meth:`assert_owned_by`) so a routing bug that would let two
        #: lane writers mutate the same partition fails loudly instead of
        #: corrupting the pending sequence.
        self.owner_shard_id: int | None = None

    @property
    def pending(self) -> tuple["PendingTransaction", ...]:
        """Pending transactions in serialization order.

        Returned as a tuple: the pending sequence may only change through
        :meth:`append`, :meth:`remove` or whole-sequence assignment, all of
        which keep the cached incremental composition in sync (in-place
        mutation of a shared list would silently bypass that).
        """
        return tuple(self._pending)

    @pending.setter
    def pending(self, entries: Iterable["PendingTransaction"]) -> None:
        self._pending = list(entries)
        self._composition = None
        if self.on_structural_change is not None:
            self.on_structural_change(self, None)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator["PendingTransaction"]:
        return iter(self._pending)

    def transactions(self) -> tuple["PendingTransaction", ...]:
        """Pending transactions in serialization order."""
        return tuple(self._pending)

    def transaction_ids(self) -> tuple[int, ...]:
        """Ids of the pending transactions, in order."""
        return tuple(p.transaction_id for p in self._pending)

    def atoms(self) -> tuple[Atom, ...]:
        """Every atom (body and update) of every pending transaction."""
        collected: list[Atom] = []
        for entry in self._pending:
            collected.extend(entry.renamed.body)
            collected.extend(entry.renamed.updates)
        return tuple(collected)

    def relations(self) -> frozenset[str]:
        """Names of all relations touched by the partition."""
        names: set[str] = set()
        for entry in self._pending:
            names |= entry.renamed.relations()
        return frozenset(names)

    def composition(self) -> IncrementalComposition:
        """The incrementally maintained composition of the hard bodies.

        Built lazily (one pass over the pending list) after structural
        changes; kept up to date factor-by-factor by :meth:`append`, so the
        steady-state admission path never recomposes from scratch.
        """
        if self._composition is None:
            self._composition = IncrementalComposition(
                entry.renamed for entry in self._pending
            )
        return self._composition

    def composed_formula(self, *, include_optional: bool = False) -> Formula:
        """The composed body of the pending transactions (Theorem 3.5)."""
        if include_optional:
            return compose_sequence(
                [entry.renamed for entry in self._pending],
                include_optional=True,
            )
        return self.composition().formula()

    def composed_atom_count(self) -> int:
        """Number of relational atoms in the composed hard body.

        This is the analogue of the number of joins the paper's SQL
        translation would need, which MySQL caps at 61.
        """
        return len(self.composed_formula().atoms())

    def overlaps_atoms(
        self,
        atoms: Iterable[Atom],
        statistics: "PartitionStatistics | None" = None,
    ) -> bool:
        """True if any given atom unifies with any atom of this partition.

        This is the conservative unification-based independence test of the
        paper: transactions that cannot unify anywhere can never interact.

        Args:
            atoms: the probe atoms (body view is taken of both sides).
            statistics: when given, every pairwise unification attempt is
                counted into ``statistics.unification_checks`` — the scan
                work the signature index exists to avoid.
        """
        own = self.atoms()
        for atom in atoms:
            probe = atom.as_body()
            for other in own:
                if statistics is not None:
                    statistics.unification_checks += 1
                if unifiable(probe, other.as_body()):
                    return True
        return False

    # -- mutation ------------------------------------------------------------

    def append(self, entry: "PendingTransaction", factor: Formula | None = None) -> None:
        """Add a pending transaction at the end of the serialization order.

        Args:
            entry: the pending transaction to append.
            factor: its composed-body factor when admission already computed
                it (via ``composition().preview_factor``); passing it keeps
                the incremental composition warm without recomputing the
                rewrite.
        """
        self._pending.append(entry)
        if self._composition is not None:
            self._composition.append(entry.renamed, factor)
        if self.on_structural_change is not None:
            self.on_structural_change(self, entry)

    def remove(self, entry: "PendingTransaction") -> None:
        """Remove a pending transaction (after it has been grounded)."""
        self._pending.remove(entry)
        self._composition = None
        if self.on_structural_change is not None:
            self.on_structural_change(self, None)

    def assert_owned_by(self, shard_id: int) -> None:
        """Assert this partition may be mutated by ``shard_id``'s writer.

        The per-shard admission lanes call this before touching a
        partition: single-shard routing plus the epoch-barrier discipline
        must guarantee that every partition a lane mutates is owned by that
        lane's shard.  A violation is an internal invariant breach (it
        would mean two lane writers could race on one pending sequence),
        so it raises rather than returning a flag.

        Raises:
            QuantumStateError: the partition is owned by a different shard.
        """
        if self.owner_shard_id is not None and self.owner_shard_id != shard_id:
            raise QuantumStateError(
                f"partition #{self.partition_id} is owned by shard "
                f"#{self.owner_shard_id} but was routed to shard #{shard_id}; "
                "the per-shard writer invariant is broken"
            )

    def invalidate_solution(self) -> None:
        """Drop the cached solution (after a write invalidated it)."""
        self.cached_solution = None

    def restrict_solution(self) -> None:
        """Restrict the cached solution to the variables still pending.

        Called after transactions are grounded and removed: the remaining
        part of a consistent grounding for the full sequence is still a
        consistent grounding for the remaining sequence (on the database
        produced by executing the removed prefix), so the cache stays warm.
        """
        if self.cached_solution is None:
            return
        remaining = frozenset().union(
            *(entry.renamed.variables() for entry in self._pending)
        ) if self._pending else frozenset()
        self.cached_solution = self.cached_solution.restrict(remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Partition #{self.partition_id} pending={self.transaction_ids()}>"
        )


@dataclass
class PartitionStatistics:
    """Counters describing partition dynamics (reported by experiments).

    Attributes:
        merges: merge-on-overlap events (two or more partitions combined).
        max_partition_size: largest pending sequence ever observed.
        max_composed_atoms: widest composed body ever observed.
        unification_checks: pairwise ``unifiable`` probes spent in overlap
            scans (``merged_for``, write validation, read routing) — the
            admission-path cost the signature index prefilters away.
        scanned_partitions: partitions whose atoms were exactly scanned by
            an overlap query.
    """

    merges: int = 0
    max_partition_size: int = 0
    max_composed_atoms: int = 0
    unification_checks: int = 0
    scanned_partitions: int = 0


class PartitionManager:
    """Owns all partitions and implements merge-on-overlap admission."""

    def __init__(self) -> None:
        self.partitions: list[Partition] = []
        self.statistics = PartitionStatistics()
        #: Observer invoked with the ids of partitions absorbed by a merge,
        #: right when they leave the manager.  The quantum state uses it to
        #: drop exactly the dead partitions' cached witnesses — a precise,
        #: merge-local cleanup that (unlike a full live-set sweep) stays
        #: correct while per-shard admission lanes create partitions
        #: concurrently.
        self.on_partitions_absorbed: Callable[[Sequence[int]], None] | None = None

    # -- introspection -------------------------------------------------------

    def __iter__(self) -> Iterator[Partition]:
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def pending_count(self) -> int:
        """Total number of pending transactions across partitions."""
        return sum(len(p) for p in self.partitions)

    def find(self, transaction_id: int) -> tuple[Partition, "PendingTransaction"] | None:
        """Locate a pending transaction by id."""
        for partition in self.partitions:
            for entry in partition:
                if entry.transaction_id == transaction_id:
                    return partition, entry
        return None

    def partition_of(self, transaction_id: int) -> Partition | None:
        """The partition containing ``transaction_id``, if any."""
        located = self.find(transaction_id)
        return located[0] if located else None

    # -- admission -----------------------------------------------------------

    def overlapping_partitions(self, atoms: Sequence[Atom]) -> list[Partition]:
        """Partitions whose atoms unify with any of ``atoms``.

        The base implementation is the exhaustive pairwise-unification scan
        of the paper; :class:`~repro.sharding.ShardedPartitionManager`
        overrides it with a signature-index prefilter that scans only the
        candidate partitions (bit-identical results — the index is
        conservative and every candidate is still exactly confirmed).
        """
        self.statistics.scanned_partitions += len(self.partitions)
        return [
            p for p in self.partitions if p.overlaps_atoms(atoms, self.statistics)
        ]

    def merged_for(self, atoms: Sequence[Atom]) -> tuple[Partition, bool]:
        """Return the partition a transaction with ``atoms`` belongs to.

        Overlapping partitions are merged (their pending lists concatenated
        in global arrival order); a fresh empty partition is returned when
        nothing overlaps.  The second element reports whether a merge of two
        or more existing partitions happened.
        """
        overlapping = self.overlapping_partitions(atoms)
        if not overlapping:
            partition = Partition()
            self.partitions.append(partition)
            self._on_partition_created(partition)
            return partition, False
        if len(overlapping) == 1:
            return overlapping[0], False
        merged = overlapping[0]
        absorbed = overlapping[1:]
        entries = [entry for partition in overlapping for entry in partition]
        entries.sort(key=lambda e: e.sequence)
        for other in absorbed:
            self.partitions.remove(other)
        self._on_partitions_merging(merged, absorbed)
        if self.on_partitions_absorbed is not None:
            self.on_partitions_absorbed([p.partition_id for p in absorbed])
        merged.pending = entries
        merged.invalidate_solution()
        self.statistics.merges += 1
        return merged, True

    def drop_if_empty(self, partition: Partition) -> None:
        """Remove ``partition`` from the manager when it has no pending txns."""
        if not partition.pending and partition in self.partitions:
            self.partitions.remove(partition)
            self._on_partition_dropped(partition)

    # -- subclass hooks ------------------------------------------------------

    def _on_partition_created(self, partition: Partition) -> None:
        """Called after a fresh partition joined the manager (no-op here)."""

    def _on_partitions_merging(
        self, merged: Partition, absorbed: Sequence[Partition]
    ) -> None:
        """Called while ``absorbed`` partitions fold into ``merged``.

        Runs after the absorbed partitions left the partition list but
        before the merged pending sequence is assigned (no-op here).
        """

    def _on_partition_dropped(self, partition: Partition) -> None:
        """Called after an emptied partition left the manager (no-op here)."""

    def record_sizes(self) -> None:
        """Update the high-water-mark statistics."""
        for partition in self.partitions:
            size = len(partition)
            if size > self.statistics.max_partition_size:
                self.statistics.max_partition_size = size
            atoms = partition.composed_atom_count()
            if atoms > self.statistics.max_composed_atoms:
                self.statistics.max_composed_atoms = atoms
