"""Reproduction of "Quantum Databases" (Roy, Kot, Koch — CIDR 2013).

A quantum database defers the choices made by transactions until an
application or user forces them by observation: resource transactions
commit without concrete value assignments, the system keeps the set of
possible worlds non-empty through unification-based composition and
satisfiability checks, and reads collapse exactly the uncertainty they
touch.

Admission runs on an *incremental fast path*: each partition's composed
body is maintained factor-by-factor, and a per-partition witness (the last
satisfying substitution together with the extensional rows it grounds on)
lets the system skip re-verifying the composed body entirely until a write
actually touches one of those rows.  ``QuantumDatabase.commit_batch``
submits a sequence of resource transactions with one composition pass per
partition and one durability write for the whole batch;
``QuantumDatabase.cache_statistics`` / ``statistics_report()`` expose the
witness-cache counters (hits, misses, invalidations, fallback searches)
that the benchmarks report.  Set ``QuantumConfig(witness_cache=False)`` to
measure the non-cached path — accept/reject decisions are identical either
way.

The top-level package re-exports the names most applications need; the
subpackages are:

* :mod:`repro.core` — the quantum database middle tier (the paper's
  contribution);
* :mod:`repro.relational` — the extensional store substrate (replacing the
  paper's MySQL);
* :mod:`repro.logic` — terms, atoms, unification and composed-body
  formulas;
* :mod:`repro.solver` — grounding search, CSP and SAT machinery;
* :mod:`repro.baselines` — the paper's "intelligent social" baseline and an
  eager-assignment baseline;
* :mod:`repro.workloads` — flight databases, arrival orders, and the
  entangled / mixed workloads of the evaluation section;
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core.entanglement import (
    EntangledResourceTransaction,
    make_adjacent_seat_request,
)
from repro.core.grounding_policy import GroundingPolicy, GroundingStrategy
from repro.core.parser import format_transaction, parse_transaction
from repro.core.quantum_database import CommitResult, QuantumConfig, QuantumDatabase
from repro.core.reads import ReadMode, ReadRequest
from repro.core.resource_transaction import ResourceTransaction
from repro.core.serializability import SerializabilityMode
from repro.core.solution_cache import SolutionCacheStatistics, Witness
from repro.errors import (
    QuantumError,
    ReproError,
    TransactionRejected,
    WriteRejected,
)
from repro.relational.database import Database
from repro.relational.planner import PlannerConfig

__version__ = "0.1.0"

__all__ = [
    "CommitResult",
    "Database",
    "EntangledResourceTransaction",
    "GroundingPolicy",
    "GroundingStrategy",
    "PlannerConfig",
    "QuantumConfig",
    "QuantumDatabase",
    "QuantumError",
    "ReadMode",
    "ReadRequest",
    "ReproError",
    "ResourceTransaction",
    "SerializabilityMode",
    "SolutionCacheStatistics",
    "TransactionRejected",
    "Witness",
    "WriteRejected",
    "__version__",
    "format_transaction",
    "make_adjacent_seat_request",
    "parse_transaction",
]
