"""Concurrent clients through the asyncio session layer.

Four travellers book seats on two flights at the same time.  Each client
owns a :class:`~repro.server.Session`; the server funnels every commit
through its single-writer admission queue (group-committing concurrent
arrivals) and delivers the eventual seat assignments as awaitable
grounding futures.  See ``docs/architecture.md`` for the design.

Run with::

    PYTHONPATH=src python examples/async_sessions.py
"""

from __future__ import annotations

import asyncio

from repro import QuantumDatabase, QuantumServer, ServerConfig


def build_database() -> QuantumDatabase:
    qdb = QuantumDatabase()
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(flight, f"{row}{letter}") for flight in (123, 456)
         for row in (1, 2) for letter in "AB"],
    )
    return qdb


async def traveller(server: QuantumServer, name: str, flight: int) -> str:
    """One closed-loop client: commit, then await the grounded seat."""
    async with server.session(client=name) as session:
        result = await session.commit(
            f"-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s)"
            f" :-1 Available({flight}, ?s)"
        )
        if not result.committed:
            return f"{name}: rejected ({result.rejection_reason})"
        seat_future = session.on_grounding(result.transaction_id)
        await session.check_in(result.transaction_id)
        record = await seat_future
        return f"{name}: flight {flight} seat {record.valuation['s']}"


async def main() -> None:
    qdb = build_database()
    async with QuantumServer(qdb, ServerConfig()) as server:
        lines = await asyncio.gather(
            traveller(server, "Mickey", 123),
            traveller(server, "Goofy", 123),
            traveller(server, "Donald", 456),
            traveller(server, "Daisy", 456),
        )
        for line in lines:
            print(line)
        report = server.statistics_report()
        print(
            f"group commits: {report['server.commit_runs']} "
            f"(largest {report['server.max_commit_run']}), "
            f"witness hits: {report['cache.witness_hits']}"
        )


if __name__ == "__main__":
    asyncio.run(main())
