"""Reproduction of "Quantum Databases" (Roy, Kot, Koch — CIDR 2013).

A quantum database defers the choices made by transactions until an
application or user forces them by observation: resource transactions
commit without concrete value assignments, the system keeps the set of
possible worlds non-empty through unification-based composition and
satisfiability checks, and reads collapse exactly the uncertainty they
touch.

Admission runs on an *incremental fast path*: each partition's composed
body is maintained factor-by-factor, and a per-partition witness (the last
satisfying substitution together with the extensional rows it grounds on)
lets the system skip re-verifying the composed body entirely until a write
actually touches one of those rows.  ``QuantumDatabase.commit_batch``
submits a sequence of resource transactions with one composition pass per
partition and one durability write for the whole batch;
``QuantumDatabase.cache_statistics`` / ``statistics_report()`` expose the
witness-cache counters (hits, misses, invalidations, fallback searches)
that the benchmarks report.  Set ``QuantumConfig(witness_cache=False)`` to
measure the non-cached path — accept/reject decisions are identical either
way.

Concurrent clients are served by the asyncio session layer
(:mod:`repro.server`): a :class:`~repro.server.QuantumServer` funnels every
mutation through a single-writer admission queue (group-committing
concurrent arrivals, so decisions are identical to the synchronous path in
the same arrival order), each client gets a :class:`~repro.server.Session`
with its own transaction stream and statistics, and grounding results are
delivered as awaitable futures (``session.on_grounding(...)``).  Graceful
shutdown drains the queue, flushes the WAL and folds it into a snapshot
checkpoint so crash recovery stays bounded.

The two synchronous entry points applications start from:

* :class:`QuantumConfig` — ``k`` (pending bound per partition),
  ``strategy`` (forced-grounding victim order), ``serializability``
  (STRICT/SEMANTIC), ``read_mode`` (COLLAPSE/PEEK/EXPOSE_ALL),
  ``ground_on_partner_arrival``, ``witness_cache`` (the fast-path
  toggle; decisions are identical either way) and ``search`` (the
  :class:`AdmissionSearchConfig` strategy selector — backtracking,
  branch-and-bound with per-shape fast paths, or opt-in sampling;
  every config type is also re-exported from :mod:`repro.configs`)::

      qdb = QuantumDatabase(config=QuantumConfig(k=8, witness_cache=True))

* :meth:`QuantumDatabase.statistics_report` — every counter the system
  maintains, flattened to ``section.counter`` keys (``state.admitted``,
  ``cache.witness_hits``, ``search.nodes``, ...); the server variant
  :meth:`~repro.server.QuantumServer.statistics_report` adds a
  ``server.*`` section (queue depth, group-commit sizes, cancellations)::

      report = qdb.statistics_report()
      report["cache.witness_hits"]   # fast-path admissions

The top-level package re-exports the names most applications need; the
subpackages are:

* :mod:`repro.core` — the quantum database middle tier (the paper's
  contribution);
* :mod:`repro.server` — the asyncio session layer for concurrent clients;
* :mod:`repro.sharding` — sharded partition execution: the signature-based
  routing index (``QuantumConfig(shards=N)``), worker shards and the
  cross-shard merge path;
* :mod:`repro.relational` — the extensional store substrate (replacing the
  paper's MySQL), including the WAL with group commit and checkpoints;
* :mod:`repro.logic` — terms, atoms, unification and composed-body
  formulas;
* :mod:`repro.solver` — grounding search, CSP and SAT machinery;
* :mod:`repro.baselines` — the paper's "intelligent social" baseline and an
  eager-assignment baseline;
* :mod:`repro.workloads` — flight databases, arrival orders, and the
  entangled / mixed workloads of the evaluation section;
* :mod:`repro.experiments` — harnesses regenerating every table and figure.

See the repository ``README.md`` for a quickstart and
``docs/architecture.md`` for the admission flow and session model.
"""

from repro.core.entanglement import (
    EntangledResourceTransaction,
    make_adjacent_seat_request,
)
from repro.core.grounding_policy import GroundingPolicy, GroundingStrategy
from repro.core.parser import format_transaction, parse_transaction
from repro.core.quantum_database import CommitResult, QuantumConfig, QuantumDatabase
from repro.core.reads import ReadMode, ReadRequest
from repro.core.resource_transaction import ResourceTransaction
from repro.core.serializability import SerializabilityMode
from repro.core.solution_cache import SolutionCacheStatistics, Witness
from repro.errors import (
    GroundingTimeout,
    ProtocolError,
    QuantumError,
    ReproError,
    SessionBackpressure,
    TenantBackpressure,
    TransactionRejected,
    WriteRejected,
)
from repro.relational.database import Database
from repro.relational.planner import PlannerConfig
from repro.relational.wal import FileWalSink, WriteAheadLog
from repro.server import (
    AdmissionResult,
    CheckpointPolicy,
    NetClient,
    NetConfig,
    NetworkServer,
    QuantumServer,
    ServerConfig,
    Session,
    SessionStatistics,
    serve,
)
from repro.sharding import (
    Shard,
    ShardBackend,
    ShardedPartitionManager,
    SignatureIndex,
)
from repro.solver.strategy import AdmissionSearchConfig, SamplingConfig
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog

__version__ = "0.2.0"

__all__ = [
    "AdmissionResult",
    "AdmissionSearchConfig",
    "CheckpointPolicy",
    "CommitResult",
    "Database",
    "DurabilityConfig",
    "EntangledResourceTransaction",
    "FileWalSink",
    "GroundingPolicy",
    "GroundingStrategy",
    "GroundingTimeout",
    "NetClient",
    "NetConfig",
    "NetworkServer",
    "PlannerConfig",
    "ProtocolError",
    "QuantumConfig",
    "QuantumDatabase",
    "QuantumError",
    "QuantumServer",
    "ReadMode",
    "ReadRequest",
    "ReproError",
    "ResourceTransaction",
    "SamplingConfig",
    "SegmentedWriteAheadLog",
    "SerializabilityMode",
    "ServerConfig",
    "Session",
    "SessionBackpressure",
    "SessionStatistics",
    "Shard",
    "ShardBackend",
    "ShardedPartitionManager",
    "SignatureIndex",
    "SolutionCacheStatistics",
    "TenantBackpressure",
    "TransactionRejected",
    "Witness",
    "WriteAheadLog",
    "WriteRejected",
    "__version__",
    "format_transaction",
    "make_adjacent_seat_request",
    "parse_transaction",
    "serve",
]
