"""Secondary hash indexes over tables.

The quantum database's satisfiability checks translate into many-way joins
over the ``Available``, ``Bookings`` and ``Adjacent`` relations.  The paper's
prototype relies on MySQL indexes ("appropriate indices are defined for each
relation"); our substitute is a straightforward hash index keyed on one or
more columns, maintained incrementally by :class:`~repro.relational.table.Table`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relational.row import Row
from repro.relational.schema import TableSchema


class HashIndex:
    """An equality index on one or more columns of a table.

    Args:
        schema: schema of the indexed table.
        columns: the indexed column names, in order.
        unique: when True, at most one row may exist per key (used to back
            primary keys).
    """

    def __init__(
        self, schema: TableSchema, columns: Sequence[str], *, unique: bool = False
    ) -> None:
        if not columns:
            raise SchemaError("an index needs at least one column")
        self.schema = schema
        self.columns: tuple[str, ...] = tuple(columns)
        self.positions: tuple[int, ...] = tuple(schema.position(c) for c in columns)
        self.unique = unique
        # Buckets are insertion-ordered (dict-as-ordered-set) so that lookup
        # order — and therefore every LIMIT 1 query and grounding-search
        # choice built on top of it — is deterministic across processes
        # regardless of PYTHONHASHSEED.
        self._buckets: dict[tuple[Any, ...], dict[Row, None]] = {}

    @property
    def name(self) -> str:
        """Human readable index name (table + columns)."""
        return f"{self.schema.name}({', '.join(self.columns)})"

    def key_for(self, row: Row) -> tuple[Any, ...]:
        """Project ``row`` onto the indexed columns."""
        return tuple(row.values[p] for p in self.positions)

    # -- maintenance --------------------------------------------------------

    def add(self, row: Row) -> None:
        """Register ``row`` with the index."""
        key = self.key_for(row)
        bucket = self._buckets.setdefault(key, {})
        if self.unique and bucket and row not in bucket:
            raise SchemaError(
                f"unique index {self.name} already contains key {key!r}"
            )
        bucket[row] = None

    def remove(self, row: Row) -> None:
        """Remove ``row`` from the index (no-op if absent)."""
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.pop(row, None)
        if not bucket:
            del self._buckets[key]

    def clear(self) -> None:
        """Drop all entries."""
        self._buckets.clear()

    def rebuild(self, rows: Iterable[Row]) -> None:
        """Rebuild the index from scratch over ``rows``."""
        self.clear()
        for row in rows:
            self.add(row)

    # -- lookup -------------------------------------------------------------

    def lookup(self, key: Sequence[Any]) -> Iterator[Row]:
        """Yield all rows whose indexed columns equal ``key``."""
        yield from self._buckets.get(tuple(key), ())

    def contains_key(self, key: Sequence[Any]) -> bool:
        """True if any row has the given indexed-column values."""
        return tuple(key) in self._buckets

    def count(self, key: Sequence[Any]) -> int:
        """Number of rows stored under ``key``."""
        return len(self._buckets.get(tuple(key), ()))

    def covers(self, columns: Iterable[str]) -> bool:
        """True if this index's columns are a subset of ``columns``.

        The planner uses this to decide whether an index lookup can serve a
        given set of bound columns.
        """
        return set(self.columns) <= set(columns)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unique " if self.unique else ""
        return f"<{kind}HashIndex {self.name} entries={len(self)}>"
