"""Exit-code coverage for ``scripts/bench_gate.py``.

The gate is the last line of defence for the paper's Figure 7 scalability
claim, and it was once silently disarmed: a ``"default"``-scale baseline
made every CI comparison "skip" with exit 0.  These tests pin down the
re-armed semantics — mismatched baselines *fail*, a missing normalization
anchor *fails*, and ``--require-points`` rejects the nothing-was-compared
outcome — by driving ``main()`` directly with synthetic benchmark files.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "scripts" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_gate", bench_gate)
_SPEC.loader.exec_module(bench_gate)

WORKLOAD = {"num_flights": 10, "transactions": 120}


def point(
    shards: int,
    backend: str,
    lanes: bool,
    txn_per_s: float,
    *,
    admitted: int = 100,
    rejected: int = 20,
) -> dict:
    return {
        "shards": shards,
        "backend": backend,
        "lanes": lanes,
        "transactions": admitted + rejected,
        "admitted": admitted,
        "rejected": rejected,
        "admission_txn_per_s": txn_per_s,
    }


def payload(
    points: list[dict], *, scale: str = "smoke", workload: dict | None = None
) -> dict:
    return {
        "scale": scale,
        "workload": dict(WORKLOAD if workload is None else workload),
        "results": points,
    }


def standard_points(anchor: float = 100.0, sharded: float = 200.0) -> list[dict]:
    return [
        point(1, "unsharded", False, anchor),
        point(4, "thread", False, sharded),
        point(4, "thread", True, sharded * 1.1),
    ]


def write(tmp_path: Path, name: str, data: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def run_gate(tmp_path: Path, fresh: dict, baseline: dict, *extra: str) -> int:
    return bench_gate.main(
        [
            "--fresh",
            write(tmp_path, "fresh.json", fresh),
            "--baseline",
            write(tmp_path, "baseline.json", baseline),
            *extra,
        ]
    )


def test_clean_comparison_exits_zero(tmp_path, capsys):
    assert run_gate(tmp_path, payload(standard_points()), payload(standard_points())) == 0
    assert "OK (3 admission points" in capsys.readouterr().out


def test_scale_mismatch_fails(tmp_path, capsys):
    fresh = payload(standard_points())
    baseline = payload(standard_points(), scale="default")
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "scale mismatch" in capsys.readouterr().out


def test_workload_mismatch_fails(tmp_path, capsys):
    fresh = payload(standard_points())
    baseline = payload(
        standard_points(), workload={"num_flights": 16, "transactions": 192}
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "workload mismatch" in capsys.readouterr().out


def test_decision_divergence_fails(tmp_path, capsys):
    fresh_points = standard_points()
    fresh_points[1] = point(4, "thread", False, 200.0, admitted=99, rejected=21)
    assert run_gate(tmp_path, payload(fresh_points), payload(standard_points())) == 1
    assert "decisions diverged" in capsys.readouterr().out


def test_throughput_drop_beyond_tolerance_fails(tmp_path, capsys):
    # Anchor unchanged, sharded point's normalized throughput drops 50%.
    fresh = payload(standard_points(sharded=100.0))
    baseline = payload(standard_points(sharded=200.0))
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "regressed" in capsys.readouterr().out


def test_throughput_drop_within_tolerance_passes(tmp_path):
    fresh = payload(standard_points(sharded=180.0))
    baseline = payload(standard_points(sharded=200.0))
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_shipped_point_gets_wider_tolerance(tmp_path, capsys):
    # Process-backend lane points pay an IPC hop per admission and are
    # timing-bimodal on small boxes: a 60% drop (far beyond the default
    # 30%) stays within SHIPPED_TOLERANCE and must pass...
    fresh = payload(standard_points() + [point(4, "process", True, 40.0)])
    baseline = payload(standard_points() + [point(4, "process", True, 100.0)])
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "OK (4 admission points" in capsys.readouterr().out
    # ...while an order-of-magnitude collapse still fails.
    collapsed = payload(standard_points() + [point(4, "process", True, 10.0)])
    assert run_gate(tmp_path, collapsed, baseline) == 1
    assert "regressed" in capsys.readouterr().out


def test_shipped_point_decisions_still_gate_strictly(tmp_path, capsys):
    # The wider throughput band never loosens decision gating.
    fresh = payload(
        standard_points()
        + [point(4, "process", True, 100.0, admitted=99, rejected=21)]
    )
    baseline = payload(standard_points() + [point(4, "process", True, 100.0)])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "decisions diverged" in capsys.readouterr().out


def test_missing_anchor_fails(tmp_path, capsys):
    without_anchor = payload([point(4, "thread", False, 200.0)])
    assert run_gate(tmp_path, without_anchor, payload(standard_points())) == 1
    assert "anchor" in capsys.readouterr().out

    assert run_gate(tmp_path, payload(standard_points()), without_anchor) == 1


def test_zero_throughput_anchor_fails(tmp_path, capsys):
    broken = payload(
        [point(1, "unsharded", False, 0.0), point(4, "thread", False, 200.0)]
    )
    assert run_gate(tmp_path, payload(standard_points()), broken) == 1
    assert "non-positive" in capsys.readouterr().out


def test_absolute_mode_skips_anchor_check(tmp_path):
    without_anchor = payload([point(4, "thread", False, 200.0)])
    assert run_gate(tmp_path, without_anchor, without_anchor, "--absolute") == 0


def test_no_baseline_exits_zero(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(bench_gate, "load_baseline", lambda explicit: None)
    fresh = write(tmp_path, "fresh.json", payload(standard_points()))
    assert bench_gate.main(["--fresh", fresh]) == 0
    assert "no committed baseline" in capsys.readouterr().out


def test_no_baseline_with_require_points_fails(tmp_path, monkeypatch):
    monkeypatch.setattr(bench_gate, "load_baseline", lambda explicit: None)
    fresh = write(tmp_path, "fresh.json", payload(standard_points()))
    assert bench_gate.main(["--fresh", fresh, "--require-points", "1"]) == 1


def test_missing_fresh_file_fails(tmp_path, capsys):
    assert bench_gate.main(["--fresh", str(tmp_path / "absent.json")]) == 1
    assert "run `make smoke` first" in capsys.readouterr().out


def test_require_points_rejects_disjoint_grids(tmp_path, capsys):
    fresh = payload(
        [point(1, "unsharded", False, 100.0), point(2, "thread", False, 150.0)]
    )
    baseline = payload(
        [point(1, "unsharded", False, 100.0), point(4, "process", False, 150.0)]
    )
    # One shared point (the anchor): --require-points 2 must fail...
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "2") == 1
    assert "--require-points" in capsys.readouterr().out
    # ...while 1 passes.
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "1") == 0


@pytest.mark.parametrize("side", ["fresh", "baseline"])
def test_one_sided_points_never_fail(tmp_path, side, capsys):
    extra = standard_points() + [point(2, "process", True, 150.0)]
    fresh, baseline = (extra, standard_points())
    if side == "baseline":
        fresh, baseline = baseline, fresh
    assert run_gate(tmp_path, payload(fresh), payload(baseline)) == 0
    assert "note —" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Network load points: commit-latency percentiles over TCP
# ---------------------------------------------------------------------------


NET_WORKLOAD = {"order": "RANDOM", "num_flights": 16, "rows_per_flight": 4, "seed": 0}


def net_point(
    clients: int,
    *,
    txn_per_s: float = 300.0,
    p95_ms: float = 20.0,
    admitted: int | None = None,
    rejected: int = 0,
    workload: dict | None = None,
) -> dict:
    admitted = clients if admitted is None else admitted
    return {
        "clients": clients,
        "transactions": admitted + rejected,
        "admitted": admitted,
        "rejected": rejected,
        "throughput_txn_per_s": txn_per_s,
        "p50_ms": p95_ms / 2,
        "p95_ms": p95_ms,
        "p99_ms": p95_ms * 1.5,
        "workload": dict(NET_WORKLOAD if workload is None else workload),
    }


def with_network(base: dict, points: list[dict], *, scale: str = "smoke") -> dict:
    data = dict(base)
    data["network"] = {"scale": scale, "results": points}
    return data


def test_network_points_clean_comparison(tmp_path, capsys):
    fresh = with_network(payload(standard_points()), [net_point(64), net_point(256)])
    baseline = with_network(payload(standard_points()), [net_point(64), net_point(256)])
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "2 network points" in capsys.readouterr().out


def test_network_section_absent_from_baseline_is_a_note(tmp_path, capsys):
    # Pre-network baselines must keep gating cleanly: the fresh network
    # points are reported as new, never failed.
    fresh = with_network(payload(standard_points()), [net_point(64)])
    baseline = payload(standard_points())
    assert run_gate(tmp_path, fresh, baseline) == 0
    out = capsys.readouterr().out
    assert "new network point 64 clients" in out


def test_network_decision_divergence_fails(tmp_path, capsys):
    fresh = with_network(
        payload(standard_points()), [net_point(64, admitted=60, rejected=4)]
    )
    baseline = with_network(payload(standard_points()), [net_point(64)])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "decisions diverged" in capsys.readouterr().out


def test_network_p95_growth_beyond_tolerance_fails(tmp_path, capsys):
    # 60% latency growth > the 50% band (anchors equal, so normalization
    # is the identity here).
    fresh = with_network(payload(standard_points()), [net_point(64, p95_ms=32.0)])
    baseline = with_network(payload(standard_points()), [net_point(64, p95_ms=20.0)])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "p95 latency grew" in capsys.readouterr().out


def test_network_p95_growth_within_tolerance_passes(tmp_path):
    fresh = with_network(payload(standard_points()), [net_point(64, p95_ms=28.0)])
    baseline = with_network(payload(standard_points()), [net_point(64, p95_ms=20.0)])
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_network_p95_normalized_by_machine_speed(tmp_path):
    # The fresh run's p95 doubled — but its anchor throughput halved too,
    # so the machine is simply slower and the normalized latency is flat.
    fresh = with_network(
        payload(standard_points(anchor=50.0, sharded=100.0)),
        [net_point(64, p95_ms=40.0, txn_per_s=150.0)],
    )
    baseline = with_network(
        payload(standard_points(anchor=100.0, sharded=200.0)),
        [net_point(64, p95_ms=20.0, txn_per_s=300.0)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_network_throughput_regression_fails(tmp_path, capsys):
    fresh = with_network(
        payload(standard_points()), [net_point(64, txn_per_s=150.0)]
    )
    baseline = with_network(
        payload(standard_points()), [net_point(64, txn_per_s=300.0)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "throughput regressed" in capsys.readouterr().out


def test_network_scale_mismatch_fails(tmp_path, capsys):
    fresh = with_network(payload(standard_points()), [net_point(64)], scale="smoke")
    baseline = with_network(
        payload(standard_points()), [net_point(64)], scale="default"
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "network scale mismatch" in capsys.readouterr().out


def test_network_workload_mismatch_fails(tmp_path, capsys):
    other = dict(NET_WORKLOAD, num_flights=99)
    fresh = with_network(
        payload(standard_points()), [net_point(64, workload=other)]
    )
    baseline = with_network(payload(standard_points()), [net_point(64)])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "workload mismatch" in capsys.readouterr().out


def test_network_points_count_toward_require_points(tmp_path):
    fresh = with_network(payload(standard_points()), [net_point(64)])
    baseline = with_network(payload(standard_points()), [net_point(64)])
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "4") == 0
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "5") == 1


def test_unknown_keys_do_not_trip_identity_or_comparison(tmp_path):
    # Future fields in both sections — per-point or per-file — must be
    # ignored: the format can grow without invalidating old baselines.
    def decorate(data: dict) -> dict:
        for result in data["results"]:
            result["p999_ms"] = 1.0
            result["flux_capacitance"] = "1.21GW"
        for result in data["network"]["results"]:
            result["jitter_ms"] = 0.5
        data["someday"] = {"more": "sections"}
        return data

    fresh = decorate(
        with_network(payload(standard_points()), [net_point(64)])
    )
    baseline = with_network(payload(standard_points()), [net_point(64)])
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert run_gate(tmp_path, baseline, fresh) == 0


def test_absolute_mode_compares_raw_network_numbers(tmp_path, capsys):
    # No anchors anywhere: --absolute still gates the network points on
    # their raw milliseconds and txn/s.
    fresh = with_network(
        payload([point(4, "thread", False, 200.0)]),
        [net_point(64, p95_ms=50.0)],
    )
    baseline = with_network(
        payload([point(4, "thread", False, 200.0)]),
        [net_point(64, p95_ms=20.0)],
    )
    assert run_gate(tmp_path, fresh, baseline, "--absolute") == 1
    assert "p95 latency grew" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Durability points: segmented-WAL recovery benchmark
# ---------------------------------------------------------------------------


def dur_point(
    store_rows: int = 4000,
    churn_rows: int = 100,
    *,
    checkpoints: int = 7,
    recovery_ms: float = 40.0,
    delta_pause_ms: float = 1.5,
    legacy_pause_ms: float = 30.0,
    bytes_reclaimed: int = 500_000,
) -> dict:
    return {
        "store_rows": store_rows,
        "churn_rows": churn_rows,
        "checkpoints": checkpoints,
        "recovery_ms": recovery_ms,
        "max_delta_pause_ms": delta_pause_ms,
        "base_pause_ms": legacy_pause_ms,
        "legacy_pause_ms": legacy_pause_ms,
        "bytes_reclaimed": bytes_reclaimed,
        "segments_sealed": 10,
        "compactions": 8,
    }


def with_durability(base: dict, points: list[dict], *, scale: str = "default") -> dict:
    data = dict(base)
    data["durability"] = {"scale": scale, "results": points}
    return data


def test_durability_clean_comparison(tmp_path, capsys):
    fresh = with_durability(payload(standard_points()), [dur_point()])
    baseline = with_durability(payload(standard_points()), [dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "1 durability points" in capsys.readouterr().out


def test_durability_section_absent_from_baseline_is_a_note(tmp_path, capsys):
    # Pre-engine baselines must keep gating cleanly: the fresh durability
    # point is reported as new, never failed.
    fresh = with_durability(payload(standard_points()), [dur_point()])
    baseline = payload(standard_points())
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "new durability point (4000, 100)" in capsys.readouterr().out


def test_durability_shape_divergence_fails(tmp_path, capsys):
    fresh = with_durability(payload(standard_points()), [dur_point(checkpoints=9)])
    baseline = with_durability(payload(standard_points()), [dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "run shape diverged" in capsys.readouterr().out


def test_durability_recovery_time_growth_beyond_tolerance_fails(tmp_path, capsys):
    fresh = with_durability(
        payload(standard_points()), [dur_point(recovery_ms=64.0)]
    )
    baseline = with_durability(
        payload(standard_points()), [dur_point(recovery_ms=40.0)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "recovery time grew" in capsys.readouterr().out


def test_durability_pause_growth_beyond_tolerance_fails(tmp_path, capsys):
    # The fresh pause clears the noise floor (half the 30ms legacy fold),
    # so the relative band applies — and +67% fails it.
    fresh = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=20.0)]
    )
    baseline = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=12.0)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "max delta checkpoint pause grew" in capsys.readouterr().out


def test_durability_subfloor_pause_growth_is_noise(tmp_path, capsys):
    # A ~1ms pause tripling is one delayed scheduling slice, not a
    # regression: below the noise floor the relative band never fires,
    # whichever run happened to be committed as the baseline.
    fresh = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=4.0)]
    )
    baseline = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=1.0)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "scheduling-noise floor" in capsys.readouterr().out


def test_durability_pause_floor_scales_with_legacy_fold(tmp_path, capsys):
    # The floor is half the same run's legacy full-snapshot pause: a
    # pause that still undercuts the fold 2.5x keeps the engine's
    # pause-proportional-to-churn claim, however it compares to a
    # baseline recorded on a quieter box.
    fresh = with_durability(
        payload(standard_points()),
        [dur_point(delta_pause_ms=40.0, legacy_pause_ms=100.0)],
    )
    baseline = with_durability(
        payload(standard_points()),
        [dur_point(delta_pause_ms=10.0, legacy_pause_ms=100.0)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "scheduling-noise floor" in capsys.readouterr().out


def test_durability_pause_floor_is_raw_not_normalized(tmp_path, capsys):
    # The floor is an absolute raw-milliseconds statement about scheduling
    # jitter: a doubled anchor throughput doubles the normalized pause on
    # top of the raw tripling (+500% normalized), but 3ms raw is still
    # one delayed scheduling slice, so it passes as noise.
    fresh = with_durability(
        payload(standard_points(anchor=200.0, sharded=400.0)),
        [dur_point(recovery_ms=20.0, delta_pause_ms=3.0)],
    )
    baseline = with_durability(
        payload(standard_points(anchor=100.0, sharded=200.0)),
        [dur_point(recovery_ms=40.0, delta_pause_ms=1.0)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "scheduling-noise floor" in capsys.readouterr().out


def test_durability_pause_above_floor_reengages_band(tmp_path, capsys):
    # Drifting back toward the legacy full-snapshot fold clears the floor
    # and the band fails it, even while still below the legacy pause.
    fresh = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=20.0)]
    )
    baseline = with_durability(
        payload(standard_points()), [dur_point(delta_pause_ms=1.5)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "max delta checkpoint pause grew" in capsys.readouterr().out


def test_durability_growth_within_tolerance_passes(tmp_path):
    fresh = with_durability(
        payload(standard_points()),
        [dur_point(recovery_ms=55.0, delta_pause_ms=2.0)],
    )
    baseline = with_durability(
        payload(standard_points()),
        [dur_point(recovery_ms=40.0, delta_pause_ms=1.5)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_durability_normalized_by_machine_speed(tmp_path):
    # Recovery took twice as long — on a machine whose anchor throughput
    # halved.  Normalized, nothing regressed.
    fresh = with_durability(
        payload(standard_points(anchor=50.0, sharded=100.0)),
        [dur_point(recovery_ms=80.0, delta_pause_ms=3.0)],
    )
    baseline = with_durability(
        payload(standard_points(anchor=100.0, sharded=200.0)),
        [dur_point(recovery_ms=40.0, delta_pause_ms=1.5)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_durability_delta_pause_must_beat_legacy_fold(tmp_path, capsys):
    # Even with an identical baseline, a fresh run whose delta pause
    # reaches the legacy full-snapshot pause fails: the engine's whole
    # point is the pause being proportional to churn, not store size.
    degenerate = dur_point(delta_pause_ms=30.0, legacy_pause_ms=30.0)
    fresh = with_durability(payload(standard_points()), [degenerate])
    baseline = with_durability(payload(standard_points()), [degenerate])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "not below the legacy full-snapshot pause" in capsys.readouterr().out


def test_durability_zero_reclaim_fails(tmp_path, capsys):
    broken = dur_point(bytes_reclaimed=0)
    fresh = with_durability(payload(standard_points()), [broken])
    baseline = with_durability(payload(standard_points()), [dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "compaction reclaimed no bytes" in capsys.readouterr().out


def test_durability_scale_mismatch_fails(tmp_path, capsys):
    fresh = with_durability(
        payload(standard_points()), [dur_point()], scale="default"
    )
    baseline = with_durability(
        payload(standard_points()), [dur_point()], scale="paper"
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "durability scale mismatch" in capsys.readouterr().out


def test_durability_points_count_toward_require_points(tmp_path):
    fresh = with_durability(payload(standard_points()), [dur_point()])
    baseline = with_durability(payload(standard_points()), [dur_point()])
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "4") == 0
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "5") == 1


def test_durability_absolute_mode_compares_raw_milliseconds(tmp_path, capsys):
    fresh = with_durability(
        payload([point(4, "thread", False, 200.0)]),
        [dur_point(recovery_ms=100.0)],
    )
    baseline = with_durability(
        payload([point(4, "thread", False, 200.0)]),
        [dur_point(recovery_ms=40.0)],
    )
    assert run_gate(tmp_path, fresh, baseline, "--absolute") == 1
    assert "recovery time grew" in capsys.readouterr().out


def windowed_dur_point(**overrides) -> dict:
    """A durability point carrying the window/incremental-base fields."""
    return {
        **dur_point(),
        "writer_base_folds": 1,
        "bases_synthesized": 2,
        "fsyncs_per_commit": 0.31,
        "windowed_commits": 100,
        **overrides,
    }


def test_durability_windowed_fields_clean_pass(tmp_path):
    fresh = with_durability(payload(standard_points()), [windowed_dur_point()])
    baseline = with_durability(payload(standard_points()), [dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_durability_fsyncs_per_commit_at_one_fails(tmp_path, capsys):
    fresh = with_durability(
        payload(standard_points()), [windowed_dur_point(fsyncs_per_commit=1.0)]
    )
    baseline = with_durability(payload(standard_points()), [windowed_dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "fsyncs-per-commit" in capsys.readouterr().out


def test_durability_second_writer_fold_fails(tmp_path, capsys):
    fresh = with_durability(
        payload(standard_points()), [windowed_dur_point(writer_base_folds=2)]
    )
    baseline = with_durability(payload(standard_points()), [windowed_dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "only the first fold may run on the writer" in capsys.readouterr().out


def test_durability_missing_synthesized_base_fails(tmp_path, capsys):
    fresh = with_durability(
        payload(standard_points()), [windowed_dur_point(bases_synthesized=0)]
    )
    baseline = with_durability(payload(standard_points()), [windowed_dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "no base was synthesized" in capsys.readouterr().out


def test_durability_structural_claims_gate_without_baseline(tmp_path, capsys):
    # Like the search structural claims, these hold on every fresh run —
    # even against a pre-window baseline with no durability section.
    fresh = with_durability(
        payload(standard_points()), [windowed_dur_point(fsyncs_per_commit=1.4)]
    )
    baseline = payload(standard_points())
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "group-fsync window stopped batching" in capsys.readouterr().out


def test_durability_legacy_points_without_fields_still_pass(tmp_path):
    # Old-format points (no window fields) must keep gating exactly as
    # before: the structural claims only arm when the fields are present.
    fresh = with_durability(payload(standard_points()), [dur_point()])
    baseline = with_durability(payload(standard_points()), [windowed_dur_point()])
    assert run_gate(tmp_path, fresh, baseline) == 0


# ---------------------------------------------------------------------------
# Search points: admission-search strategy benchmark
# ---------------------------------------------------------------------------


def search_point(
    num_flights: int = 16,
    rows_per_flight: int = 4,
    *,
    admitted: int = 192,
    rejected: int = 0,
    nodes_ratio: float = 0.2,
    decisions_match: bool = True,
    fastpath_hit_rate: float = 0.10,
    sampled_admission_ms: float = 15.0,
) -> dict:
    return {
        "num_flights": num_flights,
        "rows_per_flight": rows_per_flight,
        "transactions": admitted + rejected,
        "admitted": admitted,
        "rejected": rejected,
        "decisions_match": decisions_match,
        "backtracking_nodes": 1000,
        "bnb_nodes": int(1000 * nodes_ratio),
        "nodes_ratio": nodes_ratio,
        "fastpath_hits": 20,
        "fastpath_hit_rate": fastpath_hit_rate,
        "sampled_admissions": 4,
        "sampled_admission_ms": sampled_admission_ms,
    }


def with_search(base: dict, points: list[dict], *, scale: str = "default") -> dict:
    data = dict(base)
    data["search"] = {"scale": scale, "results": points}
    return data


def test_search_clean_comparison(tmp_path, capsys):
    fresh = with_search(payload(standard_points()), [search_point()])
    baseline = with_search(payload(standard_points()), [search_point()])
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "1 search points" in capsys.readouterr().out


def test_search_section_absent_from_baseline_is_a_note(tmp_path, capsys):
    # Pre-subsystem baselines must keep gating cleanly: the fresh search
    # point is reported as new, never failed.
    fresh = with_search(payload(standard_points()), [search_point()])
    baseline = payload(standard_points())
    assert run_gate(tmp_path, fresh, baseline) == 0
    assert "new search point (16, 4)" in capsys.readouterr().out


def test_search_nodes_ratio_bound_is_structural(tmp_path, capsys):
    # A ratio above the bound fails even against an identical baseline —
    # and even with no baseline section at all: the bound is the PR's
    # acceptance bar, not a relative noise band.
    degenerate = search_point(nodes_ratio=0.6)
    fresh = with_search(payload(standard_points()), [degenerate])
    baseline = with_search(payload(standard_points()), [degenerate])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "exceeds the 0.5 bound" in capsys.readouterr().out
    assert run_gate(tmp_path, fresh, payload(standard_points())) == 1


def test_search_decision_mismatch_is_structural(tmp_path, capsys):
    broken = search_point(decisions_match=False)
    fresh = with_search(payload(standard_points()), [broken])
    baseline = with_search(payload(standard_points()), [broken])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "decisions diverged" in capsys.readouterr().out


def test_search_decision_counters_gate_strictly(tmp_path, capsys):
    fresh = with_search(
        payload(standard_points()), [search_point(admitted=191, rejected=1)]
    )
    baseline = with_search(payload(standard_points()), [search_point()])
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "decisions diverged" in capsys.readouterr().out


def test_search_fastpath_rate_collapse_fails(tmp_path, capsys):
    fresh = with_search(
        payload(standard_points()), [search_point(fastpath_hit_rate=0.05)]
    )
    baseline = with_search(
        payload(standard_points()), [search_point(fastpath_hit_rate=0.10)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "fastpath hit rate dropped" in capsys.readouterr().out


def test_search_sampled_latency_growth_beyond_tolerance_fails(tmp_path, capsys):
    fresh = with_search(
        payload(standard_points()), [search_point(sampled_admission_ms=24.0)]
    )
    baseline = with_search(
        payload(standard_points()), [search_point(sampled_admission_ms=15.0)]
    )
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "sampled-admission latency grew" in capsys.readouterr().out


def test_search_sampled_latency_normalized_by_machine_speed(tmp_path):
    # Latency doubled on a machine whose anchor throughput halved:
    # normalized, nothing regressed.
    fresh = with_search(
        payload(standard_points(anchor=50.0, sharded=100.0)),
        [search_point(sampled_admission_ms=30.0)],
    )
    baseline = with_search(
        payload(standard_points(anchor=100.0, sharded=200.0)),
        [search_point(sampled_admission_ms=15.0)],
    )
    assert run_gate(tmp_path, fresh, baseline) == 0


def test_search_scale_mismatch_fails(tmp_path, capsys):
    fresh = with_search(payload(standard_points()), [search_point()], scale="default")
    baseline = with_search(payload(standard_points()), [search_point()], scale="paper")
    assert run_gate(tmp_path, fresh, baseline) == 1
    assert "search scale mismatch" in capsys.readouterr().out


def test_search_points_count_toward_require_points(tmp_path):
    fresh = with_search(payload(standard_points()), [search_point()])
    baseline = with_search(payload(standard_points()), [search_point()])
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "4") == 0
    assert run_gate(tmp_path, fresh, baseline, "--require-points", "5") == 1


def test_search_absolute_mode_compares_raw_milliseconds(tmp_path, capsys):
    fresh = with_search(
        payload([point(4, "thread", False, 200.0)]),
        [search_point(sampled_admission_ms=40.0)],
    )
    baseline = with_search(
        payload([point(4, "thread", False, 200.0)]),
        [search_point(sampled_admission_ms=15.0)],
    )
    assert run_gate(tmp_path, fresh, baseline, "--absolute") == 1
    assert "sampled-admission latency grew" in capsys.readouterr().out
